"""Tests for VMs, physical nodes, hypervisors, and the cluster facade."""

import numpy as np
import pytest

from repro.cluster import (
    CheckpointImage,
    CheckpointKind,
    ClusterSpec,
    Hypervisor,
    HypervisorError,
    NodeError,
    ParityBlock,
    PhysicalNode,
    VirtualMachine,
    VMError,
    VMState,
)


class TestVM:
    def test_lifecycle(self):
        vm = VirtualMachine(0, 1e9)
        assert vm.state == VMState.RUNNING and vm.executing
        vm.pause()
        assert vm.state == VMState.PAUSED and not vm.executing
        vm.resume()
        vm.begin_migration()
        assert vm.state == VMState.MIGRATING
        vm.end_migration()
        vm.mark_failed()
        assert vm.state == VMState.FAILED

    def test_failed_vm_restrictions(self):
        vm = VirtualMachine(0, 1e9)
        vm.mark_failed()
        with pytest.raises(VMError):
            vm.pause()
        with pytest.raises(VMError):
            vm.resume()

    def test_revive_only_from_failed(self):
        vm = VirtualMachine(0, 1e9)
        with pytest.raises(VMError):
            vm.revive()
        vm.mark_failed()
        vm.revive()
        assert vm.state == VMState.RUNNING

    def test_migrate_only_running(self):
        vm = VirtualMachine(0, 1e9)
        vm.pause()
        with pytest.raises(VMError):
            vm.begin_migration()

    def test_validation(self):
        with pytest.raises(VMError):
            VirtualMachine(0, 0.0)
        with pytest.raises(VMError):
            VirtualMachine(0, 1e9, dirty_rate=-1.0)

    def test_functional_image_attachment(self):
        vm = VirtualMachine(0, 1e9, image_pages=8, page_size=64)
        assert vm.functional
        assert vm.image.nbytes == 512
        assert not VirtualMachine(1, 1e9).functional


class TestNode:
    def test_host_and_evict(self):
        node = PhysicalNode(0, ram_bytes=10e9)
        vm = VirtualMachine(0, 1e9)
        node.host(vm)
        assert vm.node_id == 0
        with pytest.raises(NodeError):
            node.host(vm)  # already here
        node.evict(vm)
        assert vm.node_id is None
        with pytest.raises(NodeError):
            node.evict(vm)

    def test_double_registration_rejected(self):
        a, b = PhysicalNode(0, 10e9), PhysicalNode(1, 10e9)
        vm = VirtualMachine(0, 1e9)
        a.host(vm)
        with pytest.raises(NodeError):
            b.host(vm)

    def test_memory_accounting_and_overcommit(self):
        node = PhysicalNode(0, ram_bytes=2e9)
        node.host(VirtualMachine(0, 1e9))
        assert node.free_bytes == pytest.approx(1e9)
        with pytest.raises(NodeError):
            node.host(VirtualMachine(1, 1.5e9))

    def test_fail_destroys_everything(self):
        node = PhysicalNode(0, 10e9)
        vm = VirtualMachine(0, 1e9)
        node.host(vm)
        node.store_checkpoint(
            CheckpointImage(0, 0, CheckpointKind.FULL, 1e9, 0.0)
        )
        node.store_parity(ParityBlock(0, 0, (1, 2, 3), 1e9))
        lost = node.fail()
        assert [v.vm_id for v in lost] == [0]
        assert vm.state == VMState.FAILED and vm.node_id is None
        assert not node.alive
        assert node.checkpoint_store == {} and node.parity_store == {}
        assert node.failure_count == 1
        assert node.fail() == []  # idempotent while down

    def test_repair_rejoins_empty(self):
        node = PhysicalNode(0, 10e9)
        node.host(VirtualMachine(0, 1e9))
        node.fail()
        node.repair()
        assert node.alive and node.vms == {}

    def test_store_on_dead_node_rejected(self):
        node = PhysicalNode(0, 10e9)
        node.fail()
        with pytest.raises(NodeError):
            node.store_parity(ParityBlock(0, 0, (1,), 1e9))
        with pytest.raises(NodeError):
            node.host(VirtualMachine(0, 1e9))

    def test_validation(self):
        with pytest.raises(NodeError):
            PhysicalNode(0, 0.0)
        with pytest.raises(NodeError):
            PhysicalNode(0, 1e9, cpu_cores=0)


class TestHypervisor:
    def _setup(self):
        node = PhysicalNode(0, 100e9)
        hv = Hypervisor(node)
        vm = VirtualMachine(0, 1e9, image_pages=8, page_size=32)
        node.host(vm)
        vm.image.write(0, b"initial content here")
        vm.image.clear_dirty()
        return node, hv, vm

    def test_capture_full(self):
        _, hv, vm = self._setup()
        img = hv.capture_full(vm, now=1.0, epoch=0)
        assert img.kind == CheckpointKind.FULL
        assert img.logical_bytes == vm.memory_bytes
        assert np.array_equal(img.payload, vm.image.flat)

    def test_capture_requires_local(self):
        _, hv, _ = self._setup()
        stranger = VirtualMachine(99, 1e9)
        with pytest.raises(HypervisorError):
            hv.capture_full(stranger, 0.0, 0)

    def test_capture_incremental_scales_logical(self):
        _, hv, vm = self._setup()
        hv.commit_checkpoint(hv.capture_full(vm, 0.0, 0))
        vm.image.write(40, b"dirty")  # one page
        img = hv.capture_incremental(vm, 1.0, 1, base_epoch=0)
        scale = vm.memory_bytes / vm.image.nbytes
        assert img.logical_bytes == pytest.approx(32 * scale)
        assert img.payload.n_pages == 1

    def test_capture_incremental_nonfunctional_needs_logical(self, sim):
        node = PhysicalNode(0, 100e9)
        hv = Hypervisor(node)
        vm = VirtualMachine(0, 1e9)
        node.host(vm)
        with pytest.raises(HypervisorError):
            hv.capture_incremental(vm, 0.0, 1)
        img = hv.capture_incremental(vm, 0.0, 1, logical_bytes=5e6)
        assert img.logical_bytes == 5e6

    def test_commit_merges_incremental(self):
        _, hv, vm = self._setup()
        hv.commit_checkpoint(hv.capture_full(vm, 0.0, 0))
        vm.image.write(40, b"dirty")
        expected = vm.image.snapshot()
        inc = hv.capture_incremental(vm, 1.0, 1, base_epoch=0)
        hv.commit_checkpoint(inc)
        merged = hv.committed(0)
        assert merged.meta.get("merged_from_incremental")
        assert np.array_equal(merged.payload_flat(), expected)
        # committed object occupies full-image RAM
        assert merged.logical_bytes == vm.memory_bytes

    def test_incremental_commit_without_base_rejected(self):
        _, hv, vm = self._setup()
        vm.image.write(0, b"x")
        inc = hv.capture_incremental(vm, 0.0, 1)
        with pytest.raises(HypervisorError):
            hv.commit_checkpoint(inc)

    def test_restore_functional(self):
        _, hv, vm = self._setup()
        img = hv.capture_full(vm, 0.0, 0)
        vm.image.write(0, b"mutated")
        vm.mark_failed()
        hv.restore(vm, img)
        assert vm.state == VMState.RUNNING
        assert bytes(vm.image.read(0, 7)) == b"initial"
        assert vm.epoch == 0

    def test_restore_functional_requires_payload(self):
        _, hv, vm = self._setup()
        bare = CheckpointImage(0, 0, CheckpointKind.FULL, 1e9, 0.0)
        with pytest.raises(HypervisorError):
            hv.restore(vm, bare)

    def test_forked_capture_payload_equals_full(self):
        _, hv, vm = self._setup()
        forked = hv.capture_forked(vm, 0.0, 0)
        assert forked.kind == CheckpointKind.FORKED
        assert np.array_equal(forked.payload, vm.image.flat)


class TestClusterFacade:
    def test_balanced_creation(self, cluster4):
        vms = cluster4.create_vms_balanced(12, 1e9)
        assert [vm.node_id for vm in vms] == [0, 1, 2, 3] * 3
        assert len(cluster4.vms_on(0)) == 3

    def test_lookup_errors(self, cluster4):
        with pytest.raises(NodeError):
            cluster4.node(99)
        with pytest.raises(NodeError):
            cluster4.vm(99)

    def test_kill_and_repair(self, cluster4):
        cluster4.create_vms_balanced(4, 1e9)
        lost = cluster4.kill_node(1)
        assert [vm.vm_id for vm in lost] == [1]
        assert len(cluster4.alive_nodes) == 3
        cluster4.repair_node(1)
        assert len(cluster4.alive_nodes) == 4

    def test_move_vm(self, cluster4):
        vms = cluster4.create_vms_balanced(4, 1e9)
        cluster4.move_vm(0, 3)
        assert vms[0].node_id == 3
        assert len(cluster4.vms_on(3)) == 2

    def test_place_failed_vm(self, cluster4):
        vms = cluster4.create_vms_balanced(4, 1e9)
        cluster4.kill_node(0)
        cluster4.place_failed_vm(0, 2)
        assert vms[0].node_id == 2
        # still FAILED until restored
        assert vms[0].state == VMState.FAILED

    def test_place_failed_requires_homeless(self, cluster4):
        cluster4.create_vms_balanced(4, 1e9)
        with pytest.raises(NodeError):
            cluster4.place_failed_vm(0, 2)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_nodes=0)
