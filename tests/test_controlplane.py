"""Control-plane coordinator: fencing, ops façade, drain, salvage.

Covers the keepalive/fencing daemon (true crash vs straggler-NIC false
positive vs sub-deadline flap), the PENDING→RUNNING→DONE/FAILED op
state machine, the kill-op safety guard, live-drain maintenance with
checksum-verified migrations and zero unprotected windows, the
beyond-tolerance salvage path, and the managed experiment mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.checkpoint.strategies import IncrementalCapture
from repro.cluster import ClusterSpec, VirtualCluster
from repro.cluster.vm import VMState
from repro.controlplane import (
    ControlPlane,
    ControlPlaneConfig,
    Operation,
    OpRejected,
    OpState,
    PlacementEngine,
    PlacementError,
)
from repro.core.architectures import dvdc
from repro.failures.injector import (
    FailureEvent,
    FailureInjector,
    FailureSchedule,
)
from repro.resilience import SparePool
from repro.sim import Simulator, Tracer

VM_BYTES = float(16 * 64)  # 16 pages x 64B: cycles finish in sim-seconds


def _populated(sim, n_active, n_spare=0, vms_per_node=2, seed=7):
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=n_active + n_spare))
    rng = np.random.default_rng(seed)
    for node in range(n_active):
        for _ in range(vms_per_node):
            vm = cluster.create_vm(
                node, VM_BYTES, dirty_rate=10.0, image_pages=16, page_size=64
            )
            vm.image.write(
                0, rng.integers(0, 256, vm.image.nbytes, dtype=np.uint8)
            )
            vm.image.clear_dirty()
    return cluster


def make_cp(sim, n_active=6, n_spare=0, group_size=3, strategy=None, **cfg):
    cluster = _populated(sim, n_active, n_spare)
    tracer = Tracer()
    ck = dvdc(cluster, group_size=group_size, strategy=strategy,
              tracer=tracer)
    spares = SparePool.provision(cluster, n_spare) if n_spare else None
    cfg.setdefault("repair_time", 8.0)
    cp = ControlPlane(
        cluster, ck, spares=spares, config=ControlPlaneConfig(**cfg),
        tracer=tracer,
    )
    return cluster, ck, cp


def drive(sim, cp, gen, until=500.0):
    """Run ``gen`` to completion with the control plane live, then stop
    the daemons so the heap can drain; re-raise the driver's failure."""

    def main():
        try:
            return (yield from gen)
        finally:
            cp.stop()

    proc = sim.process(main())
    sim.run(until=until)
    if proc.ok is False:
        raise proc.value
    assert proc.triggered, "driver never finished (deadlock?)"
    return proc.value


def events_of(cp, kind):
    return [r for r in cp.tracer.records if r.kind == kind]


# ---------------------------------------------------------------------------
# keepalive + fencing
# ---------------------------------------------------------------------------
class TestFencing:
    def test_injected_crash_is_fenced_then_recovered(self):
        """A real crash silences the beat; the fence is not a false
        positive, and the recovery pipeline restores every VM."""
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 6)
        schedule = FailureSchedule(
            [FailureEvent(time=5.0, node_id=2, ordinal=0)]
        )
        injector = FailureInjector(sim, 6, schedule=schedule)
        cp.attach_injector(injector)
        injector.start()
        cp.start()

        def scenario():
            yield from cp.checkpoint()
            ok, error = yield cp.recovered_event(2)
            assert ok, error
            # wait out the repair so the node rejoins
            yield sim.timeout(cp.config.repair_time + 2.0)

        drive(sim, cp, scenario())
        fences = events_of(cp, "controlplane.fence")
        assert [f.data["node"] for f in fences] == [2]
        assert fences[0].data["false_positive"] is False
        # detection latency: silence starts at t=5, deadline is
        # interval * miss_threshold, monitor sweeps each interval
        assert 5.0 + cp.policy.deadline <= fences[0].time <= 5.0 + cp.policy.deadline + 2 * cp.policy.interval
        assert all(vm.state == VMState.RUNNING for vm in cluster.all_vms)
        assert cluster.node(2).alive  # repaired and back
        assert events_of(cp, "controlplane.rejoin")
        assert cp.audits and all(r.ok for r in cp.audits)

    def test_straggler_nic_is_a_false_positive_stonith(self):
        """A long link flap is indistinguishable from a crash at the
        keepalive layer: the node is fenced as a false positive and
        power-fenced (STONITH) before its VMs are rebuilt."""
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 6)
        cp.start()

        def scenario():
            yield from cp.checkpoint()
            cluster.topology.set_node_links_up(3, False, reason="flap")
            yield sim.timeout(8.0)
            cluster.topology.set_node_links_up(3, True)
            ok, error = yield cp.recovered_event(3)
            assert ok, error
            yield sim.timeout(cp.config.repair_time + 2.0)

        drive(sim, cp, scenario())
        fences = events_of(cp, "controlplane.fence")
        assert [f.data["node"] for f in fences] == [3]
        assert fences[0].data["false_positive"] is True
        assert cluster.node(3).failure_count == 1  # STONITH really killed it
        assert cluster.node(3).alive
        assert all(vm.state == VMState.RUNNING for vm in cluster.all_vms)
        assert cp.audits and all(r.ok for r in cp.audits)

    def test_short_flap_under_deadline_is_not_fenced(self):
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 6)
        cp.start()

        def scenario():
            yield from cp.checkpoint()
            cluster.topology.set_node_links_up(1, False, reason="blip")
            yield sim.timeout(cp.policy.deadline - 1.0)
            cluster.topology.set_node_links_up(1, True)
            yield sim.timeout(10.0)

        drive(sim, cp, scenario())
        assert not events_of(cp, "controlplane.fence")
        assert not cp.fenced

    def test_death_in_unenrolled_window_is_swept(self):
        """Regression: a node that dies while *unenrolled* (the window
        between repair and the monitor's next re-enroll tick) emits no
        beat to miss — the monitor must still fence it."""
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 6)
        cp.start()

        def scenario():
            yield from cp.checkpoint()
            cp.registry.unenroll(4)  # simulate the post-repair window
            cluster.kill_node(4)
            cp.healer.on_failure()
            sim.schedule(cp.config.repair_time, cp._repair, 4)
            ok, error = yield cp.recovered_event(4)
            assert ok, error

        drive(sim, cp, scenario())
        fences = events_of(cp, "controlplane.fence")
        assert [f.data["node"] for f in fences] == [4]
        assert all(
            vm.state == VMState.RUNNING for vm in cluster.all_vms
        )

    def test_spare_pool_standbys_are_never_fenced(self):
        """Powered-off spares look exactly like dead nodes; the sweep
        must not declare them crashed."""
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 6, n_spare=2)
        cp.start()

        def scenario():
            yield from cp.checkpoint()
            yield sim.timeout(10.0)

        drive(sim, cp, scenario())
        assert not events_of(cp, "controlplane.fence")
        assert not cluster.node(6).alive and not cluster.node(7).alive


# ---------------------------------------------------------------------------
# operation state machine
# ---------------------------------------------------------------------------
class TestOps:
    def test_lifecycle_transitions(self):
        op = Operation(op_id=0, kind="query")
        assert op.state is OpState.PENDING and not op.state.terminal
        op.start(1.0)
        assert op.state is OpState.RUNNING
        op.finish(2.0, {"x": 1})
        assert op.state.terminal and op.result == {"x": 1}
        assert (op.started_at, op.finished_at) == (1.0, 2.0)

    def test_illegal_transitions_raise(self):
        op = Operation(op_id=0, kind="kill")
        with pytest.raises(RuntimeError, match="illegal transition"):
            op.finish(0.0)  # PENDING cannot terminate
        op.start(0.0)
        op.fail(1.0, "boom")
        with pytest.raises(RuntimeError, match="illegal transition"):
            op.start(2.0)  # terminal states are final
        with pytest.raises(RuntimeError, match="illegal transition"):
            op.finish(2.0)

    def test_submit_requires_started_and_known_kind(self):
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 4)
        with pytest.raises(RuntimeError, match="not started"):
            cp.submit("query")
        cp.start()
        with pytest.raises(ValueError, match="unknown op kind"):
            cp.submit("reboot")
        cp.stop()

    def test_provision_is_protected_at_next_epoch(self):
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 6)
        cp.start()

        def scenario():
            yield from cp.checkpoint()
            op = cp.submit("provision", memory_bytes=VM_BYTES,
                           image_pages=16, page_size=64)
            yield op.done
            assert op.state is OpState.DONE
            vm_id = op.result["vm_id"]
            assert vm_id in cp.pending_protect
            yield from cp.checkpoint()  # enrolls + first full capture
            return vm_id

        vm_id = drive(sim, cp, scenario())
        assert vm_id not in cp.pending_protect
        group = ck.layout.group_of(vm_id)
        assert vm_id in group.member_vm_ids
        parity_home = cluster.node(group.parity_node)
        assert group.group_id in parity_home.parity_store
        report = cp.audit("after provision epoch")
        assert report.ok

    def test_provision_rejected_mid_run_under_incremental_capture(self):
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 6, strategy=IncrementalCapture())
        cp.start()

        def scenario():
            yield from cp.checkpoint()
            op = cp.submit("provision", memory_bytes=VM_BYTES,
                           image_pages=16, page_size=64)
            yield op.done
            return op

        op = drive(sim, cp, scenario())
        assert op.state is OpState.FAILED
        assert "OpRejected" in op.error and "base epoch" in op.error

    def test_kill_refused_when_group_would_exceed_tolerance(self):
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 6)
        # one group element already unavailable: killing a second
        # element of the same group would lose data
        victim_group = ck.layout.groups[0]
        down = cluster.vm(victim_group.member_vm_ids[0]).node_id
        cluster.kill_node(down)
        peer = cluster.vm(victim_group.member_vm_ids[1]).node_id
        reason = cp._safe_to_kill(peer)
        assert reason is not None and "tolerance" in reason

    def test_kill_refused_for_unprotected_vms(self):
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 6)
        cp.start()

        def scenario():
            yield from cp.checkpoint()
            op = cp.submit("provision", memory_bytes=VM_BYTES,
                           image_pages=16, page_size=64)
            yield op.done
            host = op.result["node"]
            kill = cp.submit("kill", node_id=host)
            yield kill.done
            return kill

        kill = drive(sim, cp, scenario())
        assert kill.state is OpState.FAILED
        assert "not yet protected" in kill.error

    def test_kill_drives_fence_and_recovery_to_done(self):
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 6)
        cp.start()

        def scenario():
            yield from cp.checkpoint()
            op = cp.submit("kill", node_id=1)
            yield op.done
            return op

        op = drive(sim, cp, scenario())
        assert op.state is OpState.DONE
        assert op.result["recovered"] is True
        assert all(vm.state == VMState.RUNNING for vm in cluster.all_vms)
        assert cp.audits and cp.audits[-1].ok


# ---------------------------------------------------------------------------
# drain / rolling maintenance
# ---------------------------------------------------------------------------
class TestDrain:
    def test_drain_verifies_migrations_and_leaves_no_gap(self):
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 6, maintenance_seconds=1.0)
        cp.start()
        n_vms = len(cluster.vms_on(2))
        parity_groups = [
            g.group_id for g in ck.layout.groups if g.parity_node == 2
        ]

        def scenario():
            yield from cp.checkpoint()
            op = cp.submit("drain", node_id=2)
            yield op.done
            return op

        op = drive(sim, cp, scenario())
        assert op.state is OpState.DONE, op.error
        summary = op.result
        assert len(summary["migrated_vms"]) == n_vms
        assert set(summary["moved_parity_groups"]) == set(parity_groups)
        assert summary["rejoined"] is True
        # every migration end-to-end checksum verified
        assert cp.verified_migrations == n_vms
        # zero unprotected windows: an audit ran after every migration,
        # every parity move, and the rejoin — all clean
        assert len(cp.audits) >= n_vms + len(parity_groups) + 1
        assert all(r.ok for r in cp.audits)
        assert cluster.node(2).alive  # rejoined
        assert 2 not in cp.maintenance

    def test_drain_rejects_double_maintenance(self):
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 6, maintenance_seconds=30.0)
        cp.start()

        def scenario():
            yield from cp.checkpoint()
            first = cp.submit("drain", node_id=0)
            # give the first drain time to enter maintenance, then race
            yield sim.timeout(0.1)
            second = cp.submit("drain", node_id=0)
            yield second.done
            assert second.state is OpState.FAILED
            assert "maintenance" in second.error
            yield first.done
            return first

        first = drive(sim, cp, scenario())
        assert first.state is OpState.DONE

    def test_rolling_maintenance_every_node(self):
        """Roll through *all* nodes of a cluster under the strict
        auditor: every drain migrates with checksum verification and no
        audit observes an unprotected window."""
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 8, maintenance_seconds=0.5)
        cp.start()

        def scenario():
            yield from cp.checkpoint()
            for node_id in range(8):
                before = cp.verified_migrations
                op = cp.submit("drain", node_id=node_id)
                yield op.done
                assert op.state is OpState.DONE, (node_id, op.error)
                assert cp.verified_migrations > before
            return cp.status()

        status = drive(sim, cp, scenario(), until=2000.0)
        assert status["alive"] == 8
        assert status["unprotected_vms"] == 0
        assert cp.audits and all(r.ok for r in cp.audits)


# ---------------------------------------------------------------------------
# salvage: beyond-tolerance loss
# ---------------------------------------------------------------------------
class TestSalvage:
    def test_double_member_loss_is_salvaged(self):
        """Two members of one XOR group die in the same pileup: parity
        cannot rebuild them, so the coordinator reprovisions the lost
        VMs fresh and takes a full epoch — the cluster ends protected
        instead of permanently degraded."""
        sim = Simulator()
        cluster, ck, cp = make_cp(sim, 6)
        cp.start()
        group = ck.layout.groups[0]
        a = cluster.vm(group.member_vm_ids[0]).node_id
        b = cluster.vm(group.member_vm_ids[1]).node_id

        def scenario():
            yield from cp.checkpoint()
            for node_id in (a, b):
                cluster.kill_node(node_id)
                cp.healer.on_failure()
                sim.schedule(cp.config.repair_time, cp._repair, node_id)
            oks = []
            for node_id in (a, b):
                ok, error = yield cp.recovered_event(node_id)
                oks.append(ok)
            yield sim.timeout(cp.config.repair_time + 2.0)
            return oks

        oks = drive(sim, cp, scenario())
        # the *last* queued recovery runs the salvage and succeeds
        assert oks[-1] is True
        salvages = events_of(cp, "controlplane.salvage")
        assert salvages and "tolerance" in salvages[0].data["cause"]
        assert all(vm.state == VMState.RUNNING for vm in cluster.all_vms)
        assert all(vm.node_id is not None for vm in cluster.all_vms)
        report = cp.audit("after salvage")
        assert report.ok


# ---------------------------------------------------------------------------
# placement engine
# ---------------------------------------------------------------------------
class TestPlacement:
    def test_choose_host_least_loaded_lowest_id(self, sim):
        cluster = _populated(sim, 4, vms_per_node=1)
        engine = PlacementEngine(cluster)
        extra = cluster.create_vm(2, VM_BYTES)
        assert cluster.vms_on(2) and extra
        # nodes 0,1,3 tie at one VM; lowest id wins
        assert engine.choose_host() == 0
        assert engine.choose_host(exclude={0}) == 1

    def test_round_robin_matches_classic_modulo(self, sim):
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=5))
        engine = PlacementEngine(cluster)
        assert engine.round_robin(12) == [i % 5 for i in range(12)]

    def test_placement_error_when_everything_excluded(self, sim):
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=2))
        engine = PlacementEngine(cluster)
        with pytest.raises(PlacementError):
            engine.choose_host(exclude={0, 1})


# ---------------------------------------------------------------------------
# managed experiments
# ---------------------------------------------------------------------------
class TestManagedStudy:
    def test_managed_requires_dvdc(self):
        from repro.experiments import MethodSpec, PairedJobStudy

        with pytest.raises(ValueError, match="managed mode"):
            PairedJobStudy(
                methods=[MethodSpec("diskful")], seeds=1, managed=True
            )

    def test_managed_study_completes(self):
        from repro.experiments import MethodSpec, PairedJobStudy

        study = PairedJobStudy(
            methods=[MethodSpec("dvdc")],
            work=600.0, interval=120.0, node_mtbf=36000.0,
            repair_time=30.0, seeds=2, n_nodes=4, vms_per_node=2,
            managed=True,
        )
        outcome = study.run()
        assert len(outcome.cells) == 2
        assert outcome.completion_rate("dvdc") == 1.0
