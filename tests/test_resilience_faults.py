"""Transient faults: schedules, the injector, and network cleanliness.

The last class is the residual-capacity regression suite: every way a
transfer can die must leave every link with zero allocated bandwidth
and an empty flow set (a leak here silently throttles every later
epoch).
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, VirtualCluster
from repro.core import dvdc
from repro.network import Network, NetworkError
from repro.network.link import TransientNetworkError
from repro.network.topology import SwitchedTopology
from repro.resilience import (
    TransientFault,
    TransientFaultInjector,
    TransientFaultSchedule,
    corrupt_node_state,
)

from conftest import run_process


class TestTransientFault:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            TransientFault(time=0.0, node_id=0, kind="meteor")
        with pytest.raises(ValueError, match="time"):
            TransientFault(time=-1.0, node_id=0, kind="flap")
        with pytest.raises(ValueError, match="duration"):
            TransientFault(time=0.0, node_id=0, kind="flap", duration=-0.1)
        with pytest.raises(ValueError, match="severity"):
            TransientFault(time=0.0, node_id=0, kind="degrade", severity=0.0)
        with pytest.raises(ValueError, match="severity"):
            TransientFault(time=0.0, node_id=0, kind="degrade", severity=1.5)


class TestScheduleDraw:
    def test_draw_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="node"):
            TransientFaultSchedule.draw(rng, n_nodes=0, horizon=10.0, rate=0.1)
        with pytest.raises(ValueError, match="horizon"):
            TransientFaultSchedule.draw(rng, n_nodes=4, horizon=0.0, rate=0.1)
        with pytest.raises(ValueError, match="horizon"):
            TransientFaultSchedule.draw(rng, n_nodes=4, horizon=-5.0, rate=0.1)
        with pytest.raises(ValueError, match="rate"):
            TransientFaultSchedule.draw(rng, n_nodes=4, horizon=10.0, rate=0.0)
        with pytest.raises(ValueError, match="non-empty"):
            TransientFaultSchedule.draw(
                rng, n_nodes=4, horizon=10.0, rate=0.1, kinds=()
            )
        with pytest.raises(ValueError, match="unknown fault kind"):
            TransientFaultSchedule.draw(
                rng, n_nodes=4, horizon=10.0, rate=0.1, kinds=("flap", "meteor")
            )

    def test_draw_is_deterministic_in_the_seed(self):
        a = TransientFaultSchedule.draw(
            np.random.default_rng(42), n_nodes=4, horizon=100.0, rate=0.1
        )
        b = TransientFaultSchedule.draw(
            np.random.default_rng(42), n_nodes=4, horizon=100.0, rate=0.1
        )
        assert a.events == b.events
        assert len(a) > 0

    def test_draw_respects_bounds_and_order(self):
        sched = TransientFaultSchedule.draw(
            np.random.default_rng(7), n_nodes=4, horizon=200.0, rate=0.2,
            kinds=("flap", "degrade"), min_severity=0.3,
        )
        times = [e.time for e in sched.events]
        assert times == sorted(times)
        for e in sched.events:
            assert 0 <= e.time <= 200.0
            assert e.kind in ("flap", "degrade")
            assert e.duration >= 0
            assert 0.3 <= e.severity < 1.0
            assert 0 <= e.node_id < 4
        assert sched.for_node(0) == [e for e in sched.events if e.node_id == 0]


class TestInjector:
    def _arm(self, sim, events, n_nodes=4):
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=n_nodes))
        inj = TransientFaultInjector(
            sim, cluster, TransientFaultSchedule(events=list(events))
        )
        inj.start()
        return cluster, inj

    def test_overlapping_flaps_are_refcounted(self, sim):
        # flap A: [1, 4); flap B: [2, 6) — NIC must stay down until 6
        cluster, inj = self._arm(sim, [
            TransientFault(time=1.0, node_id=0, kind="flap", duration=3.0),
            TransientFault(time=2.0, node_id=0, kind="flap", duration=4.0),
        ])
        link = cluster.topology.tx[0]
        seen = {}
        for t in (0.5, 1.5, 4.5, 6.5):
            sim.at(t, lambda t=t: seen.setdefault(t, link.up))
        sim.run()
        assert seen == {0.5: True, 1.5: False, 4.5: False, 6.5: True}
        assert len(inj.delivered) == 2

    def test_overlapping_degrades_restore_only_at_the_end(self, sim):
        cluster, inj = self._arm(sim, [
            TransientFault(time=1.0, node_id=1, kind="degrade",
                           duration=3.0, severity=0.5),
            TransientFault(time=2.0, node_id=1, kind="degrade",
                           duration=4.0, severity=0.25),
        ])
        link = cluster.topology.tx[1]
        nominal = link.nominal_bandwidth
        seen = {}
        for t in (1.5, 2.5, 4.5, 6.5):
            sim.at(t, lambda t=t: seen.setdefault(t, link.bandwidth))
        sim.run()
        # severity is absolute against nominal, last write wins while
        # degraded; full speed only after the second fault expires
        assert seen[1.5] == pytest.approx(0.5 * nominal)
        assert seen[2.5] == pytest.approx(0.25 * nominal)
        assert seen[4.5] == pytest.approx(0.25 * nominal)
        assert seen[6.5] == pytest.approx(nominal)

    def test_drop_fails_inflight_transfers_transiently(self, sim):
        cluster, inj = self._arm(sim, [
            TransientFault(time=0.5, node_id=0, kind="drop"),
        ])
        topo = cluster.topology

        def driver():
            yield topo.transfer(0, 1, topo.node_bandwidth * 10)

        with pytest.raises(TransientNetworkError, match="dropped"):
            run_process(sim, driver())
        assert all(not lk.flows for lk in topo.network.links.values())

    def test_corrupt_on_empty_node_reports_nothing(self, sim):
        _, inj = self._arm(sim, [
            TransientFault(time=0.1, node_id=2, kind="corrupt"),
        ])
        sim.run()
        assert inj.delivered and inj.corrupted == []

    def test_schedule_beyond_cluster_is_rejected(self, sim):
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=2))
        inj = TransientFaultInjector(
            sim, cluster, TransientFaultSchedule(events=[
                TransientFault(time=0.0, node_id=5, kind="flap", duration=1.0),
            ])
        )
        with pytest.raises(ValueError, match="node 5"):
            inj.start()


class TestCorruptNodeState:
    def _checkpointed(self, sim, paper_cluster):
        ck = dvdc(paper_cluster)

        def cycle():
            r = yield from ck.run_cycle()
            assert r.committed
        run_process(sim, cycle())
        return ck

    def _artifact_bytes(self, node):
        parts = [node.parity_store[g].data.reshape(-1).view(np.uint8).copy()
                 for g in sorted(node.parity_store)]
        parts += [node.checkpoint_store[v].payload.reshape(-1).view(np.uint8).copy()
                  for v in sorted(node.checkpoint_store)]
        return np.concatenate(parts) if parts else np.empty(0, np.uint8)

    def test_flips_exactly_one_bit(self, sim, paper_cluster):
        self._checkpointed(sim, paper_cluster)
        node = paper_cluster.node(0)
        before = self._artifact_bytes(node)
        what = corrupt_node_state(paper_cluster, 0, np.random.default_rng(3))
        assert what is not None and ("parity g" in what or "image vm" in what)
        after = self._artifact_bytes(node)
        diff = before ^ after
        assert np.count_nonzero(diff) == 1
        assert bin(int(diff[diff != 0][0])).count("1") == 1

    def test_same_seed_damages_same_byte(self, sim, paper_cluster):
        self._checkpointed(sim, paper_cluster)
        a = corrupt_node_state(paper_cluster, 1, np.random.default_rng(9))
        b = corrupt_node_state(paper_cluster, 1, np.random.default_rng(9))
        assert a == b  # same target selected (the byte heals by double flip)

    def test_dead_node_is_untouchable(self, sim, paper_cluster):
        self._checkpointed(sim, paper_cluster)
        paper_cluster.kill_node(2)
        assert corrupt_node_state(paper_cluster, 2, np.random.default_rng(0)) is None


def _assert_zero_residual(network: Network) -> None:
    """The satellite invariant: no failure path may leak link capacity."""
    assert network.active_flows == ()
    for link in network.links.values():
        assert not link.flows, f"{link.name} leaked {link.flows}"
        assert link.utilization == 0.0


class TestZeroResidualCapacity:
    """Every transfer error path must fully release link capacity."""

    def test_fatal_abort_releases_capacity(self, sim):
        topo = SwitchedTopology(sim, 4)
        flow = topo.transfer(0, 1, 1e9)
        sim.schedule(0.5, flow.abort, "endpoint crashed")

        def driver():
            yield flow

        with pytest.raises(NetworkError):
            run_process(sim, driver())
        _assert_zero_residual(topo.network)

    def test_transient_abort_releases_capacity(self, sim):
        topo = SwitchedTopology(sim, 4)
        flow = topo.transfer(0, 1, 1e9)
        sim.schedule(0.5, flow.abort, "blip", True)

        def driver():
            yield flow

        with pytest.raises(TransientNetworkError):
            run_process(sim, driver())
        _assert_zero_residual(topo.network)

    def test_link_down_tears_all_crossing_flows_cleanly(self, sim):
        topo = SwitchedTopology(sim, 4)
        net = topo.network
        errors = []

        def one(src, dst):
            try:
                yield topo.transfer(src, dst, 1e9)
            except NetworkError as exc:
                errors.append(exc)

        for src, dst in [(0, 1), (0, 2), (3, 0), (2, 1)]:
            sim.process(one(src, dst))
        sim.schedule(0.5, topo.set_node_links_up, 0, False)
        sim.run()
        # three flows crossed node 0's NIC and died; (2, 1) completed
        assert len(errors) == 3
        assert all(isinstance(e, TransientNetworkError) for e in errors)
        _assert_zero_residual(net)

    def test_admission_on_down_link_is_clean(self, sim):
        topo = SwitchedTopology(sim, 4)
        topo.set_node_links_up(1, False)

        def driver():
            yield topo.transfer(0, 1, 1e6)

        with pytest.raises(TransientNetworkError, match="down"):
            run_process(sim, driver())
        _assert_zero_residual(topo.network)
        # and the NIC recovers for the next attempt
        topo.set_node_links_up(1, True)

        def retry():
            return (yield topo.transfer(0, 1, 1e6))

        assert run_process(sim, retry()).ok
        _assert_zero_residual(topo.network)

    def test_bandwidth_change_midflight_conserves_allocation(self, sim):
        topo = SwitchedTopology(sim, 4)
        flow = topo.transfer(0, 1, 1e9)
        sim.schedule(0.5, topo.scale_node_bandwidth, 0, 0.25)
        sim.schedule(1.0, topo.scale_node_bandwidth, 0, 1.0)

        def driver():
            return (yield flow)

        assert run_process(sim, driver()).ok
        _assert_zero_residual(topo.network)

    def test_drop_then_survivors_reexpand(self, sim):
        topo = SwitchedTopology(sim, 4)
        net = topo.network
        outcomes = {}

        def one(name, src, dst):
            try:
                outcomes[name] = (yield topo.transfer(src, dst, 1e9))
            except NetworkError as exc:
                outcomes[name] = exc

        # two flows share node 2's rx; dropping node 0's flows must give
        # the survivor the whole NIC back
        sim.process(one("victim", 0, 2))
        sim.process(one("survivor", 1, 2))
        rates = {}
        sim.schedule(0.5, topo.drop_node_flows, 0)
        sim.schedule(
            0.6, lambda: rates.update(
                survivor=max(f.rate for f in net.active_flows)
            )
        )
        sim.run()
        assert isinstance(outcomes["victim"], TransientNetworkError)
        assert outcomes["survivor"].ok
        assert rates["survivor"] == pytest.approx(topo.node_bandwidth)
        _assert_zero_residual(net)

    def test_massacre_leaves_no_residue(self, sim):
        # belt-and-braces: a pile of flows, then every failure mode at once
        topo = SwitchedTopology(sim, 6)
        net = topo.network

        def one(src, dst):
            try:
                yield topo.transfer(src, dst, 1e9)
            except NetworkError:
                pass

        for src in range(6):
            for dst in range(6):
                if src != dst:
                    sim.process(one(src, dst))
        sim.schedule(0.2, topo.set_node_links_up, 0, False)
        sim.schedule(0.3, topo.drop_node_flows, 1)
        sim.schedule(0.4, topo.abort_node_flows, 2)
        sim.schedule(0.5, topo.scale_node_bandwidth, 3, 0.1)
        sim.schedule(0.6, topo.set_node_links_up, 0, True)
        sim.run()
        _assert_zero_residual(net)
