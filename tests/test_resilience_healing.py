"""Spare-node pool and the self-healing state machine."""

import numpy as np
import pytest

from repro.audit import Auditor
from repro.cluster import ClusterSpec, VirtualCluster
from repro.core import dvdc
from repro.resilience import ClusterHealth, SelfHealer, SparePool
from repro.telemetry import Probe

from conftest import run_process


def _populated(sim, n_active, n_spare, seed=11):
    """CLI ``audit --heal`` shape: VMs on the first ``n_active`` nodes."""
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=n_active + n_spare))
    rng = np.random.default_rng(seed)
    for node in range(n_active):
        for _ in range(3):
            vm = cluster.create_vm(node, 64e6, image_pages=32, page_size=128)
            vm.image.write(
                0, rng.integers(0, 256, vm.image.nbytes // 2, dtype=np.uint8)
            )
            vm.image.clear_dirty()
    return cluster


class TestSparePool:
    def test_provision_validation(self, sim, paper_cluster):
        with pytest.raises(ValueError, match=">= 0"):
            SparePool.provision(paper_cluster, -1)
        # every node of the paper cluster hosts VMs: nothing qualifies
        with pytest.raises(ValueError, match="empty node"):
            SparePool.provision(paper_cluster, 1)

    def test_provision_takes_highest_empty_nodes_cold(self, sim):
        cluster = _populated(sim, n_active=4, n_spare=2)
        pool = SparePool.provision(cluster, 2)
        assert pool.available == (4, 5)
        assert len(pool) == 2
        assert not cluster.node(4).alive and not cluster.node(5).alive

    def test_acquire_powers_on_lowest_spare_first(self, sim):
        cluster = _populated(sim, n_active=4, n_spare=2)
        pool = SparePool.provision(cluster, 2)
        assert pool.acquire() == 4
        assert cluster.node(4).alive and not cluster.node(4).vms
        assert pool.acquire() == 5
        assert pool.acquire() is None
        assert pool.acquired == [4, 5]

    def test_add_deactivates_a_running_node(self, sim):
        cluster = _populated(sim, n_active=4, n_spare=1)
        assert cluster.node(4).alive
        pool = SparePool(cluster)
        pool.add(4)
        assert not cluster.node(4).alive
        assert pool.available == (4,)


class TestHealAfterRecover:
    def test_heal_after_recover_restores_strict_audit_green(self, sim, paper_cluster):
        """Satellite regression: recovery on a 4-node cluster must park a
        member on its group's parity node (no other placement exists);
        an immediate ``heal()`` rotates parity away and the *strict*
        auditor — co-location promoted to fatal — comes back green."""
        ck = dvdc(paper_cluster)

        def driver():
            r = yield from ck.run_cycle()
            assert r.committed
            paper_cluster.kill_node(1)
            yield from ck.recover(1)

        run_process(sim, driver())

        co_located = [
            g for g in ck.layout.groups
            if any(
                paper_cluster.vm(v).node_id == g.parity_node
                for v in g.member_vm_ids
            )
        ]
        assert co_located, "scenario must actually produce co-located parity"

        paper_cluster.repair_node(1)

        def heal():
            return (yield from ck.heal())

        healed = run_process(sim, heal())
        assert healed  # the co-located groups were re-encoded elsewhere

        auditor = Auditor(paper_cluster, ck.layout)
        report = auditor.run(ck.committed_epoch, context="test", strict=True)
        assert report.ok, [str(v) for v in report.violations]


class TestSelfHealer:
    def _scenario(self, sim, n_spare, probe=None):
        cluster = _populated(sim, n_active=4, n_spare=n_spare)
        spares = SparePool.provision(cluster, n_spare)
        ck = dvdc(cluster, group_size=3)
        if probe is not None:
            healer = SelfHealer(ck, spares=spares, tracer=probe)
        else:
            healer = SelfHealer(ck, spares=spares)
        return cluster, ck, healer

    def test_fresh_cluster_reports_no_epoch(self, sim):
        _, _, healer = self._scenario(sim, 0)
        assert healer.issues() == ["no committed checkpoint epoch"]

    def test_assess_is_protected_after_a_clean_cycle(self, sim):
        cluster, ck, healer = self._scenario(sim, 0)

        def driver():
            r = yield from ck.run_cycle()
            assert r.committed
        run_process(sim, driver())
        state, found = healer.assess()
        assert state is ClusterHealth.PROTECTED and found == []

    def test_spare_pool_heals_back_to_protected(self, sim):
        probe = Probe()
        cluster, ck, healer = self._scenario(sim, 1, probe=probe)
        out = {}

        def driver():
            r = yield from ck.run_cycle()
            assert r.committed
            yield sim.timeout(60.0)
            cluster.kill_node(0)  # permanent loss
            healer.on_failure()
            yield from ck.recover(0)
            out["report"] = yield from healer.reprotect()

        sim.run_processes(driver())
        report = out["report"]
        assert report.state is ClusterHealth.PROTECTED
        assert report.spares_used == [4]
        assert report.issues == []
        assert report.window_seconds is not None and report.window_seconds > 0
        assert healer.windows and healer.last_window_seconds == pytest.approx(
            report.window_seconds
        )
        # window telemetry: one aggregate observation of that exact
        # width, plus per-group attribution for the exposed groups
        snap = probe.metrics.snapshot()
        fam = snap["repro_degraded_window_seconds"]
        assert sum(
            s["count"] for s in fam["series"] if not s["labels"]
        ) == 1
        grouped = [s for s in fam["series"] if "group" in s["labels"]]
        assert grouped and all(s["count"] >= 1 for s in grouped)
        assert healer.group_windows
        assert not healer._group_degraded_since  # all windows closed
        # and PROTECTED is real: the strict auditor agrees
        auditor = Auditor(cluster, ck.layout)
        assert auditor.run(ck.committed_epoch, strict=True).ok

    def test_empty_pool_settles_degraded_and_says_so(self, sim):
        probe = Probe()
        cluster, ck, healer = self._scenario(sim, 0, probe=probe)
        out = {}

        def driver():
            r = yield from ck.run_cycle()
            assert r.committed
            cluster.kill_node(0)
            healer.on_failure()
            yield from ck.recover(0)
            out["report"] = yield from healer.reprotect()

        sim.run_processes(driver())
        report = out["report"]
        assert report.state is ClusterHealth.DEGRADED
        assert healer.state is ClusterHealth.DEGRADED
        assert report.spares_used == []
        assert report.issues, "DEGRADED must come with outstanding issues"
        assert report.window_seconds is None  # still open
        assert healer.degraded_since is not None
        snap = probe.metrics.snapshot()
        assert "repro_degraded_window_seconds" not in snap

    def test_second_failure_with_second_spare_also_heals(self, sim):
        cluster, ck, healer = self._scenario(sim, 2)
        out = {}

        def driver():
            r = yield from ck.run_cycle()
            assert r.committed
            cluster.kill_node(0)
            healer.on_failure()
            yield from ck.recover(0)
            r1 = yield from healer.reprotect()
            yield sim.timeout(30.0)
            cluster.kill_node(1)
            healer.on_failure()
            yield from ck.recover(1)
            r2 = yield from healer.reprotect()
            out["r1"], out["r2"] = r1, r2

        sim.run_processes(driver())
        assert out["r1"].state is ClusterHealth.PROTECTED
        assert out["r2"].state is ClusterHealth.PROTECTED
        assert out["r1"].spares_used == [4]
        assert out["r2"].spares_used == [5]
        assert len(healer.windows) == 2
