"""Tests for the fluid-flow network: fairness, fan-in, topologies."""

import pytest

from repro.network import (
    Network,
    NetworkError,
    SwitchedTopology,
    distributed_exchange_time,
    effective_bandwidth_fan_in,
    fan_in_time,
    pairwise_time,
)
from repro.sim import Simulator


class TestLink:
    def test_validation(self, sim):
        net = Network(sim)
        with pytest.raises(NetworkError):
            net.add_link("bad", bandwidth=0.0)
        with pytest.raises(NetworkError):
            net.add_link("bad", bandwidth=1.0, latency=-1.0)
        net.add_link("ok", 10.0)
        with pytest.raises(NetworkError):
            net.add_link("ok", 10.0)  # duplicate
        with pytest.raises(NetworkError):
            net.link("missing")


class TestSingleLink:
    def test_single_flow_time(self, sim):
        net = Network(sim)
        net.add_link("l", bandwidth=100.0)
        flow = net.start_flow(["l"], 500.0)
        sim.run()
        assert flow.finished_at == pytest.approx(5.0)
        assert flow.ok

    def test_latency_charged_once(self, sim):
        net = Network(sim)
        net.add_link("l", bandwidth=100.0, latency=0.5)
        flow = net.start_flow(["l"], 100.0)
        sim.run()
        assert flow.finished_at == pytest.approx(1.5)

    def test_equal_sharing_two_flows(self, sim):
        net = Network(sim)
        net.add_link("l", bandwidth=100.0)
        f1 = net.start_flow(["l"], 100.0)
        f2 = net.start_flow(["l"], 100.0)
        sim.run()
        # each gets 50 B/s -> both finish at 2.0
        assert f1.finished_at == pytest.approx(2.0)
        assert f2.finished_at == pytest.approx(2.0)

    def test_rate_rises_when_contender_leaves(self, sim):
        net = Network(sim)
        net.add_link("l", bandwidth=100.0)
        short = net.start_flow(["l"], 50.0)
        long = net.start_flow(["l"], 150.0)
        sim.run()
        # phase 1: 50 B/s each until short done at t=1 (50B); long has 100B left
        # phase 2: long at 100 B/s -> 1s more
        assert short.finished_at == pytest.approx(1.0)
        assert long.finished_at == pytest.approx(2.0)

    def test_staggered_arrival(self, sim):
        net = Network(sim)
        net.add_link("l", bandwidth=100.0)
        f1 = net.start_flow(["l"], 200.0)

        result = {}

        def later():
            yield sim.timeout(1.0)
            f2 = net.start_flow(["l"], 50.0)
            yield f2
            result["f2"] = sim.now

        sim.process(later())
        sim.run()
        # f1 alone for 1s (100B done), then shares: f2 50B at 50B/s -> t=2
        # f1 remaining 100B: 50B by t=2, then 50B at 100B/s -> t=2.5
        assert result["f2"] == pytest.approx(2.0)
        assert f1.finished_at == pytest.approx(2.5)

    def test_zero_byte_flow_completes_after_latency(self, sim):
        net = Network(sim)
        net.add_link("l", bandwidth=100.0, latency=0.25)
        flow = net.start_flow(["l"], 0.0)
        sim.run()
        assert flow.finished_at == pytest.approx(0.25)

    def test_abort_fails_waiters(self, sim):
        net = Network(sim)
        net.add_link("l", bandwidth=10.0)
        flow = net.start_flow(["l"], 1000.0)

        def waiter():
            try:
                yield flow
            except NetworkError as exc:
                return str(exc)

        def aborter():
            yield sim.timeout(1.0)
            flow.abort("sender crashed")

        p = sim.process(waiter())
        sim.process(aborter())
        sim.run()
        assert "sender crashed" in p.value

    def test_abort_frees_bandwidth(self, sim):
        net = Network(sim)
        net.add_link("l", bandwidth=100.0)
        f1 = net.start_flow(["l"], 1000.0)
        f2 = net.start_flow(["l"], 100.0)
        sim.schedule(0.5, lambda: f1.abort())
        sim.run()
        # f2: 0.5s at 50B/s (25B), then 75B at 100B/s -> finishes at 1.25
        assert f2.finished_at == pytest.approx(1.25)


class TestMaxMin:
    def test_bottleneck_residual_redistributed(self, sim):
        """True max-min: a flow capped by a slow link leaves its residual
        share on the fast link to others."""
        net = Network(sim)
        net.add_link("fast", 100.0)
        net.add_link("slow", 25.0)
        capped = net.start_flow(["fast", "slow"], 100.0)  # rate 25
        free = net.start_flow(["fast"], 100.0)  # should get 75
        sim.run()
        assert capped.finished_at == pytest.approx(4.0)
        assert free.finished_at == pytest.approx(100.0 / 75.0)

    def test_three_way_fairness(self, sim):
        net = Network(sim)
        net.add_link("l", 90.0)
        flows = [net.start_flow(["l"], 90.0) for _ in range(3)]
        sim.run()
        for f in flows:
            assert f.finished_at == pytest.approx(3.0)


class TestTopology:
    def test_fan_in_serializes_on_nas(self):
        sim = Simulator()
        topo = SwitchedTopology(sim, 4, node_bandwidth=100.0, nas_bandwidth=100.0, latency=0.0)
        flows = [topo.transfer_to_nas(i, 100.0) for i in range(4)]
        sim.run()
        for f in flows:
            assert f.finished_at == pytest.approx(4.0)

    def test_disjoint_peers_run_parallel(self):
        sim = Simulator()
        topo = SwitchedTopology(sim, 4, node_bandwidth=100.0, nas_bandwidth=100.0, latency=0.0)
        flows = [topo.transfer(i, (i + 1) % 4, 100.0) for i in range(4)]
        sim.run()
        for f in flows:
            assert f.finished_at == pytest.approx(1.0)

    def test_core_link_oversubscription(self):
        sim = Simulator()
        topo = SwitchedTopology(
            sim, 4, node_bandwidth=100.0, nas_bandwidth=100.0,
            latency=0.0, core_bandwidth=200.0,
        )
        flows = [topo.transfer(i, (i + 1) % 4, 100.0) for i in range(4)]
        sim.run()
        # 4 flows share the 200 B/s core: 50 B/s each
        for f in flows:
            assert f.finished_at == pytest.approx(2.0)

    def test_nas_to_node_path(self):
        sim = Simulator()
        topo = SwitchedTopology(sim, 2, node_bandwidth=100.0, nas_bandwidth=50.0, latency=0.0)
        f = topo.transfer_from_nas(1, 100.0)
        sim.run()
        assert f.finished_at == pytest.approx(2.0)

    def test_bad_node_index(self):
        sim = Simulator()
        topo = SwitchedTopology(sim, 2)
        with pytest.raises(NetworkError):
            topo.transfer(0, 5, 10.0)

    def test_utilization(self):
        sim = Simulator()
        topo = SwitchedTopology(sim, 2, node_bandwidth=100.0, latency=0.0)
        topo.transfer(0, 1, 1000.0)
        sim.run(until=1.0)
        assert topo.tx[0].utilization == pytest.approx(1.0)
        assert topo.tx[1].utilization == 0.0


class TestClosedForms:
    def test_fan_in_matches_simulation(self):
        # 4 flows of 100B into a 100 B/s bottleneck = 4s
        assert fan_in_time(4, 100.0, 100.0) == pytest.approx(4.0)

    def test_fan_in_sender_cap(self):
        # bottleneck share 25 vs sender cap 10 -> sender-bound
        assert fan_in_time(4, 100.0, 100.0, sender_bandwidth=10.0) == pytest.approx(10.0)

    def test_effective_bandwidth(self):
        assert effective_bandwidth_fan_in(4, 100.0) == 25.0
        assert effective_bandwidth_fan_in(4, 100.0, sender_bandwidth=10.0) == 10.0

    def test_distributed_exchange(self):
        assert distributed_exchange_time(300.0, 100.0) == pytest.approx(3.0)
        assert distributed_exchange_time(300.0, 100.0, 2) == pytest.approx(6.0)

    def test_pairwise(self):
        assert pairwise_time(100.0, 50.0, 100.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fan_in_time(0, 10.0, 10.0)
        with pytest.raises(ValueError):
            distributed_exchange_time(-1.0, 10.0)
        with pytest.raises(ValueError):
            pairwise_time(10.0, 0.0, 10.0)
