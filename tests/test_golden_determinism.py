"""Golden-trace determinism: the optimized hot paths change *nothing*.

A fixed 64-node DVDC scale scenario (2 incremental-checkpoint epochs,
seed 0 — see :mod:`repro.perf.scale`) is digested and pinned in
``tests/golden/scale64.json``: committed checkpoints, parity blocks +
checksums, flow-completion trace, per-cycle latencies, final sim clock,
RNG bit-generator states, and the SHA-256 of the Chrome-trace export.

The tests prove the digests are byte-stable across

* the incremental vs reference fluid-flow allocator,
* COW snapshots vs plain full copies,
* campaign execution with ``--jobs 1`` vs ``--jobs 4``,

and that all of them equal the pinned golden values, so any perf change
that perturbs a checkpoint byte, a parity bit, a completion time, or an
RNG draw fails here with the exact digest that moved.

Regenerate the golden file after an *intentional* behavior change with::

    PYTHONPATH=src python tests/test_golden_determinism.py --regen
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

import pytest

from repro.perf import ScaleConfig, build_scale_scenario, run_scale_point
from repro.perf.scale import _dirty_epoch, scenario_digests
from repro.telemetry import Probe
from repro.telemetry.export import chrome_trace

GOLDEN_PATH = Path(__file__).parent / "golden" / "scale64.json"
#: The pinned scenario.  Changing any field invalidates the golden file.
GOLDEN_CFG = dict(n_nodes=64, epochs=2, seed=0)


def _golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def _run_digests(allocator: str = "incremental", cow: bool = True) -> dict:
    cfg = ScaleConfig(**GOLDEN_CFG, allocator=allocator, cow=cow, trace=True)
    return run_scale_point(cfg, collect_digests=True)


def _chrome_trace_bytes() -> bytes:
    """The Chrome-trace export of the golden scenario, sim-clock, as the
    exact bytes ``write_chrome_trace`` would put on disk."""
    cfg = ScaleConfig(**GOLDEN_CFG, trace=True)
    probe = Probe()
    sim, cluster, ckpt, rngs, _ = build_scale_scenario(cfg, tracer=probe)
    for _ in range(cfg.epochs):
        _dirty_epoch(cluster, rngs, cfg)
        proc = sim.process(ckpt.run_cycle())
        sim.run()
        assert proc.ok
    doc = chrome_trace(probe.spans, clock="sim")
    return (json.dumps(doc, indent=1) + "\n").encode("utf-8")


def _generate_golden() -> dict:
    result = _run_digests()
    return {
        "_regen": "PYTHONPATH=src python tests/test_golden_determinism.py --regen",
        "config": GOLDEN_CFG,
        "events": result["events"],
        "sim_time": result["sim_time"].hex(),
        "digests": result["digests"],
        "chrome_trace_sha256": hashlib.sha256(_chrome_trace_bytes()).hexdigest(),
    }


# ---------------------------------------------------------------------------
# pinned digests
# ---------------------------------------------------------------------------
def test_golden_file_matches_config():
    assert _golden()["config"] == GOLDEN_CFG


def test_incremental_run_matches_golden():
    golden = _golden()
    result = _run_digests()
    assert result["events"] == golden["events"]
    assert result["sim_time"].hex() == golden["sim_time"]
    assert result["digests"] == golden["digests"]


@pytest.mark.parametrize(
    "allocator,cow",
    [("reference", True), ("incremental", False), ("reference", False)],
    ids=["reference", "no-cow", "reference-no-cow"],
)
def test_optimization_paths_match_golden(allocator, cow):
    """Every combination of the perf knobs reproduces the pinned run."""
    golden = _golden()
    result = _run_digests(allocator=allocator, cow=cow)
    assert result["events"] == golden["events"]
    assert result["digests"] == golden["digests"]


def test_chrome_trace_byte_stable_and_pinned():
    a = _chrome_trace_bytes()
    b = _chrome_trace_bytes()
    assert a == b, "chrome trace export must be byte-identical run to run"
    assert hashlib.sha256(a).hexdigest() == _golden()["chrome_trace_sha256"]


# ---------------------------------------------------------------------------
# campaign --jobs byte-stability
# ---------------------------------------------------------------------------
def _campaign_digests(jobs: int) -> list[dict]:
    from repro.campaign import CampaignRunner, Task

    tasks = [
        Task(kind="scale_digests",
             params={**GOLDEN_CFG, "allocator": alloc, "cow": cow})
        for alloc, cow in [
            ("incremental", True), ("reference", True), ("incremental", False),
        ]
    ]
    result = CampaignRunner(jobs=jobs).run(tasks)
    assert result.n_failed == 0, [r.error for r in result.failures()]
    return [run.value for run in result.runs]


def test_campaign_jobs_1_vs_4_byte_stable():
    """Worker fan-out must not perturb a single bit of the scenario."""
    golden = _golden()
    serial = _campaign_digests(jobs=1)
    parallel = _campaign_digests(jobs=4)
    assert serial == parallel
    for value in serial:
        assert value["digests"] == golden["digests"]
        assert value["sim_time"] == golden["sim_time"]


if __name__ == "__main__":
    if "--regen" not in sys.argv:
        sys.exit("usage: python tests/test_golden_determinism.py --regen")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(_generate_golden(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
