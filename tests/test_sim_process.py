"""Tests for generator processes: waits, joins, interrupts, conditions."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    ProcessError,
    Simulator,
)

from conftest import run_process


class TestTimeout:
    def test_timeout_advances_clock(self, sim):
        def proc():
            yield sim.timeout(5.0)
            return sim.now

        assert run_process(sim, proc()) == 5.0

    def test_timeout_value(self, sim):
        def proc():
            got = yield sim.timeout(1.0, value="payload")
            return got

        assert run_process(sim, proc()) == "payload"

    def test_sequential_timeouts_accumulate(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            yield sim.timeout(3.0)
            return sim.now

        assert run_process(sim, proc()) == 6.0

    def test_zero_timeout_allowed(self, sim):
        def proc():
            yield sim.timeout(0.0)
            return "done"

        assert run_process(sim, proc()) == "done"


class TestEvents:
    def test_wait_for_event_value(self, sim):
        ev = sim.event()

        def waiter():
            got = yield ev
            return got

        def trigger():
            yield sim.timeout(2.0)
            ev.succeed(99)

        p = sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert p.value == 99
        assert sim.now == 2.0

    def test_event_failure_raises_in_waiter(self, sim):
        ev = sim.event()

        def waiter():
            try:
                yield ev
            except ValueError as exc:
                return f"caught {exc}"

        def trigger():
            yield sim.timeout(1.0)
            ev.fail(ValueError("bad"))

        p = sim.process(waiter())
        sim.process(trigger())
        sim.run()
        assert p.value == "caught bad"

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(ProcessError):
            ev.succeed(2)

    def test_fail_requires_exception(self, sim):
        with pytest.raises(ProcessError):
            sim.event().fail("not an exception")

    def test_waiting_on_already_triggered_event(self, sim):
        ev = sim.event()
        ev.succeed("early")
        sim.run()  # let callbacks drain

        def waiter():
            got = yield ev
            return got

        assert run_process(sim, waiter()) == "early"

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(ProcessError):
            _ = sim.event().value


class TestJoin:
    def test_join_returns_child_value(self, sim):
        def child():
            yield sim.timeout(3.0)
            return "result"

        def parent():
            got = yield sim.process(child())
            return (got, sim.now)

        assert run_process(sim, parent()) == ("result", 3.0)

    def test_child_exception_propagates_to_parent(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("child died")

        def parent():
            try:
                yield sim.process(child())
            except RuntimeError as exc:
                return str(exc)

        assert run_process(sim, parent()) == "child died"

    def test_unhandled_child_exception_fails_process(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise RuntimeError("unhandled")

        p = sim.process(child())
        sim.run()
        assert p.ok is False
        assert isinstance(p.value, RuntimeError)

    def test_yield_non_event_fails_process(self, sim):
        def bad():
            yield 42

        p = sim.process(bad())
        sim.run()
        assert p.ok is False
        assert isinstance(p.value, ProcessError)


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def victim():
            try:
                yield sim.timeout(100.0)
            except Interrupt as i:
                return ("interrupted", i.cause, sim.now)

        p = sim.process(victim())

        def killer():
            yield sim.timeout(5.0)
            p.interrupt("reason")

        sim.process(killer())
        sim.run()
        assert p.value == ("interrupted", "reason", 5.0)

    def test_interrupt_finished_process_is_noop(self, sim):
        def quick():
            yield sim.timeout(1.0)
            return "done"

        p = sim.process(quick())
        sim.run()
        p.interrupt("too late")
        sim.run()
        assert p.value == "done"

    def test_uncaught_interrupt_ends_process_cleanly(self, sim):
        def victim():
            yield sim.timeout(100.0)

        p = sim.process(victim())
        sim.schedule(1.0, lambda: p.interrupt())
        sim.run()
        assert p.ok is True
        assert p.value is None

    def test_abandoned_event_wakeup_ignored(self, sim):
        """After an interrupt, the original event firing must not resume
        the process a second time."""
        trace = []

        def victim():
            try:
                yield sim.timeout(10.0)
                trace.append("timeout-completed")
            except Interrupt:
                trace.append("interrupted")
                yield sim.timeout(20.0)
                trace.append("after")

        p = sim.process(victim())
        sim.schedule(1.0, lambda: p.interrupt())
        sim.run()
        assert trace == ["interrupted", "after"]
        assert sim.now == 21.0


class TestConditions:
    def test_allof_waits_for_all(self, sim):
        def worker(d):
            yield sim.timeout(d)
            return d

        def parent():
            got = yield AllOf(sim, [sim.process(worker(3.0)), sim.process(worker(1.0))])
            return (got, sim.now)

        values, t = run_process(sim, parent())
        assert t == 3.0
        assert values == {0: 3.0, 1: 1.0}

    def test_allof_empty_succeeds_immediately(self, sim):
        def parent():
            got = yield AllOf(sim, [])
            return got

        assert run_process(sim, parent()) == {}

    def test_allof_fails_fast(self, sim):
        def ok():
            yield sim.timeout(10.0)

        def bad():
            yield sim.timeout(1.0)
            raise ValueError("fail fast")

        def parent():
            try:
                yield AllOf(sim, [sim.process(ok()), sim.process(bad())])
            except ValueError:
                return sim.now

        assert run_process(sim, parent()) == 1.0

    def test_anyof_returns_first(self, sim):
        def worker(d):
            yield sim.timeout(d)
            return d

        def parent():
            got = yield AnyOf(sim, [sim.process(worker(5.0)), sim.process(worker(2.0))])
            return (got, sim.now)

        values, t = run_process(sim, parent())
        assert t == 2.0
        assert values == {1: 2.0}

    def test_anyof_fails_only_when_all_fail(self, sim):
        def bad(d, msg):
            yield sim.timeout(d)
            raise ValueError(msg)

        def parent():
            try:
                yield AnyOf(sim, [sim.process(bad(1.0, "a")), sim.process(bad(2.0, "b"))])
            except ValueError as exc:
                return (str(exc), sim.now)

        assert run_process(sim, parent()) == ("b", 2.0)


class TestDeterminism:
    def test_runs_are_identical(self):
        def build_and_run():
            sim = Simulator()
            log = []

            def worker(name, delays):
                for d in delays:
                    yield sim.timeout(d)
                    log.append((sim.now, name))

            sim.process(worker("a", [1, 2, 1]))
            sim.process(worker("b", [2, 1, 1]))
            sim.process(worker("c", [1, 1, 2]))
            sim.run()
            return log

        assert build_and_run() == build_and_run()
