"""Tests for the RDP double-parity extension of DVDC."""

from itertools import combinations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, VirtualCluster, VMState
from repro.core import (
    DoubleParityCheckpointer,
    DoubleParityGroup,
    DoubleParityLayout,
    LayoutError,
    build_double_parity_layout,
)
from repro.sim import Simulator

from conftest import run_process


def _cluster(n_nodes=6, vms=12, seed=4):
    sim = Simulator()
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=n_nodes))
    rng = np.random.default_rng(seed)
    for vm in cluster.create_vms_balanced(vms, 1e9, image_pages=16, page_size=64):
        vm.image.write(0, rng.integers(0, 256, 512, dtype=np.uint8))
        vm.image.clear_dirty()
    return sim, cluster, rng


class TestLayout:
    def test_parity_nodes_distinct_and_off_members(self):
        sim, cluster, _ = _cluster()
        layout = build_double_parity_layout(cluster, group_size=3)
        for g in layout.groups:
            member_nodes = {cluster.vm(v).node_id for v in g.member_vm_ids}
            assert g.row_parity_node not in member_nodes
            assert g.diag_parity_node not in member_nodes
            assert g.row_parity_node != g.diag_parity_node

    def test_needs_group_size_plus_two_nodes(self):
        sim, cluster, _ = _cluster(n_nodes=4, vms=8)
        with pytest.raises(LayoutError):
            build_double_parity_layout(cluster, group_size=3)

    def test_all_vms_covered(self):
        sim, cluster, _ = _cluster()
        layout = build_double_parity_layout(cluster, 3)
        assert layout.vm_ids == list(range(12))

    def test_group_validation(self):
        with pytest.raises(LayoutError):
            DoubleParityGroup(0, (1, 2), 3, 3)  # same parity node twice
        with pytest.raises(LayoutError):
            DoubleParityLayout([
                DoubleParityGroup(0, (1,), 2, 3),
                DoubleParityGroup(1, (1,), 4, 5),
            ])

    def test_group_of(self):
        layout = DoubleParityLayout([DoubleParityGroup(0, (7,), 1, 2)])
        assert layout.group_of(7).group_id == 0
        with pytest.raises(LayoutError):
            layout.group_of(99)


class TestCycle:
    def test_cycle_stores_both_shards(self):
        sim, cluster, _ = _cluster()
        layout = build_double_parity_layout(cluster, 3)
        ck = DoubleParityCheckpointer(cluster, layout)

        def proc():
            r = yield from ck.run_cycle()
            return r

        r = run_process(sim, proc())
        assert r.committed
        for g in layout.groups:
            assert g.group_id in cluster.node(g.row_parity_node).parity_store
            assert -(g.group_id + 1) in cluster.node(g.diag_parity_node).parity_store

    def test_traffic_double_single_parity(self):
        sim, cluster, _ = _cluster()
        layout = build_double_parity_layout(cluster, 3)
        ck = DoubleParityCheckpointer(cluster, layout)

        def proc():
            r = yield from ck.run_cycle()
            return r

        r = run_process(sim, proc())
        # each of 12 x 1 GB images ships to two parity nodes
        assert r.network_bytes == pytest.approx(24e9)

    def test_row_shard_matches_xor_of_members(self):
        from repro.cluster import xor_reduce

        sim, cluster, _ = _cluster()
        layout = build_double_parity_layout(cluster, 3)
        ck = DoubleParityCheckpointer(cluster, layout)

        def proc():
            yield from ck.run_cycle()

        run_process(sim, proc())
        g = layout.groups[0]
        row = cluster.node(g.row_parity_node).parity_store[g.group_id]
        payloads = [
            cluster.hypervisor(cluster.vm(v).node_id).committed(v).payload_flat()
            for v in g.member_vm_ids
        ]
        nbytes = payloads[0].shape[0]
        assert np.array_equal(row.data[:nbytes], xor_reduce(payloads))


class TestDoubleFailureRecovery:
    def _checkpoint(self, sim, cluster, ck, rng):
        committed = {}

        def proc():
            yield from ck.run_cycle()
            for vm in cluster.all_vms:
                committed[vm.vm_id] = (
                    cluster.hypervisor(vm.node_id).committed(vm.vm_id)
                    .payload_flat().copy()
                )
                vm.image.touch_pages(rng.integers(0, 16, 3), rng)

        run_process(sim, proc())
        return committed

    @pytest.mark.parametrize("pair", list(combinations(range(6), 2)))
    def test_every_two_node_crash_recoverable(self, pair):
        """The RDP promise: ANY two simultaneous node failures are
        survivable — exhaustively over all 15 node pairs."""
        sim, cluster, rng = _cluster()
        layout = build_double_parity_layout(cluster, 3)
        ck = DoubleParityCheckpointer(cluster, layout)
        committed = self._checkpoint(sim, cluster, ck, rng)
        a, b = pair
        cluster.kill_node(a)
        cluster.kill_node(b)

        def proc():
            rep = yield from ck.recover(a, b)
            return rep

        run_process(sim, proc())
        for vm in cluster.all_vms:
            assert vm.state == VMState.RUNNING
            assert np.array_equal(vm.image.flat, committed[vm.vm_id]), (
                f"vm{vm.vm_id} not bit-exact after killing nodes {pair}"
            )

    def test_single_failure_also_fine(self):
        sim, cluster, rng = _cluster()
        layout = build_double_parity_layout(cluster, 3)
        ck = DoubleParityCheckpointer(cluster, layout)
        committed = self._checkpoint(sim, cluster, ck, rng)
        cluster.kill_node(2)

        def proc():
            rep = yield from ck.recover(2)
            return rep

        rep = run_process(sim, proc())
        for vm in cluster.all_vms:
            assert np.array_equal(vm.image.flat, committed[vm.vm_id])

    def test_recover_before_checkpoint_raises(self):
        sim, cluster, _ = _cluster()
        layout = build_double_parity_layout(cluster, 3)
        ck = DoubleParityCheckpointer(cluster, layout)
        cluster.kill_node(0)

        def proc():
            yield from ck.recover(0)

        with pytest.raises(RuntimeError):
            run_process(sim, proc())

    def test_post_recovery_cycle_consistent(self):
        sim, cluster, rng = _cluster()
        layout = build_double_parity_layout(cluster, 3)
        ck = DoubleParityCheckpointer(cluster, layout)
        self._checkpoint(sim, cluster, ck, rng)
        cluster.kill_node(0)
        cluster.kill_node(3)

        def proc():
            yield from ck.recover(0, 3)
            for vm in cluster.all_vms:
                vm.image.touch_pages(rng.integers(0, 16, 2), rng)
            r = yield from ck.run_cycle()
            return r

        r = run_process(sim, proc())
        assert r.committed
        # both shards for every group live on alive nodes again
        for g in ck.layout.groups:
            assert cluster.node(g.row_parity_node).alive
            assert cluster.node(g.diag_parity_node).alive
