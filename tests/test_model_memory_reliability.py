"""Tests for the memory-footprint and reliability models."""

import math

import pytest

from repro.model import (
    ClusterModel,
    MemoryFootprint,
    SCHEMES,
    compare_codes,
    fatal_probability_per_failure,
    job_survival_probability,
    mttdl,
    scheme_footprint,
)


class TestMemoryFootprint:
    def test_all_schemes_computable(self):
        m = ClusterModel()
        for scheme in SCHEMES:
            f = scheme_footprint(m, scheme)
            assert f.peak_per_node >= f.steady_per_node
            assert f.overhead_ratio >= 1.0

    def test_plank_normal_is_three_x(self):
        """Section II-B2: 'one needs three times the memory of the
        process' for the normal diskless variant."""
        f = scheme_footprint(ClusterModel(), "diskless_normal",
                             capture_buffer_fraction=0.0)
        assert f.overhead_ratio == pytest.approx(3.0)

    def test_diskful_is_cheapest(self):
        m = ClusterModel()
        diskful = scheme_footprint(m, "diskful")
        for scheme in SCHEMES:
            assert diskful.overhead_ratio <= scheme_footprint(m, scheme).overhead_ratio

    def test_dvdc_below_plank_normal(self):
        """The 'modest memory overhead' claim relative to naive diskless."""
        m = ClusterModel()
        dvdc = scheme_footprint(m, "dvdc", capture_buffer_fraction=0.0)
        normal = scheme_footprint(m, "diskless_normal", capture_buffer_fraction=0.0)
        assert dvdc.overhead_ratio < normal.overhead_ratio

    def test_dvdc_steady_formula(self):
        """steady ratio = 2 + 1/k (image + checkpoint + parity share)."""
        m = ClusterModel()  # n=4, k defaults to 3
        f = scheme_footprint(m, "dvdc", capture_buffer_fraction=0.0)
        assert f.cluster_steady / (12 * m.vm_memory_bytes) == pytest.approx(
            2.0 + 1.0 / 3.0
        )

    def test_rdp_doubles_parity_share(self):
        m = ClusterModel()
        x = scheme_footprint(m, "dvdc", capture_buffer_fraction=0.0)
        r = scheme_footprint(m, "dvdc_rdp", capture_buffer_fraction=0.0)
        parity_x = x.cluster_steady - 2 * 12 * m.vm_memory_bytes
        parity_r = r.cluster_steady - 2 * 12 * m.vm_memory_bytes
        assert parity_r == pytest.approx(2 * parity_x)

    def test_group_size_lowers_parity_overhead(self):
        m = ClusterModel(n_nodes=8)
        small = scheme_footprint(m, "dvdc", group_size=2,
                                 capture_buffer_fraction=0.0)
        large = scheme_footprint(m, "dvdc", group_size=7,
                                 capture_buffer_fraction=0.0)
        assert large.overhead_ratio < small.overhead_ratio

    def test_validation(self):
        m = ClusterModel()
        with pytest.raises(ValueError):
            scheme_footprint(m, "bogus")
        with pytest.raises(ValueError):
            scheme_footprint(m, "dvdc", capture_buffer_fraction=1.5)
        with pytest.raises(ValueError):
            MemoryFootprint("x", 10.0, 5.0, 10.0, 5.0, 1.0)


class TestReliability:
    def test_fatal_probability_monotone_in_window(self):
        lam, n = 1e-4, 8
        assert fatal_probability_per_failure(lam, n, 10.0) < (
            fatal_probability_per_failure(lam, n, 1000.0)
        )

    def test_tolerance_two_much_safer(self):
        lam, n, w = 1e-4, 8, 100.0
        p1 = fatal_probability_per_failure(lam, n, w, tolerance=1)
        p2 = fatal_probability_per_failure(lam, n, w, tolerance=2)
        assert p2 < p1 * 0.2

    def test_zero_window_never_fatal(self):
        assert fatal_probability_per_failure(1e-4, 4, 0.0) == 0.0
        assert math.isinf(mttdl(1e-4, 4, 0.0))

    def test_mttdl_raid_formula_limit(self):
        """For λW << 1, MTTDL ≈ MTBF² / (n·(n−1)·W) — the classic
        RAID-5 arithmetic."""
        lam, n, w = 1e-6, 5, 100.0
        expected = 1.0 / (n * lam * (n - 1) * lam * w)
        assert mttdl(lam, n, w) == pytest.approx(expected, rel=1e-3)

    def test_survival_bounds_and_monotonicity(self):
        lam, n, w = 1e-4, 4, 120.0
        s_short = job_survival_probability(lam, n, 3600.0, w)
        s_long = job_survival_probability(lam, n, 48 * 3600.0, w)
        assert 0.0 < s_long < s_short <= 1.0

    def test_compare_codes(self):
        c = compare_codes(1e-4, 6, 24 * 3600.0, 60.0)
        assert c.mttdl_rdp > c.mttdl_xor
        assert c.survival_rdp > c.survival_xor
        assert c.mttdl_gain > 10

    def test_validation(self):
        with pytest.raises(ValueError):
            fatal_probability_per_failure(0.0, 4, 10.0)
        with pytest.raises(ValueError):
            fatal_probability_per_failure(1e-4, 1, 10.0)
        with pytest.raises(ValueError):
            fatal_probability_per_failure(1e-4, 4, 10.0, tolerance=0)
        with pytest.raises(ValueError):
            job_survival_probability(1e-4, 4, -1.0, 10.0)

    def test_tolerance_exceeding_nodes_is_safe(self):
        # with 2 nodes and tolerance 2, a second window has 0 survivors
        assert fatal_probability_per_failure(1e-4, 2, 10.0, tolerance=2) == 0.0


class TestReliabilityVsSimulation:
    def test_model_brackets_measured_completion_rate(self):
        """The analytical survival probability should be in the same
        band as the end-to-end simulation's completion rate under dense
        failures (EXPERIMENTS.md completion-rate note)."""

        from repro import CheckpointedJob, dvdc, paper_scenario
        from repro.checkpoint import IncrementalCapture
        from repro.failures import Exponential, FailureInjector, FailureSchedule

        node_mtbf = 3 * 3600.0
        work = 2 * 3600.0
        completed = 0
        total = 12
        wall_times = []
        for seed in range(total):
            sc = paper_scenario(seed=seed, functional=True)
            rng = sc.rngs.stream("failures")
            sched = FailureSchedule.draw(
                rng, Exponential(1 / node_mtbf), 4, horizon=work * 10,
                repair_time=30.0,
            )
            inj = FailureInjector(sc.sim, 4, schedule=sched)
            ck = dvdc(sc.cluster, strategy=IncrementalCapture())
            job = CheckpointedJob(sc.cluster, ck, work=work, interval=600.0,
                                  injector=inj, repair_time=30.0)
            inj.start()
            proc = job.start()
            sc.sim.run()
            if proc.ok is False:
                raise proc.value
            if job.result.completed:
                completed += 1
                wall_times.append(job.result.wall_time)
        measured = completed / total
        # window: recovery (~40 s) + degraded until heal (≤ interval) ~ a
        # few hundred seconds; use a [60 s, 700 s] window band
        import numpy as np

        wall = float(np.mean(wall_times)) if wall_times else work * 1.5
        hi = job_survival_probability(1 / node_mtbf, 4, wall, 60.0)
        lo = job_survival_probability(1 / node_mtbf, 4, wall, 700.0)
        assert lo - 0.15 <= measured <= hi + 0.1
