"""Property-style tests for the recoverability invariants.

The load-bearing test is the seeded sweep: many random fault schedules
through the fuzzer across all three paper layouts must produce zero
invariant violations.  The rest pins down that each checker *does* fire
on deliberately broken state — an auditor that can't fail is not
auditing anything.
"""

import pytest

from repro.audit import (
    Auditor,
    AuditError,
    FuzzConfig,
    audit_cluster,
    check_epoch_coherence,
    check_layout_validity,
    check_parity_coherence,
    check_single_failure_recoverable,
    check_two_phase_atomicity,
    fuzz,
    run_trial,
    canonical_schedule,
)
from repro.audit.fuzzer import _build
from repro.cluster.images import CheckpointImage, CheckpointKind, ParityBlock
from repro.core import dvdc

from conftest import run_process


def _committed_state(config=None, seed=0):
    """A cluster with one committed epoch, plus its checkpointer."""
    from repro.sim import NULL_TRACER

    sim, cluster, ck, auditor, *_geo = _build(
        config or FuzzConfig(), seed, NULL_TRACER
    )
    run_process(sim, ck.run_cycle())
    return sim, cluster, ck, auditor


class TestFuzzPropertyClean:
    """N seeds x (cycles, schedule) -> zero violations, all layouts."""

    @pytest.mark.parametrize("layout", ["fig1", "fig3", "fig4"])
    def test_no_violations_under_adversarial_schedules(self, layout):
        result = fuzz(
            FuzzConfig(layout=layout, n_cycles=3), seeds=6, shrink_failing=False
        )
        assert result.ok, [
            str(v) for t in result.failures for v in t.violations
        ]
        # the sweep must actually exercise failures, not just idle cycles
        assert any(t.faults_fired for t in result.trials)
        assert all(t.commits >= 1 for t in result.trials)

    def test_heterogeneous_groups_clean(self):
        result = fuzz(
            FuzzConfig(layout="fig4", heterogeneous=True, n_cycles=3),
            seeds=6, shrink_failing=False,
        )
        assert result.ok, [
            str(v) for t in result.failures for v in t.violations
        ]

    def test_audits_actually_ran(self):
        config = FuzzConfig()
        trial = run_trial(config, canonical_schedule(config), seed=0)
        assert not trial.failed
        assert trial.recoveries == 1


class TestAuditorFires:
    """Each invariant checker detects its own corruption."""

    def test_corrupted_parity_detected(self):
        _, cluster, ck, _ = _committed_state()
        g = ck.layout.groups[0]
        cluster.node(g.parity_node).parity_store[g.group_id].data[7] ^= 0x5A
        report = audit_cluster(cluster, ck.layout, ck.committed_epoch)
        assert not report.ok
        kinds = {v.invariant for v in report.fatal}
        assert "parity-coherence" in kinds
        assert "single-failure-recoverable" in kinds

    def test_corrupted_committed_image_detected(self):
        _, cluster, ck, _ = _committed_state()
        vm = cluster.all_vms[0]
        img = cluster.hypervisor(vm.node_id).committed(vm.vm_id)
        img.payload_flat()[3] ^= 0xFF
        report = audit_cluster(cluster, ck.layout, ck.committed_epoch)
        assert not report.ok

    def test_epoch_mismatch_detected(self):
        _, cluster, ck, _ = _committed_state()
        g = ck.layout.groups[0]
        block = cluster.node(g.parity_node).parity_store[g.group_id]
        cluster.node(g.parity_node).parity_store[g.group_id] = ParityBlock(
            group_id=block.group_id,
            epoch=block.epoch + 3,
            member_vm_ids=block.member_vm_ids,
            logical_bytes=block.logical_bytes,
            data=block.data,
        )
        violations = check_epoch_coherence(
            cluster, ck.layout, ck.committed_epoch
        )
        assert any(v.invariant == "epoch-coherence" for v in violations)

    def test_leaked_staged_image_detected(self):
        """Two-phase atomicity: an artifact from an uncommitted epoch in
        any store is fatal."""
        _, cluster, ck, _ = _committed_state()
        vm = cluster.all_vms[0]
        node = cluster.node(vm.node_id)
        node.checkpoint_store[vm.vm_id] = CheckpointImage(
            vm_id=vm.vm_id,
            epoch=ck.committed_epoch + 1,  # never committed
            kind=CheckpointKind.FULL,
            logical_bytes=vm.memory_bytes,
            captured_at=0.0,
            payload=vm.image.snapshot(),
        )
        violations = check_two_phase_atomicity(
            cluster, ck.layout, ck.committed_epoch
        )
        assert any(v.invariant == "two-phase-atomicity" for v in violations)

    def test_colocated_member_degraded_vs_strict(self, paper_cluster, sim):
        ck = dvdc(paper_cluster)
        run_process(sim, ck.run_cycle())
        # move a member onto its own group's parity node
        g = ck.layout.groups[0]
        paper_cluster.move_vm(g.member_vm_ids[0], g.parity_node)
        lax = check_layout_validity(paper_cluster, ck.layout, strict=False)
        hard = check_layout_validity(paper_cluster, ck.layout, strict=True)
        assert lax and all(v.severity == "degraded" for v in lax)
        assert hard and all(v.severity == "fatal" for v in hard)

    def test_missing_parity_block_flagged(self):
        _, cluster, ck, _ = _committed_state()
        g = ck.layout.groups[0]
        del cluster.node(g.parity_node).parity_store[g.group_id]
        violations = check_parity_coherence(cluster, ck.layout, strict=True)
        assert any("no parity block" in v.detail for v in violations)

    def test_recoverability_check_constructive(self):
        """The recoverable checker really reconstructs: flipping one
        member's committed bytes breaks every *other* member's rebuild."""
        _, cluster, ck, _ = _committed_state()
        g = ck.layout.groups[0]
        victim = g.member_vm_ids[0]
        vm = cluster.vm(victim)
        cluster.hypervisor(vm.node_id).committed(victim).payload_flat()[0] ^= 1
        violations = check_single_failure_recoverable(cluster, ck.layout)
        flagged = {v.subject for v in violations}
        assert flagged == {f"vm {m}" for m in g.member_vm_ids}

    def test_auditor_assert_ok_raises(self):
        _, cluster, ck, auditor = _committed_state()
        g = ck.layout.groups[0]
        cluster.node(g.parity_node).parity_store[g.group_id].data[0] ^= 1
        auditor.run(ck.committed_epoch, context="test")
        assert auditor.violations
        with pytest.raises(AuditError):
            auditor.assert_ok()

    def test_fuzzer_flags_corruption_as_violation(self):
        """End-to-end: a trial against a checkpointer whose parity is
        corrupted mid-run must come back failed."""
        from repro.sim import NULL_TRACER

        config = FuzzConfig(n_cycles=2)
        sim, cluster, ck, auditor, *_geo = _build(config, 3, NULL_TRACER)

        def proc():
            yield from ck.run_cycle()
            g = ck.layout.groups[0]
            cluster.node(g.parity_node).parity_store[g.group_id].data[0] ^= 1
            yield from ck.run_cycle()

        run_process(sim, proc())
        # second cycle was a FULL capture: parity fully rewritten, so
        # corruption of the *first* epoch is only visible to the sweep
        # that ran between the cycles
        auditor.run(ck.committed_epoch, context="final", strict=True)
        assert auditor.n_audits >= 3


class TestHookWiring:
    def test_auditor_runs_on_every_cycle_and_recovery(self, paper_cluster, sim, rng):
        ck = dvdc(paper_cluster)
        auditor = Auditor(paper_cluster, ck.layout)
        ck.attach_auditor(auditor)

        def proc():
            yield from ck.run_cycle()
            yield from ck.run_cycle()
            paper_cluster.kill_node(1)
            yield from ck.recover(1)
            return None

        run_process(sim, proc())
        contexts = [r.context for r in auditor.reports]
        assert contexts.count("post_cycle") == 2
        assert contexts.count("post_recovery") == 1
        assert auditor.violations == []

    def test_constructor_kwarg_equivalent(self, paper_cluster, sim):
        auditor = Auditor(paper_cluster, None)
        ck = dvdc(paper_cluster, auditor=auditor)
        auditor.layout = ck.layout  # layout exists only after construction
        run_process(sim, ck.run_cycle())
        assert [r.context for r in auditor.reports] == ["post_cycle"]
        assert auditor.violations == []

    def test_no_auditor_is_free(self, paper_cluster, sim):
        ck = dvdc(paper_cluster)
        assert ck.auditor is None and ck.coordinator.auditor is None
        r = run_process(sim, ck.run_cycle())
        assert r.committed


class TestViolationPlumbing:
    def test_nothing_committed_is_trivially_ok(self, paper_cluster, sim):
        ck = dvdc(paper_cluster)
        report = audit_cluster(paper_cluster, ck.layout, ck.committed_epoch)
        assert report.ok and not report.violations

    def test_telemetry_counters(self):
        from repro.telemetry import Probe

        probe = Probe()
        config = FuzzConfig(n_cycles=2)
        trial = run_trial(config, canonical_schedule(config), 0, tracer=probe)
        assert not trial.failed
        fam = probe.metrics.counter("repro_audits_total")
        total = sum(s.value for _, s in fam.series())
        assert total >= config.n_cycles
        # run_trial itself does not count trials; fuzz() does
        trials = probe.metrics.counter("repro_fuzz_trials_total")
        assert sum(s.value for _, s in trials.series()) == 0

    def test_fuzz_counts_trials(self):
        from repro.telemetry import Probe

        probe = Probe()
        fuzz(FuzzConfig(n_cycles=2), seeds=2, tracer=probe)
        fam = probe.metrics.counter("repro_fuzz_trials_total")
        assert sum(s.value for _, s in fam.series()) == 2
