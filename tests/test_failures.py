"""Tests for failure distributions, injection, and MTBF arithmetic."""

import math

import numpy as np
import pytest

from repro.failures import (
    Bathtub,
    Exponential,
    FailureInjector,
    FailureSchedule,
    LogNormal,
    PAPER_LAMBDA,
    PAPER_MTBF_SECONDS,
    Weibull,
    checkpoint_viability,
    expected_failures,
    from_mtbf,
    mtbf_from_rate,
    node_mtbf_for_system,
    poisson_injector,
    probability_failure_free,
    rate_from_mtbf,
    system_mtbf,
)
from repro.sim import Simulator


class TestDistributions:
    def test_exponential_mean(self, rng):
        d = Exponential(1.0 / 100.0)
        assert d.mean() == pytest.approx(100.0)
        samples = d.sample_n(rng, 40000)
        assert samples.mean() == pytest.approx(100.0, rel=0.05)

    def test_exponential_memoryless_hazard(self):
        d = Exponential(0.01)
        assert d.hazard(0.0) == d.hazard(1000.0) == 0.01

    def test_exponential_cdf(self):
        d = Exponential(0.5)
        assert d.cdf(0.0) == 0.0
        assert d.cdf(2.0) == pytest.approx(1.0 - math.exp(-1.0))
        assert d.survival(2.0) == pytest.approx(math.exp(-1.0))

    def test_exponential_invalid_rate(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_weibull_mean_matches_samples(self, rng):
        d = Weibull.from_mtbf(500.0, shape=0.7)
        assert d.mean() == pytest.approx(500.0, rel=1e-9)
        samples = d.sample_n(rng, 60000)
        assert samples.mean() == pytest.approx(500.0, rel=0.08)

    def test_weibull_shape1_is_exponential(self):
        w = Weibull(shape=1.0, scale=200.0)
        e = Exponential(1.0 / 200.0)
        for t in (10.0, 100.0, 500.0):
            assert w.cdf(t) == pytest.approx(e.cdf(t))

    def test_weibull_hazard_direction(self):
        infant = Weibull.from_mtbf(100.0, shape=0.5)
        wearout = Weibull.from_mtbf(100.0, shape=3.0)
        assert infant.hazard(1.0) > infant.hazard(50.0)
        assert wearout.hazard(1.0) < wearout.hazard(50.0)

    def test_lognormal_from_mean_cv(self, rng):
        d = LogNormal.from_mean_cv(300.0, cv=1.5)
        assert d.mean() == pytest.approx(300.0, rel=1e-9)
        samples = d.sample_n(rng, 80000)
        assert samples.mean() == pytest.approx(300.0, rel=0.1)

    def test_bathtub_hazard_is_sum(self):
        b = Bathtub.typical(1000.0)
        t = 500.0
        assert b.hazard(t) == pytest.approx(
            b.infant.hazard(t) + b.life.hazard(t) + b.wearout.hazard(t)
        )

    def test_bathtub_survival_product(self):
        b = Bathtub.typical(1000.0)
        assert b.survival(200.0) == pytest.approx(
            b.infant.survival(200.0) * b.life.survival(200.0) * b.wearout.survival(200.0)
        )

    def test_bathtub_mean_close_to_life_phase(self):
        b = Bathtub.typical(1000.0)
        # competing risks shorten the mean below the life-phase MTBF
        m = b.mean()
        assert 300.0 < m < 1000.0

    def test_factory(self):
        assert isinstance(from_mtbf(100.0, "exponential"), Exponential)
        assert isinstance(from_mtbf(100.0, "weibull", shape=0.8), Weibull)
        assert isinstance(from_mtbf(100.0, "lognormal"), LogNormal)
        assert isinstance(from_mtbf(100.0, "bathtub"), Bathtub)
        with pytest.raises(ValueError):
            from_mtbf(100.0, "uniform")
        with pytest.raises(ValueError):
            from_mtbf(-1.0)

    def test_factory_mean_is_mtbf(self):
        for kind in ("exponential", "weibull", "lognormal"):
            assert from_mtbf(1234.0, kind).mean() == pytest.approx(1234.0, rel=1e-6)


class TestMtbf:
    def test_paper_lambda(self):
        assert PAPER_MTBF_SECONDS == 3 * 3600
        assert PAPER_LAMBDA == pytest.approx(9.26e-5, rel=2e-3)

    def test_rate_roundtrip(self):
        assert mtbf_from_rate(rate_from_mtbf(1234.0)) == pytest.approx(1234.0)

    def test_system_scaling(self):
        assert system_mtbf(1000.0, 10) == 100.0
        assert node_mtbf_for_system(100.0, 10) == 1000.0

    def test_viability(self):
        assert checkpoint_viability(3600.0, 360.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            checkpoint_viability(100.0, 0.0)

    def test_expected_failures_and_pff(self):
        assert expected_failures(0.01, 100.0) == pytest.approx(1.0)
        assert probability_failure_free(0.01, 100.0) == pytest.approx(math.exp(-1.0))


class TestSchedule:
    def test_draw_sorted_and_bounded(self, rng):
        sched = FailureSchedule.draw(rng, Exponential(1 / 100.0), 4, horizon=1000.0)
        times = [e.time for e in sched.events]
        assert times == sorted(times)
        assert all(0 < t <= 1000.0 for t in times)

    def test_ordinals_per_node(self, rng):
        sched = FailureSchedule.draw(rng, Exponential(1 / 50.0), 2, horizon=2000.0)
        for node in (0, 1):
            ords = [e.ordinal for e in sched.for_node(node)]
            assert ords == list(range(len(ords)))

    def test_repair_time_spaces_failures(self, rng):
        sched = FailureSchedule.draw(
            rng, Exponential(1 / 10.0), 1, horizon=10000.0, repair_time=100.0
        )
        times = [e.time for e in sched.for_node(0)]
        gaps = np.diff(times)
        assert (gaps >= 100.0).all()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            FailureSchedule.draw(rng, Exponential(0.1), 0, horizon=10.0)
        with pytest.raises(ValueError):
            FailureSchedule.draw(rng, Exponential(0.1), 1, horizon=0.0)
        with pytest.raises(ValueError):
            FailureSchedule.draw(rng, Exponential(0.1), 1, horizon=-10.0)
        with pytest.raises(ValueError):
            FailureSchedule.draw(
                rng, Exponential(0.1), 1, horizon=10.0, repair_time=-1.0
            )


class TestInjector:
    def test_replay_delivers_exact_times(self):
        sim = Simulator()
        sched = FailureSchedule(
            events=[]
        )
        from repro.failures import FailureEvent

        sched.events = [
            FailureEvent(10.0, 0, 0),
            FailureEvent(20.0, 1, 0),
            FailureEvent(30.0, 0, 1),
        ]
        inj = FailureInjector(sim, 2, schedule=sched)
        seen = []
        inj.subscribe(lambda ev: seen.append((sim.now, ev.node_id)))
        inj.start()
        sim.run()
        assert seen == [(10.0, 0), (20.0, 1), (30.0, 0)]
        assert len(inj.delivered) == 3

    def test_online_mode_counts_match_poisson(self, rng):
        sim = Simulator()
        inj = poisson_injector(sim, n_nodes=3, mtbf_per_node=100.0, rng=rng)
        count = [0]
        inj.subscribe(lambda ev: count.__setitem__(0, count[0] + 1))
        inj.start()
        sim.run(until=10000.0)
        # expect 3 nodes * 100 failures each = 300, Poisson sd ~ 17
        assert 200 < count[0] < 400

    def test_requires_exactly_one_mode(self, sim, rng):
        with pytest.raises(ValueError):
            FailureInjector(sim, 2)
        with pytest.raises(ValueError):
            FailureInjector(
                sim, 2, dist=Exponential(0.1), rng=rng,
                schedule=FailureSchedule(),
            )

    def test_online_requires_rng(self, sim):
        with pytest.raises(ValueError):
            FailureInjector(sim, 2, dist=Exponential(0.1))

    def test_schedule_node_out_of_range_rejected(self, sim):
        from repro.failures import FailureEvent

        sched = FailureSchedule(events=[FailureEvent(1.0, 5, 0)])
        inj = FailureInjector(sim, 2, schedule=sched)
        with pytest.raises(ValueError):
            inj.start()

    def test_start_idempotent(self, sim, rng):
        inj = poisson_injector(sim, 1, 100.0, rng)
        inj.start()
        inj.start()
        sim.run(until=50.0)
        # no duplicated arming: delivered counts are plausible (not doubled)
        assert len(inj.delivered) <= 3
