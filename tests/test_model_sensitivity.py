"""Tests for the renewal Monte-Carlo and Poisson-sensitivity analysis."""

import numpy as np
import pytest

from repro.failures import Bathtub, Exponential, LogNormal, Weibull
from repro.model import (
    estimate_expected_time,
    poisson_sensitivity,
    simulate_renewal_completion_times,
)


class TestRenewalSimulator:
    def test_failure_free_deterministic(self, rng):
        dist = Exponential(1e-15)
        times = simulate_renewal_completion_times(
            rng, dist, T=100.0, N=10.0, T_ov=1.0, n_runs=5
        )
        assert np.allclose(times, 110.0)

    def test_exponential_matches_memoryless_simulator(self, rng):
        """For exponential failures the renewal and per-segment
        memoryless games have identical distributions."""
        lam, T, N, Tov, Tr = 1 / 1800.0, 4 * 3600.0, 900.0, 60.0, 30.0
        renewal = simulate_renewal_completion_times(
            rng, Exponential(lam), T, N, Tov, Tr, n_runs=8000
        )
        memoryless = estimate_expected_time(rng, lam, T, N, Tov, Tr, n_runs=8000)
        se = np.sqrt(
            renewal.std(ddof=1) ** 2 / len(renewal) + memoryless.std_error**2
        )
        assert abs(renewal.mean() - memoryless.mean) < 4 * se

    def test_validation(self, rng):
        d = Exponential(1e-3)
        with pytest.raises(ValueError):
            simulate_renewal_completion_times(rng, d, T=0.0, N=1.0)
        with pytest.raises(ValueError):
            simulate_renewal_completion_times(rng, d, T=1.0, N=0.0)
        with pytest.raises(ValueError):
            simulate_renewal_completion_times(rng, d, T=1.0, N=1.0, T_ov=-1.0)
        with pytest.raises(ValueError):
            simulate_renewal_completion_times(rng, d, T=1.0, N=1.0, n_runs=0)

    def test_no_checkpointing_mode(self, rng):
        d = Exponential(1 / 50.0)
        times = simulate_renewal_completion_times(rng, d, T=100.0, N=None,
                                                  n_runs=3000)
        # heavy failure regime: far above T on average
        assert times.mean() > 200.0

    def test_final_checkpoint_flag(self, rng):
        d = Exponential(1e-15)
        with_final = simulate_renewal_completion_times(
            rng, d, 100.0, 10.0, T_ov=1.0, n_runs=2, final_checkpoint=True
        )
        without = simulate_renewal_completion_times(
            rng, d, 100.0, 10.0, T_ov=1.0, n_runs=2, final_checkpoint=False
        )
        assert np.allclose(with_final - without, 1.0)


class TestPoissonSensitivity:
    T, N, Tov, Tr = 8 * 3600.0, 1200.0, 120.0, 60.0
    MTBF = 2 * 3600.0

    def test_exponential_self_consistent(self, rng):
        r = poisson_sensitivity(
            rng, Exponential(1 / self.MTBF), self.T, self.N, self.Tov,
            self.Tr, n_runs=4000,
        )
        assert abs(r.relative_error) < 0.02

    def test_weibull_infant_mortality_small_error(self, rng):
        """Schroeder–Gibson-like Weibull (shape 0.7): the Poisson model
        stays within a few percent at the paper's operating regime
        (N + T_ov << MTBF)."""
        r = poisson_sensitivity(
            rng, Weibull.from_mtbf(self.MTBF, 0.7), self.T, self.N,
            self.Tov, self.Tr, n_runs=4000,
        )
        assert abs(r.relative_error) < 0.05

    def test_lognormal_small_error(self, rng):
        r = poisson_sensitivity(
            rng, LogNormal.from_mean_cv(self.MTBF, 1.5), self.T, self.N,
            self.Tov, self.Tr, n_runs=4000,
        )
        assert abs(r.relative_error) < 0.06

    def test_bathtub_uses_its_own_mtbf(self, rng):
        b = Bathtub.typical(self.MTBF)
        r = poisson_sensitivity(rng, b, self.T, self.N, self.Tov, self.Tr,
                                n_runs=2000)
        # competing risks shrink the effective MTBF below the life phase
        assert r.mtbf < self.MTBF
        assert abs(r.relative_error) < 0.08

    def test_heavy_regime_deviation_grows(self, rng):
        """When segments are no longer << MTBF the shape of the
        distribution starts to matter — the caveat has teeth somewhere."""
        mtbf = 1800.0  # 30 min, with 20-min segments
        light = poisson_sensitivity(
            rng, Weibull.from_mtbf(self.MTBF, 0.5), self.T, self.N,
            self.Tov, self.Tr, n_runs=2500,
        )
        heavy = poisson_sensitivity(
            rng, Weibull.from_mtbf(mtbf, 0.5), self.T, self.N,
            self.Tov, self.Tr, n_runs=2500,
        )
        assert abs(heavy.relative_error) > abs(light.relative_error)
