"""Tests for layout validation and failure-tolerance analysis (Fig. 2)."""

import pytest

from repro.core import (
    GroupLayout,
    LayoutError,
    RaidGroup,
    group_losses_if_node_fails,
    layout_dvdc,
    rebalance_after_migration,
    survives_single_node_failure,
    tolerable_node_failure_sets,
    validate_layout,
)


class TestValidate:
    def test_valid_dvdc_layout(self, cluster4):
        cluster4.create_vms_balanced(12, 1e9)
        layout = layout_dvdc(cluster4)
        report = validate_layout(layout, cluster4)
        assert report.ok
        report.raise_if_invalid()

    def test_colocated_members_flagged(self, cluster4):
        cluster4.create_vms_balanced(8, 1e9)  # vms 0,4 on node 0
        layout = GroupLayout([RaidGroup(0, (0, 4), 1)])
        report = validate_layout(layout, cluster4)
        assert not report.ok
        assert "exceeds tolerance" in report.errors[0]
        with pytest.raises(LayoutError):
            report.raise_if_invalid()

    def test_parity_colocated_with_member_flagged(self, cluster4):
        cluster4.create_vms_balanced(8, 1e9)
        layout = GroupLayout([RaidGroup(0, (0, 1), 0)])  # parity with vm0
        assert not validate_layout(layout, cluster4).ok

    def test_higher_tolerance_allows_colocation(self, cluster4):
        cluster4.create_vms_balanced(8, 1e9)
        layout = GroupLayout([RaidGroup(0, (0, 4), 1)])
        assert validate_layout(layout, cluster4, tolerance=2).ok

    def test_homeless_member_flagged(self, cluster4):
        vms = cluster4.create_vms_balanced(4, 1e9)
        cluster4.node(0).evict(vms[0])
        layout = GroupLayout([RaidGroup(0, (0, 1), 3)])
        report = validate_layout(layout, cluster4)
        assert not report.ok
        assert "homeless" in report.errors[0]


class TestFailureAnalysis:
    def test_figure2_single_controller_survivable(self, cluster4):
        """Fig. 2's claim: gridding groups across nodes makes any single
        node (controller) failure survivable."""
        cluster4.create_vms_balanced(12, 1e9)
        layout = layout_dvdc(cluster4)
        assert survives_single_node_failure(layout, cluster4)

    def test_losses_per_node(self, cluster4):
        cluster4.create_vms_balanced(12, 1e9)
        layout = layout_dvdc(cluster4)
        for node in range(4):
            losses = group_losses_if_node_fails(layout, cluster4, node)
            # node hosts 3 member VMs (3 groups) + 1 parity block
            assert len(losses) == 4
            assert all(v == 1 for v in losses.values())

    def test_bad_layout_not_survivable(self, cluster4):
        cluster4.create_vms_balanced(8, 1e9)
        layout = GroupLayout([RaidGroup(0, (0, 4), 1)])  # both on node 0
        assert not survives_single_node_failure(layout, cluster4)

    def test_double_failures_fatal_under_xor(self, cluster4):
        cluster4.create_vms_balanced(12, 1e9)
        layout = layout_dvdc(cluster4)
        survivable, fatal = tolerable_node_failure_sets(
            layout, cluster4, tolerance=1, max_set=2
        )
        singles = [c for c in survivable if len(c) == 1]
        doubles_fatal = [c for c in fatal if len(c) == 2]
        assert len(singles) == 4  # every single failure OK
        assert len(doubles_fatal) == 6  # every pair fatal (k = n-1)

    def test_double_failures_survivable_under_rdp_tolerance(self, cluster4):
        cluster4.create_vms_balanced(12, 1e9)
        layout = layout_dvdc(cluster4)
        survivable, fatal = tolerable_node_failure_sets(
            layout, cluster4, tolerance=2, max_set=2
        )
        assert [c for c in fatal if len(c) == 2] == []


class TestRebalance:
    def test_unbroken_layout_returned_verbatim(self, cluster4):
        cluster4.create_vms_balanced(12, 1e9)
        layout = layout_dvdc(cluster4)
        assert rebalance_after_migration(layout, cluster4) is layout

    def test_migration_breaking_group_triggers_rebuild(self, cluster4):
        cluster4.create_vms_balanced(12, 1e9)
        layout = layout_dvdc(cluster4)
        g0 = layout.groups[0]
        # move one member of group 0 onto another member's node
        a, b = g0.member_vm_ids[0], g0.member_vm_ids[1]
        cluster4.move_vm(a, cluster4.vm(b).node_id)
        assert not validate_layout(layout, cluster4).ok
        fixed = rebalance_after_migration(layout, cluster4)
        assert validate_layout(fixed, cluster4).ok
        assert sorted(fixed.vm_ids) == list(range(12))

    def test_kept_groups_preserve_ids(self, cluster4):
        cluster4.create_vms_balanced(12, 1e9)
        layout = layout_dvdc(cluster4)
        g0 = layout.groups[0]
        a, b = g0.member_vm_ids[0], g0.member_vm_ids[1]
        cluster4.move_vm(a, cluster4.vm(b).node_id)
        fixed = rebalance_after_migration(layout, cluster4)
        surviving_ids = {g.group_id for g in layout.groups[1:]}
        assert surviving_ids.issubset({g.group_id for g in fixed.groups})
