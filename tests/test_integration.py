"""Integration tests: whole-system flows crossing every subpackage.

These are the executable versions of the paper's claims:

* the Fig. 4 cluster survives any single node failure bit-exactly;
* DVDC's realized time ratio beats the diskful baseline under the same
  failure trace (the Fig. 5 ordering, system-level);
* the simulated job's time ratio is in the neighbourhood of the
  analytical model's prediction (the corroboration claim);
* migration + rebalance keeps the protection invariants alive.
"""

import numpy as np
import pytest

from repro.checkpoint import DiskfulCheckpointer, IncrementalCapture
from repro.core import dvdc, rebalance_after_migration, validate_layout
from repro.failures import Exponential, FailureInjector, FailureSchedule
from repro.migration import live_migrate
from repro.model import expected_time_with_overhead
from repro.workloads import CheckpointedJob, paper_scenario

from conftest import run_process


def _run_job(kind, seed, work=2 * 3600.0, interval=600.0, mtbf_node=4 * 3600.0):
    sc = paper_scenario(seed=seed, functional=True)
    rng = sc.rngs.stream("failures")
    sched = FailureSchedule.draw(
        rng, Exponential(1 / mtbf_node), 4, horizon=work * 8, repair_time=30.0
    )
    inj = FailureInjector(sc.sim, 4, schedule=sched)
    if kind == "dvdc":
        ck = dvdc(sc.cluster, strategy=IncrementalCapture())
    else:
        ck = DiskfulCheckpointer(sc.cluster)
    job = CheckpointedJob(
        sc.cluster, ck, work=work, interval=interval, injector=inj, repair_time=30.0
    )
    inj.start()
    proc = job.start()
    sc.sim.run()
    if proc.ok is False:
        raise proc.value
    return job.result


class TestSingleFailureSurvival:
    @pytest.mark.parametrize("node", [0, 1, 2, 3])
    def test_any_single_node_failure_bit_exact(self, node):
        sc = paper_scenario(seed=42)
        ck = dvdc(sc.cluster)
        rng = sc.rngs.stream("writes")
        committed = {}

        def proc():
            yield from ck.run_cycle()
            for vm in sc.cluster.all_vms:
                committed[vm.vm_id] = (
                    sc.cluster.hypervisor(vm.node_id)
                    .committed(vm.vm_id).payload_flat().copy()
                )
                vm.image.touch_pages(rng.integers(0, 64, 6), rng)
            sc.cluster.kill_node(node)
            yield from ck.recover(node)

        run_process(sc.sim, proc())
        for vm in sc.cluster.all_vms:
            assert vm.state.value == "running"
            assert np.array_equal(vm.image.flat, committed[vm.vm_id])


class TestPairedComparison:
    def test_dvdc_beats_diskful_same_trace(self):
        wins = 0
        for seed in range(5):
            r_d = _run_job("dvdc", seed)
            r_f = _run_job("diskful", seed)
            if not (r_d.completed and r_f.completed):
                continue
            if r_d.wall_time < r_f.wall_time:
                wins += 1
        assert wins >= 4  # DVDC wins essentially always

    def test_dvdc_checkpoint_time_tiny_vs_diskful(self):
        r_d = _run_job("dvdc", seed=1)
        r_f = _run_job("diskful", seed=1)
        assert r_d.checkpoint_time < r_f.checkpoint_time / 10


class TestModelCorroboration:
    def test_simulated_ratio_near_model_prediction(self):
        """System-level Monte-Carlo vs the closed-form expected time.

        A single stochastic run is noisy, so average a few seeds and
        allow a generous band; the point is agreement in *scale*.
        """
        work, interval = 2 * 3600.0, 600.0
        mtbf_node = 6 * 3600.0  # cluster MTBF 1.5 h
        lam = 4 / mtbf_node
        ratios = []
        for seed in range(6):
            r = _run_job("diskful", seed, work, interval, mtbf_node)
            if r.completed:
                ratios.append(r.time_ratio)
        measured = float(np.mean(ratios))
        # model: diskful overhead at this configuration
        from repro.model import ClusterModel, diskful_costs

        t_ov = diskful_costs(ClusterModel(), interval).overhead
        predicted = expected_time_with_overhead(lam, work, interval, t_ov, 30.0) / work
        assert measured == pytest.approx(predicted, rel=0.35)


class TestMigrationIntegration:
    def test_migrate_then_rebalance_keeps_protection(self):
        sc = paper_scenario(seed=7)
        ck = dvdc(sc.cluster)

        def proc():
            yield from ck.run_cycle()
            # break the layout: move a VM onto a groupmate's node
            g0 = ck.layout.groups[0]
            a, b = g0.member_vm_ids[0], g0.member_vm_ids[1]
            vm = sc.cluster.vm(a)
            target = sc.cluster.vm(b).node_id
            yield from live_migrate(sc.cluster, vm, target)

        run_process(sc.sim, proc())
        assert not validate_layout(ck.layout, sc.cluster).ok
        fixed = rebalance_after_migration(ck.layout, sc.cluster)
        assert validate_layout(fixed, sc.cluster).ok

    def test_migration_traffic_contends_with_checkpoints(self):
        """A migration sharing links with a checkpoint cycle slows it."""
        sc1 = paper_scenario(seed=3)
        ck1 = dvdc(sc1.cluster)

        def just_cycle():
            r = yield from ck1.run_cycle()
            return r

        solo = run_process(sc1.sim, just_cycle())

        sc2 = paper_scenario(seed=3)
        ck2 = dvdc(sc2.cluster)

        def cycle_with_migration():
            cyc = sc2.sim.process(ck2.run_cycle())
            yield sc2.sim.timeout(1.0)  # let the capture barrier pass
            vm = sc2.cluster.vms_on(0)[0]
            mig = sc2.sim.process(live_migrate(sc2.cluster, vm, 1))
            r = yield cyc
            yield mig
            return r

        busy = run_process(sc2.sim, cycle_with_migration())
        assert busy.latency > solo.latency


class TestLongHaul:
    def test_twentyfour_hour_job_with_repeated_failures(self):
        r = _run_job("dvdc", seed=13, work=24 * 3600.0, interval=900.0,
                     mtbf_node=8 * 3600.0)
        assert r.completed
        assert r.n_failures >= 3
        assert r.n_recoveries >= 3
        assert r.time_ratio < 2.0
