"""Chunked Monte-Carlo: deterministic seeding, chunk/monolithic equality."""

import numpy as np
import pytest

from repro.model import (
    chunk_moments,
    chunk_seed,
    chunk_sizes,
    estimate_expected_time_chunked,
    estimate_from_moments,
    simulate_completion_times_chunk,
    simulate_completion_times_chunked,
)

ARGS = dict(lam=1 / 3600.0, T=4 * 3600.0, N=900.0, T_ov=120.0, T_r=60.0)


class TestChunkPlan:
    def test_sizes_cover_n_runs(self):
        assert chunk_sizes(1000, 256) == [256, 256, 256, 232]
        assert chunk_sizes(512, 512) == [512]
        assert chunk_sizes(5, 8) == [5]

    def test_invalid(self):
        with pytest.raises(ValueError):
            chunk_sizes(0, 8)
        with pytest.raises(ValueError):
            chunk_sizes(8, 0)

    def test_chunk_seeds_distinct_and_stable(self):
        seeds = [chunk_seed(3, i) for i in range(16)]
        assert len(set(seeds)) == 16
        assert seeds == [chunk_seed(3, i) for i in range(16)]
        assert chunk_seed(3, 0) != chunk_seed(4, 0)


class TestChunkedEqualsMonolithic:
    def test_independent_chunks_concatenate_to_monolithic(self):
        """The satellite guarantee: computing each chunk independently
        (as a campaign worker would) and concatenating reproduces the
        single-call result exactly, for the same master seed."""
        master, n_runs, chunk_runs = 42, 700, 128
        monolithic = simulate_completion_times_chunked(
            master, n_runs=n_runs, chunk_runs=chunk_runs, **ARGS
        )
        parts = [
            simulate_completion_times_chunk(master, i, size, **ARGS)
            for i, size in enumerate(chunk_sizes(n_runs, chunk_runs))
        ]
        assert monolithic.shape == (n_runs,)
        assert np.array_equal(monolithic, np.concatenate(parts))

    def test_chunk_evaluation_order_irrelevant(self):
        master, n_runs, chunk_runs = 7, 512, 128
        sizes = chunk_sizes(n_runs, chunk_runs)
        forward = [
            simulate_completion_times_chunk(master, i, sizes[i], **ARGS)
            for i in range(len(sizes))
        ]
        backward = [
            simulate_completion_times_chunk(master, i, sizes[i], **ARGS)
            for i in reversed(range(len(sizes)))
        ]
        for i, arr in enumerate(reversed(backward)):
            assert np.array_equal(forward[i], arr)

    def test_different_chunks_differ(self):
        a = simulate_completion_times_chunk(0, 0, 64, **ARGS)
        b = simulate_completion_times_chunk(0, 1, 64, **ARGS)
        assert not np.array_equal(a, b)

    def test_different_master_seeds_differ(self):
        a = simulate_completion_times_chunk(0, 0, 64, **ARGS)
        b = simulate_completion_times_chunk(1, 0, 64, **ARGS)
        assert not np.array_equal(a, b)


class TestMoments:
    def test_moments_merge_matches_direct_stats(self):
        master, n_runs, chunk_runs = 11, 600, 150
        samples = simulate_completion_times_chunked(
            master, n_runs=n_runs, chunk_runs=chunk_runs, **ARGS
        )
        est = estimate_expected_time_chunked(
            master, n_runs=n_runs, chunk_runs=chunk_runs, **ARGS
        )
        assert est.n_runs == n_runs
        assert est.mean == pytest.approx(samples.mean(), rel=1e-12)
        assert est.std_error == pytest.approx(
            samples.std(ddof=1) / np.sqrt(n_runs), rel=1e-9
        )

    def test_merge_is_exact_for_partitioned_chunks(self):
        master = 5
        sizes = chunk_sizes(384, 128)
        moments = [
            chunk_moments(
                simulate_completion_times_chunk(master, i, size, **ARGS)
            )
            for i, size in enumerate(sizes)
        ]
        merged = estimate_from_moments(moments)
        again = estimate_expected_time_chunked(
            master, n_runs=384, chunk_runs=128, **ARGS
        )
        assert merged.mean == again.mean
        assert merged.std_error == again.std_error

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            estimate_from_moments([])

    def test_single_sample_has_infinite_error(self):
        est = estimate_from_moments([{"n": 1, "sum": 2.0, "sumsq": 4.0}])
        assert est.mean == 2.0
        assert est.std_error == float("inf")

    def test_agrees_with_closed_form(self):
        from repro.model import expected_time_with_overhead

        est = estimate_expected_time_chunked(
            3, n_runs=4000, chunk_runs=512, **ARGS
        )
        analytic = expected_time_with_overhead(
            ARGS["lam"], ARGS["T"], ARGS["N"], ARGS["T_ov"], ARGS["T_r"]
        )
        assert est.within(analytic)
