"""The pluggable coding-scheme layer: registry, exhaustive erasure
round-trips, scheme semantics, XOR transparency, multi-shard layouts,
and the tolerance-aware scrubber.

The decode-identity tests enumerate *every* erasure pattern up to each
scheme's tolerance — for RS that is the full MDS claim over k ≤ 8,
m ≤ 3, so a single non-invertible survivor submatrix or off-by-one in
the padding convention cannot slip through.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, VirtualCluster
from repro.cluster.checksum import block_checksum
from repro.cluster.xorsum import xor_reduce_padded
from repro.coding import (
    CodingScheme,
    RDPScheme,
    ReedSolomonScheme,
    ReplicationScheme,
    XorScheme,
    available_schemes,
    get_scheme,
    parse_scheme,
    register_scheme,
    shard_key,
)
from repro.coding import schemes as schemes_mod
from repro.core import dvdc
from repro.core.groups import build_orthogonal_layout, layout_dvdc
from repro.core.parity import ParityCodeError
from repro.core.placement import validate_layout
from repro.resilience import Scrubber
from repro.sim import Simulator

from conftest import run_process


def _members(seed: int, lengths) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, n, dtype=np.uint8) for n in lengths]


def _assert_round_trip(scheme: CodingScheme, members, shards, pattern):
    """Erase ``pattern`` (indices over the k+m member∥shard slots),
    reconstruct, and demand bit-identity on every member."""
    k = len(members)
    length = max(m.shape[0] for m in members)
    mem = [None if i in pattern else members[i] for i in range(k)]
    shd = [None if k + j in pattern else shards[j] for j in range(len(shards))]
    rebuilt = scheme.reconstruct(mem, shd, nbytes=length)
    assert len(rebuilt) == k
    for i, original in enumerate(members):
        got = rebuilt[i]
        assert got.shape[0] >= original.shape[0]
        assert np.array_equal(got[: original.shape[0]], original), (
            f"{scheme.name}: member {i} wrong after erasing {pattern}"
        )
        # zero-pad convention: nothing but padding past the logical size
        assert not got[original.shape[0] :].any()


class TestRegistry:
    def test_builtin_names_resolve(self):
        assert isinstance(parse_scheme("xor"), XorScheme)
        assert isinstance(parse_scheme("rdp"), RDPScheme)
        rs = parse_scheme("rs-8-2")
        assert isinstance(rs, ReedSolomonScheme)
        assert rs.n_shards == 2 and rs.tolerance == 2
        rep = parse_scheme("rep-3")
        assert isinstance(rep, ReplicationScheme)
        assert rep.copies == 3 and rep.n_shards == 2 and rep.tolerance == 2

    def test_parametric_specs(self):
        rs = parse_scheme("rs-5-3")
        assert rs.n_shards == 3 and rs.tolerance == 3
        rep = parse_scheme("rep-4")
        assert rep.copies == 4 and rep.tolerance == 3

    def test_unknown_specs_rejected(self):
        for bad in ("lrc-4", "rs-8", "rs-a-b", "rep-x", ""):
            with pytest.raises(ValueError, match="unknown coding scheme|known"):
                parse_scheme(bad)

    def test_get_scheme_coercions(self):
        assert isinstance(get_scheme(None), XorScheme)
        inst = ReedSolomonScheme(m=2, k_hint=4)
        assert get_scheme(inst) is inst
        assert isinstance(get_scheme("rep-3"), ReplicationScheme)

    def test_custom_registration(self):
        class Doubled(XorScheme):
            name = "xor-custom-test"

        register_scheme("xor-custom-test", Doubled)
        try:
            assert isinstance(get_scheme("xor-custom-test"), Doubled)
            assert "xor-custom-test" in available_schemes()
        finally:
            schemes_mod._REGISTRY.pop("xor-custom-test")

    def test_available_lists_builtins_and_families(self):
        names = available_schemes()
        for expected in ("xor", "rdp", "rs-8-2", "rep-3", "rs-<k>-<m>", "rep-<n>"):
            assert expected in names

    def test_shard_key_packing(self):
        assert shard_key(7, 0) == 7  # shard 0 keeps the legacy key
        seen = set()
        for gid in range(20):
            for j in range(16):
                key = shard_key(gid, j)
                assert key not in seen
                seen.add(key)
        with pytest.raises(ValueError):
            shard_key(0, 16)
        with pytest.raises(ValueError):
            shard_key(0, -1)

    def test_replication_needs_two_copies(self):
        with pytest.raises(ValueError):
            ReplicationScheme(1)


class TestExhaustiveErasures:
    """encode ∘ decode identity over *all* ≤ tolerance erasure patterns."""

    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_reed_solomon_every_pattern(self, k, m):
        scheme = ReedSolomonScheme(m=m, k_hint=k)
        lengths = [97 + 13 * (i % 3) for i in range(k)]  # heterogeneous
        members = _members(1000 * k + m, lengths)
        shards = scheme.encode(members)
        assert len(shards) == m
        for r in range(1, m + 1):
            for pattern in combinations(range(k + m), r):
                _assert_round_trip(scheme, members, shards, set(pattern))

    def test_reed_solomon_beyond_tolerance_raises(self):
        scheme = ReedSolomonScheme(m=2, k_hint=4)
        members = _members(3, [64, 64, 64, 64])
        shards = scheme.encode(members)
        mem = [None, None, None, members[3]]
        with pytest.raises(ParityCodeError):
            scheme.reconstruct(mem, shards, nbytes=64)

    @pytest.mark.parametrize(
        "scheme", [XorScheme(), RDPScheme()], ids=["xor", "rdp"]
    )
    def test_legacy_schemes_every_pattern(self, scheme):
        k = 5
        members = _members(42, [80, 80, 61, 80, 33])
        shards = scheme.encode(members)
        assert len(shards) == scheme.n_shards
        for r in range(1, scheme.tolerance + 1):
            for pattern in combinations(range(k + scheme.n_shards), r):
                _assert_round_trip(scheme, members, shards, set(pattern))

    def test_replication_survives_everything_but_total_loss(self):
        scheme = ReplicationScheme(3)
        k = 4
        members = _members(9, [50, 70, 70, 70])
        shards = scheme.encode(members)
        # all members gone, one replica left: full rebuild
        _assert_round_trip(scheme, members, shards, {0, 1, 2, 3, k + 0})
        # every replica gone but members intact: nothing to do
        _assert_round_trip(scheme, members, shards, {k, k + 1})
        # a member *and* every replica gone: genuinely lost
        with pytest.raises(ParityCodeError):
            scheme.reconstruct(
                [None] + list(members[1:]), [None, None], nbytes=70
            )

    def test_intact_decode_returns_copies(self):
        scheme = ReedSolomonScheme(m=2, k_hint=3)
        members = _members(5, [32, 32, 32])
        out = scheme.reconstruct(list(members), scheme.encode(members))
        out[0][:] = 0
        assert members[0].any()  # caller mutation never reaches the input


class TestSchemeSemantics:
    def test_xor_encode_is_the_historical_kernel(self):
        members = _members(11, [100, 64, 100])
        (shard,) = XorScheme().encode(members)
        assert np.array_equal(shard, xor_reduce_padded(members))

    def test_cost_model_numbers(self):
        xor, rs, rep = XorScheme(), parse_scheme("rs-8-2"), parse_scheme("rep-3")
        assert xor.storage_overhead(8) == pytest.approx(1 / 8)
        assert xor.traffic_factor(8) == 1.0
        assert rs.storage_overhead(8) == pytest.approx(2 / 8)
        assert rs.traffic_factor(8) == 2.0
        assert rep.storage_overhead(8) == 2.0
        assert rep.traffic_factor(8) == 2.0
        rdp = RDPScheme()
        assert rdp.traffic_factor(8) == 2.0

    def test_replication_length_round_trip(self):
        rep = ReplicationScheme(3)
        assert rep.shard_length(128, 4) == 512
        assert rep.working_length(512, 4) == 128

    def test_rs_shard_lengths_track_longest_member(self):
        rs = ReedSolomonScheme(m=2, k_hint=3)
        shards = rs.encode(_members(2, [10, 99, 40]))
        assert all(s.shape[0] == 99 for s in shards)
        assert rs.working_length(99, 3) == 99


class TestXorTransparency:
    """The default path *is* the XOR scheme: identical clusters driven
    with ``scheme=None`` and ``scheme=XorScheme()`` commit bit-identical
    parity and checkpoints.  (The pinned ``tests/golden/scale64.json``
    digests extend the same claim to the 64-node scale scenario.)"""

    def _checkpointed(self, scheme):
        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=4))
        vms = cluster.create_vms_balanced(
            12, 1e9, dirty_rate=1e6, image_pages=32, page_size=128
        )
        rng = np.random.default_rng(777)
        for vm in vms:
            vm.image.write(0, rng.integers(0, 256, 2048, dtype=np.uint8))
            vm.image.clear_dirty()
        ck = dvdc(cluster, scheme=scheme)

        def cycle():
            r = yield from ck.run_cycle()
            assert r.committed

        run_process(sim, cycle())
        return cluster, ck

    def test_default_equals_explicit_xor_bit_for_bit(self):
        ca, cka = self._checkpointed(None)
        cb, ckb = self._checkpointed(XorScheme())
        assert isinstance(cka.scheme, XorScheme)
        for ga, gb in zip(cka.layout.groups, ckb.layout.groups):
            assert ga.parity_nodes == gb.parity_nodes
            ba = ca.node(ga.parity_node).parity_store[ga.group_id]
            bb = cb.node(gb.parity_node).parity_store[gb.group_id]
            assert ba.checksum == bb.checksum
            assert np.array_equal(ba.data, bb.data)
            for v in ga.member_vm_ids:
                ia = ca.hypervisor(ca.vm(v).node_id).committed(v)
                ib = cb.hypervisor(cb.vm(v).node_id).committed(v)
                assert np.array_equal(ia.payload, ib.payload)


class TestMultiShardLayouts:
    def _cluster(self, n_nodes=8, vms=16):
        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=n_nodes))
        cluster.create_vms_balanced(
            vms, 1e9, dirty_rate=1e6, image_pages=8, page_size=64
        )
        return cluster

    def test_orthogonal_layout_places_distinct_shard_homes(self):
        cluster = self._cluster()
        layout = build_orthogonal_layout(cluster, 6, n_parity=2)
        for g in layout.groups:
            assert len(g.parity_nodes) == 2
            assert len(set(g.parity_nodes)) == 2
            member_nodes = {cluster.vm(v).node_id for v in g.member_vm_ids}
            assert not member_nodes & set(g.parity_nodes)
        assert validate_layout(layout, cluster, tolerance=2).ok

    def test_layout_dvdc_reserves_one_node_per_shard(self):
        cluster = self._cluster()
        layout = layout_dvdc(cluster, n_parity=2)
        assert all(len(g.member_vm_ids) <= 6 for g in layout.groups)
        layout1 = layout_dvdc(cluster)
        assert any(len(g.member_vm_ids) == 7 for g in layout1.groups)


class TestSchemeAwareScrubber:
    """Regression for the scrubber's tolerance classification.

    The pre-scheme scrubber hard-coded tolerance 1 ("corruption beyond
    parity count"), so a corrupt shard plus a dead shard home — two
    erasures — was declared unrepairable even under RS(k, 2), which
    repairs it fine.  These tests pin the fixed behavior."""

    def _checkpointed(self, n_nodes, scheme):
        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=n_nodes))
        vms = cluster.create_vms_balanced(
            2 * n_nodes, 1e9, dirty_rate=1e6, image_pages=16, page_size=128
        )
        rng = np.random.default_rng(4242)
        for vm in vms:
            vm.image.write(0, rng.integers(0, 256, 1024, dtype=np.uint8))
            vm.image.clear_dirty()
        ck = dvdc(cluster, scheme=scheme)

        def cycle():
            r = yield from ck.run_cycle()
            assert r.committed

        run_process(sim, cycle())
        return cluster, ck

    def test_rs82_survives_corrupt_shard_plus_dead_shard_home(self):
        cluster, ck = self._checkpointed(6, "rs-8-2")
        group = ck.layout.groups[0]
        home0, home1 = group.parity_nodes
        block = cluster.node(home0).parity_store[shard_key(group.group_id, 0)]
        block.data[5] ^= np.uint8(0x40)
        pristine = block.checksum
        cluster.kill_node(home1)  # second erasure, simultaneous

        report = Scrubber(cluster, ck.layout, scheme=ck.scheme).scrub_once()
        assert f"shard0 g{group.group_id}" in report.repaired
        assert report.unrepairable == []
        assert block_checksum(block.data) == pristine

    def test_rs82_corrupt_member_and_shard_both_repaired(self):
        cluster, ck = self._checkpointed(6, "rs-8-2")
        group = ck.layout.groups[0]
        vid = group.member_vm_ids[1]
        vm = cluster.vm(vid)
        img = cluster.hypervisor(vm.node_id).committed(vid)
        img.payload.reshape(-1).view(np.uint8)[3] ^= np.uint8(0x02)
        block = cluster.node(group.parity_nodes[1]).parity_store[
            shard_key(group.group_id, 1)
        ]
        block.data[0] ^= np.uint8(0x80)

        report = Scrubber(cluster, ck.layout, scheme=ck.scheme).scrub_once()
        assert f"image vm{vid}" in report.repaired
        assert f"shard1 g{group.group_id}" in report.repaired
        assert report.unrepairable == []

    def test_three_erasures_still_unrepairable_under_rs82(self):
        cluster, ck = self._checkpointed(6, "rs-8-2")
        group = ck.layout.groups[0]
        home0, home1 = group.parity_nodes
        block = cluster.node(home0).parity_store[shard_key(group.group_id, 0)]
        block.data[1] ^= np.uint8(0x01)
        cluster.kill_node(home1)
        vid = group.member_vm_ids[0]
        vm = cluster.vm(vid)
        img = cluster.hypervisor(vm.node_id).committed(vid)
        img.payload.reshape(-1).view(np.uint8)[0] ^= np.uint8(0x01)

        report = Scrubber(cluster, ck.layout, scheme=ck.scheme).scrub_once()
        assert report.unrepairable  # 3 erasures > tolerance 2
        assert report.repaired == []

    def test_replication_over_survives_via_intact_replica(self):
        cluster, ck = self._checkpointed(6, "rep-3")
        group = ck.layout.groups[0]
        # corrupt BOTH replicas' worth of members: kill one replica home,
        # corrupt two member images — 3 erasures > tolerance 2, yet the
        # surviving intact replica rebuilds everything
        cluster.kill_node(group.parity_nodes[1])
        for vid in group.member_vm_ids[:2]:
            vm = cluster.vm(vid)
            img = cluster.hypervisor(vm.node_id).committed(vid)
            img.payload.reshape(-1).view(np.uint8)[7] ^= np.uint8(0x10)

        report = Scrubber(cluster, ck.layout, scheme=ck.scheme).scrub_once()
        assert report.unrepairable == []
        for vid in group.member_vm_ids[:2]:
            assert f"image vm{vid}" in report.repaired
