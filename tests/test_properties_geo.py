"""Property tests for the geo layer (hypothesis + differential A/B).

Four properties lock the georedundancy machinery down:

* the domain-spread invariant (no two elements of a group in one site)
  survives every recovery and re-home the protocol performs;
* the correlated injector kills exactly the targeted domain's members,
  never more, never fewer;
* WAN links conserve capacity under max-min reallocation — flows share
  the bottleneck exactly and reclaim it the instant a peer finishes;
* a single-site :class:`~repro.geo.GeoTopology` adds zero links and is
  bit-identical to the plain switched fabric (differential A/B against
  :mod:`repro.perf.scale`), so the geo layer is free when unused.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import validate_layout
from repro.failures import Exponential
from repro.geo import (
    GeoConfig,
    GeoSpec,
    GeoTopology,
    draw_geo_schedule,
    run_geo_point,
    site_kill_members,
)
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# 1. domain-spread invariant after every recovery / re-home
# ---------------------------------------------------------------------------
class TestDomainSpreadInvariant:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000), node=st.integers(0, 11))
    def test_single_node_recovery_keeps_domains_orthogonal(self, seed, node):
        """With every other site healthy, domain-aware restore placement
        must land the rebuilt member back in a free domain — the layout
        re-validates with no respread needed."""
        from repro.geo.study import build_geo_scenario

        cfg = GeoConfig(
            n_nodes=12, n_sites=3, policy="geo-spread", epochs=1, seed=seed,
        )
        sim, cluster, ck, _rep, geo, rngs, _tr = build_geo_scenario(cfg)
        domains = geo.domain_map("site")

        def drive():
            yield from ck.run_cycle()
            cluster.kill_node(node)
            yield from ck.recover(node)
            cluster.repair_node(node)
            yield from ck.heal()

        proc = sim.process(drive())
        sim.run()
        assert proc.ok, proc.value
        report = validate_layout(
            ck.layout, cluster, tolerance=ck.scheme.tolerance, domains=domains
        )
        assert report.errors == [], report.errors

    @pytest.mark.parametrize("kill_site", [0, 1, 2])
    def test_full_site_recovery_respreads_to_orthogonal(self, kill_site):
        """A whole-site outage legally degrades placement; after repair +
        respread + heal the strict domain-aware audit must pass again."""
        r = run_geo_point(GeoConfig(
            n_nodes=12, n_sites=3, policy="geo-spread", epochs=2,
            kill_site=kill_site,
        ))
        assert r["survived"] and not r["data_lost"]
        assert r["strict_audit_ok"], r["audit_violations"]

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_respread_survives_any_seed(self, seed):
        r = run_geo_point(GeoConfig(
            n_nodes=12, n_sites=3, policy="geo-spread", epochs=2,
            seed=seed, kill_site=-1,
        ))
        assert r["survived"], r
        assert r["strict_audit_ok"], r["audit_violations"]


# ---------------------------------------------------------------------------
# 2. the correlated injector kills exactly the domain's members
# ---------------------------------------------------------------------------
class TestCorrelatedInjector:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        per_site=st.integers(2, 6),
        n_sites=st.integers(2, 4),
    )
    def test_geo_events_cover_exact_domain_membership(
        self, seed, per_site, n_sites
    ):
        geo = GeoSpec(
            n_nodes=per_site * n_sites, n_sites=n_sites, racks_per_site=2
        )
        rng = np.random.default_rng([seed, 0x6E0])
        schedule, events = draw_geo_schedule(
            rng, geo, horizon=5000.0,
            node_dist=Exponential(lam=1 / 4000.0),
            rack_dist=Exponential(lam=1 / 8000.0),
            site_dist=Exponential(lam=1 / 9000.0),
        )
        by_time: dict[float, set[int]] = {}
        for ev in schedule.events:
            by_time.setdefault(ev.time, set()).add(ev.node_id)
        for ev in events:
            if ev.level == "site":
                want = set(geo.nodes_in_site(ev.domain))
            elif ev.level == "rack":
                want = set(geo.domain_map("rack").nodes_in(ev.domain))
            else:
                want = {ev.domain}
            assert set(ev.nodes) == want
            # the flat schedule fires exactly those nodes at that instant
            assert by_time[ev.time] == want
        # and nothing in the flat schedule is unexplained
        explained = {(ev.time, n) for ev in events for n in ev.nodes}
        flat = {(ev.time, ev.node_id) for ev in schedule.events}
        assert flat == explained

    def test_site_kill_members_is_the_whole_site(self):
        geo = GeoSpec(n_nodes=10, n_sites=3)
        for node in range(10):
            members = site_kill_members(geo, node)
            assert node in members
            assert members == geo.nodes_in_site(geo.site_of(node))


# ---------------------------------------------------------------------------
# 3. WAN capacity conservation under max-min reallocation
# ---------------------------------------------------------------------------
class TestWanMaxMin:
    B = 10e6  # WAN uplink bandwidth

    def _topo(self, sim, n_sites=2):
        geo = GeoSpec(
            n_nodes=4 * n_sites, n_sites=n_sites,
            wan_bandwidth=self.B, wan_latency=0.0,
        )
        # node links far above the WAN so the uplink is the bottleneck
        return geo, GeoTopology(sim, geo, node_bandwidth=1e12, latency=0.0)

    def test_staggered_flows_reallocate_exactly(self):
        """Sizes S, 2S, 3S through one uplink: max-min predicts completion
        at 3S/B, 5S/B, 6S/B — equal shares, instant reallocation, no
        capacity lost or invented."""
        sim = Simulator()
        geo, topo = self._topo(sim)
        S = 1e6
        done = {}

        def xfer(i, size):
            yield topo.transfer(i, 4 + i, size, label=f"p{i}")
            done[i] = sim.now

        for i, size in enumerate((S, 2 * S, 3 * S)):
            sim.process(xfer(i, size))
        sim.run()
        expect = {0: 3 * S / self.B, 1: 5 * S / self.B, 2: 6 * S / self.B}
        for i, t in expect.items():
            assert done[i] == pytest.approx(t, rel=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(
        sizes=st.lists(
            st.floats(min_value=1e5, max_value=5e7,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=6,
        )
    )
    def test_always_backlogged_uplink_wastes_nothing(self, sizes):
        """However the flows are shaped, a saturated uplink's makespan is
        exactly total_bytes / bandwidth: rates always sum to capacity
        (conservation) and free capacity is reassigned immediately."""
        sim = Simulator()
        geo, topo = self._topo(sim)

        def xfer(i, size):
            yield topo.transfer(i % 4, 4 + (i % 4), size, label=f"q{i}")

        for i, size in enumerate(sizes):
            sim.process(xfer(i, size))
        sim.run()
        assert sim.now == pytest.approx(sum(sizes) / self.B, rel=1e-9)

    def test_wan_partition_tears_admitted_flows(self):
        sim = Simulator()
        geo, topo = self._topo(sim)
        flows = [topo.transfer(0, 5, 1e9, label="torn")]
        sim.run(until=1.0)
        torn = topo.set_site_wan_up(0, False, reason="test")
        assert torn == 1
        assert not topo.site_wan_up(0)
        sim.run()
        assert flows[0].ok is False


# ---------------------------------------------------------------------------
# 4. single-site differential A/B: the geo layer is bit-transparent
# ---------------------------------------------------------------------------
class TestSingleSiteBitTransparent:
    def test_zero_wan_links_and_identical_link_table(self):
        from repro.network import SwitchedTopology

        sim_a, sim_b = Simulator(), Simulator()
        geo = GeoSpec(n_nodes=8, n_sites=1, racks_per_site=2)
        a = SwitchedTopology(sim_a, 8)
        b = GeoTopology(sim_b, geo)
        assert [(l.name, l.index) for l in a.network.links.values()] == \
               [(l.name, l.index) for l in b.network.links.values()]

    def test_single_site_run_bit_identical_to_scale_path(self):
        """The same scenario through :mod:`repro.perf.scale` (plain
        fabric) and through a 1-site geo build must agree on every
        digest: checkpoints, parity, flows, cycle timings, clock, RNG."""
        from repro.perf import ScaleConfig, run_scale_point

        scale = run_scale_point(
            ScaleConfig(n_nodes=12, epochs=2, seed=3, trace=True),
            collect_digests=True,
        )
        geo = run_geo_point(
            GeoConfig(
                n_nodes=12, n_sites=1, racks_per_site=1, policy="local-parity",
                vms_per_node=4, group_size=4, epochs=2, seed=3,
                image_pages=16, page_size=64, dirty_pages_per_vm=4,
                kill_site=None, trace=True,
            ),
            collect_digests=True,
        )
        assert geo["wan_bytes"] == 0.0
        stripped = {k: v for k, v in geo["digests"].items() if k != "geo"}
        assert stripped == scale["digests"]
        assert geo["sim_time"] == scale["sim_time"]
        assert geo["events"] == scale["events"]
