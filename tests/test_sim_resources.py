"""Tests for Resource / Store / Container."""

import pytest

from repro.sim import Container, Resource, ResourceError, Store

from conftest import run_process


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ResourceError):
            Resource(sim, capacity=0)

    def test_grant_immediately_when_free(self, sim):
        res = Resource(sim, capacity=2)

        def proc():
            yield res.request()
            return (res.in_use, res.available)

        assert run_process(sim, proc()) == (1, 1)

    def test_fifo_queueing(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def worker(name, hold):
            req = res.request()
            yield req
            order.append((sim.now, name))
            yield sim.timeout(hold)
            res.release()

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 2.0))
        sim.process(worker("c", 2.0))
        sim.run()
        assert order == [(0.0, "a"), (2.0, "b"), (4.0, "c")]

    def test_release_without_grant_raises(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(ResourceError):
            res.release()

    def test_release_transfers_to_waiter(self, sim):
        res = Resource(sim, capacity=1)
        got = []

        def a():
            yield res.request()
            yield sim.timeout(1.0)
            res.release()

        def b():
            yield res.request()
            got.append(sim.now)
            res.release()

        sim.process(a())
        sim.process(b())
        sim.run()
        assert got == [1.0]
        assert res.in_use == 0

    def test_abandoned_request_skipped(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def holder():
            yield res.request()
            yield sim.timeout(5.0)
            res.release()

        reqs = {}

        def quitter():
            reqs["q"] = res.request()
            try:
                yield reqs["q"]
            except BaseException:  # pragma: no cover
                pass

        def patient():
            yield res.request()
            order.append(sim.now)
            res.release()

        sim.process(holder())
        q = sim.process(quitter())

        def kill_quitter():
            yield sim.timeout(1.0)
            # simulate a process abandoning its queued request
            reqs["q"].abandon()
            q.interrupt()

        sim.process(kill_quitter())
        sim.process(patient())
        sim.run()
        assert order == [5.0]

    def test_queue_length(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            yield res.request()
            yield sim.timeout(10.0)
            res.release()

        def waiter():
            yield res.request()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.process(waiter())
        sim.run(until=1.0)
        assert res.queue_length == 2


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")

        def proc():
            got = yield store.get()
            return got

        assert run_process(sim, proc()) == "item"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def getter():
            got = yield store.get()
            return (got, sim.now)

        def putter():
            yield sim.timeout(3.0)
            store.put(42)

        p = sim.process(getter())
        sim.process(putter())
        sim.run()
        assert p.value == (42, 3.0)

    def test_fifo_matching(self, sim):
        store = Store(sim)
        results = []

        def getter(name):
            got = yield store.get()
            results.append((name, got))

        sim.process(getter("g1"))
        sim.process(getter("g2"))

        def putter():
            yield sim.timeout(1.0)
            store.put("first")
            store.put("second")

        sim.process(putter())
        sim.run()
        assert results == [("g1", "first"), ("g2", "second")]

    def test_len_and_peek(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.peek_all() == [1, 2]


class TestContainer:
    def test_validation(self, sim):
        with pytest.raises(ResourceError):
            Container(sim, capacity=0)
        with pytest.raises(ResourceError):
            Container(sim, capacity=10, init=11)

    def test_get_blocks_until_level(self, sim):
        tank = Container(sim, capacity=100, init=0)

        def getter():
            yield tank.get(30)
            return sim.now

        def filler():
            yield sim.timeout(1.0)
            tank.put(20)
            yield sim.timeout(1.0)
            tank.put(20)

        p = sim.process(getter())
        sim.process(filler())
        sim.run()
        assert p.value == 2.0
        assert tank.level == pytest.approx(10.0)

    def test_overflow_rejected(self, sim):
        tank = Container(sim, capacity=10, init=5)
        with pytest.raises(ResourceError):
            tank.put(6)

    def test_get_exceeding_capacity_rejected(self, sim):
        tank = Container(sim, capacity=10)
        with pytest.raises(ResourceError):
            tank.get(11)

    def test_fifo_no_starvation(self, sim):
        """A large blocked request must block smaller later ones."""
        tank = Container(sim, capacity=100, init=0)
        order = []

        def getter(name, amount):
            yield tank.get(amount)
            order.append(name)

        sim.process(getter("big", 50))
        sim.process(getter("small", 5))

        def filler():
            yield sim.timeout(1.0)
            tank.put(10)  # enough for small, but big is first
            yield sim.timeout(1.0)
            tank.put(90)

        sim.process(filler())
        sim.run()
        assert order == ["big", "small"]
