"""Tests for DVDC with wire compression and migration interplay."""

import numpy as np
import pytest

from repro.checkpoint import CompressionModel
from repro.core import dvdc, rebalance_after_migration, validate_layout
from repro.migration import PrecopyModel, live_migrate
from repro.workloads import paper_scenario

from conftest import run_process


class TestDVDCCompression:
    def test_compression_halves_wire_traffic(self):
        sc = paper_scenario(seed=40)
        ck = dvdc(sc.cluster, compression=CompressionModel(ratio=0.5))

        def proc():
            r = yield from ck.run_cycle()
            return r

        r = run_process(sc.sim, proc())
        assert r.network_bytes == pytest.approx(6e9, rel=0.1)
        # XOR still operates on raw bytes
        assert r.parity_bytes == pytest.approx(
            sum(vm.memory_bytes for vm in sc.cluster.all_vms), rel=0.01
        )

    def test_compressed_cycle_still_recovers_bit_exact(self):
        sc = paper_scenario(seed=41)
        ck = dvdc(sc.cluster, compression=CompressionModel(ratio=0.3))
        rng = sc.rngs.stream("w")
        committed = {}

        def proc():
            yield from ck.run_cycle()
            for vm in sc.cluster.all_vms:
                committed[vm.vm_id] = (
                    sc.cluster.hypervisor(vm.node_id).committed(vm.vm_id)
                    .payload_flat().copy()
                )
                vm.image.touch_pages(rng.integers(0, 64, 4), rng)
            sc.cluster.kill_node(0)
            yield from ck.recover(0)

        run_process(sc.sim, proc())
        for vm in sc.cluster.all_vms:
            assert np.array_equal(vm.image.flat, committed[vm.vm_id])

    def test_compression_shortens_latency(self):
        sc_a = paper_scenario(seed=42)
        ck_a = dvdc(sc_a.cluster)
        r_plain = run_process(sc_a.sim, ck_a.run_cycle())

        sc_b = paper_scenario(seed=42)
        ck_b = dvdc(sc_b.cluster, compression=CompressionModel(ratio=0.5))
        r_comp = run_process(sc_b.sim, ck_b.run_cycle())
        assert r_comp.latency < r_plain.latency * 0.7


class TestMigrationInterplay:
    def test_migrated_vm_checkpoints_from_new_home(self):
        sc = paper_scenario(seed=43)
        ck = dvdc(sc.cluster)

        def proc():
            yield from ck.run_cycle()
            vm = sc.cluster.vm(0)
            # move vm0 to the one node hosting no groupmate conflicts...
            # any target; then rebalance the layout
            yield from live_migrate(
                sc.cluster, vm, (vm.node_id + 1) % 4,
                model=PrecopyModel(bandwidth=125e6),
            )
            new_layout = rebalance_after_migration(ck.layout, sc.cluster)
            ck.layout = new_layout
            # a heal pass materializes parity for any rebuilt groups
            yield from ck.heal()
            r = yield from ck.run_cycle()
            return r

        r = run_process(sc.sim, proc())
        assert r.committed
        assert validate_layout(ck.layout, sc.cluster).ok

    def test_migration_interrupted_by_failure(self):
        """A crash of the destination mid-migration aborts the transfer
        flows; the VM keeps running at the source."""
        sc = paper_scenario(seed=44)
        vm = sc.cluster.vm(0)
        src = vm.node_id

        def proc():
            try:
                yield from live_migrate(sc.cluster, vm, 1)
            except Exception as exc:  # NetworkError via the flow
                return type(exc).__name__

        p = sc.sim.process(proc())
        sc.sim.schedule(2.0, sc.cluster.kill_node, 1)
        sc.sim.run()
        assert p.value == "NetworkError"
        # VM survived at the source, back in RUNNING state
        assert vm.node_id == src
        assert vm.state.value == "running"

    def test_precopy_round_count_monotone_in_dirty_rate(self):
        m = PrecopyModel(bandwidth=125e6, downtime_target_bytes=1e6)
        rounds = [
            m.estimate(1e9, rate).rounds
            for rate in (0.0, 5e6, 25e6, 60e6)
        ]
        assert rounds == sorted(rounds)
