"""Tests for the discrete-event core: ordering, cancellation, clocks."""

import math

import pytest

from repro.sim import (
    LATE,
    NORMAL,
    URGENT,
    SimulationError,
    Simulator,
    StopSimulation,
)


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_clock_custom_start(self):
        assert Simulator(start=42.0).now == 42.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for tag in "abcde":
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == list("abcde")

    def test_priority_orders_same_timestamp(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "late", priority=LATE)
        sim.schedule(1.0, order.append, "normal", priority=NORMAL)
        sim.schedule(1.0, order.append, "urgent", priority=URGENT)
        sim.run()
        assert order == ["urgent", "normal", "late"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.5]
        assert sim.now == 5.5

    def test_schedule_during_event(self):
        sim = Simulator()
        order = []

        def outer():
            order.append(("outer", sim.now))
            sim.schedule(2.0, lambda: order.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert order == [("outer", 1.0), ("inner", 3.0)]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_nan_and_inf_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(math.nan, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(math.inf, lambda: None)

    def test_at_before_now_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(5.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.pending

    def test_pending_transitions(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        assert handle.pending
        sim.run()
        assert not handle.pending
        assert handle.fired

    def test_drain_cancels_everything(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i + 1), fired.append, i)
        assert sim.drain() == 5
        sim.run()
        assert fired == []


class TestRun:
    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        assert sim.run(until=4.0) == 4.0
        assert sim.now == 4.0
        # remaining event still fires later
        assert sim.run() == 10.0

    def test_run_empty_queue_until(self):
        sim = Simulator()
        assert sim.run(until=7.0) == 7.0

    def test_max_events(self):
        sim = Simulator()
        count = []
        for i in range(10):
            sim.schedule(float(i + 1), count.append, i)
        sim.run(max_events=3)
        assert len(count) == 3

    def test_stop_simulation_halts_immediately(self):
        sim = Simulator()
        seen = []

        def stopper():
            seen.append("stop")
            raise StopSimulation

        sim.schedule(1.0, stopper)
        sim.schedule(2.0, seen.append, "after")
        sim.run()
        assert seen == ["stop"]

    def test_run_not_reentrant(self):
        sim = Simulator()

        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, nested)
        sim.run()

    def test_event_count(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.event_count == 4

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() == math.inf
        h = sim.schedule(3.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        assert sim.peek() == 3.0
        h.cancel()
        assert sim.peek() == 5.0

    def test_exception_propagates_out_of_run(self):
        sim = Simulator()

        def boom():
            raise ValueError("boom")

        sim.schedule(1.0, boom)
        with pytest.raises(ValueError, match="boom"):
            sim.run()
