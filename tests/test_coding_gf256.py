"""GF(256) algebra underneath the Reed–Solomon scheme: exhaustive
round-trips, table consistency, and matrix-inverse identities.

The field (polynomial 0x11D) is tiny enough to verify *completely* —
these tests sweep every element rather than sampling, so a wrong table
entry or a lost carry in the log/exp construction cannot hide.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.coding import (
    GF_EXP,
    GF_LOG,
    MUL_TABLE,
    cauchy_matrix,
    gf_div,
    gf_inv,
    gf_matinv,
    gf_matmul,
    gf_mul,
    gf_mul_vec,
)


class TestFieldAlgebra:
    def test_mul_table_matches_scalar_mul_exhaustively(self):
        a = np.arange(256, dtype=np.intp)
        for x in range(256):
            row = MUL_TABLE[x, a]
            expect = np.array([gf_mul(x, y) for y in range(256)], dtype=np.uint8)
            assert np.array_equal(row, expect), f"MUL_TABLE row {x} wrong"

    def test_mul_table_is_read_only(self):
        with pytest.raises((ValueError, RuntimeError)):
            MUL_TABLE[0, 0] = 1

    def test_zero_and_one_laws(self):
        for x in range(256):
            assert gf_mul(x, 0) == 0
            assert gf_mul(0, x) == 0
            assert gf_mul(x, 1) == x
            assert gf_mul(1, x) == x

    def test_commutativity_exhaustive(self):
        assert np.array_equal(MUL_TABLE, MUL_TABLE.T)

    def test_associativity_and_distributivity_sampled(self):
        rng = np.random.default_rng(0x11D)
        trip = rng.integers(0, 256, size=(500, 3))
        for a, b, c in trip:
            a, b, c = int(a), int(b), int(c)
            assert gf_mul(gf_mul(a, b), c) == gf_mul(a, gf_mul(b, c))
            assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)

    def test_inverse_round_trip_every_nonzero_element(self):
        for x in range(1, 256):
            inv = gf_inv(x)
            assert 1 <= inv <= 255
            assert gf_mul(x, inv) == 1
        with pytest.raises(ZeroDivisionError):
            gf_inv(0)

    def test_div_is_mul_by_inverse_exhaustive(self):
        for a in range(256):
            for b in (1, 2, 3, 29, 76, 142, 255):
                assert gf_div(gf_mul(a, b), b) == a
        with pytest.raises(ZeroDivisionError):
            gf_div(5, 0)

    def test_log_exp_tables_are_mutually_consistent(self):
        # exp is doubled so exp[log a + log b] never needs a mod
        for x in range(1, 256):
            assert GF_EXP[GF_LOG[x]] == x
        # the generator's order is 255: the first cycle has no repeats
        assert len({int(GF_EXP[i]) for i in range(255)}) == 255

    def test_gf_mul_vec_matches_scalar(self):
        vec = np.arange(256, dtype=np.uint8)
        for coeff in (0, 1, 2, 0x53, 0xFF):
            out = gf_mul_vec(coeff, vec)
            expect = np.array([gf_mul(coeff, v) for v in range(256)], np.uint8)
            assert np.array_equal(out, expect)


class TestMatrices:
    def _random_invertible(self, rng, n):
        # square Cauchy blocks are always invertible; perturb via row scaling
        m = cauchy_matrix(n, n)
        scale = rng.integers(1, 256, size=n)
        return np.array(
            [MUL_TABLE[int(s), row.astype(np.intp)] for s, row in zip(scale, m)],
            dtype=np.uint8,
        )

    def test_matinv_round_trip(self):
        rng = np.random.default_rng(7)
        for n in (1, 2, 3, 5, 8):
            m = self._random_invertible(rng, n)
            inv = gf_matinv(m)
            ident = np.eye(n, dtype=np.uint8)
            assert np.array_equal(gf_matmul(m, inv), ident)
            assert np.array_equal(gf_matmul(inv, m), ident)

    def test_matinv_rejects_singular(self):
        sing = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(Exception):
            gf_matinv(sing)

    def test_cauchy_block_shape_and_density(self):
        for k, m in ((2, 1), (4, 2), (8, 3)):
            c = cauchy_matrix(k, m)
            assert c.shape == (m, k)
            # Cauchy entries 1/(x_i + y_j) are never zero
            assert np.all(c != 0)
        with pytest.raises(ValueError):
            cauchy_matrix(0, 1)
        with pytest.raises(ValueError):
            cauchy_matrix(250, 10)

    def test_cauchy_generator_is_mds(self):
        """Every k×k submatrix of ``[I_k ; C]``'s rows is invertible —
        the property the decoder relies on for *arbitrary* ≤m-erasure
        patterns."""
        from itertools import combinations

        k, m = 4, 3
        g = np.concatenate(
            [np.eye(k, dtype=np.uint8), cauchy_matrix(k, m)], axis=0
        )
        for rows in combinations(range(k + m), k):
            sub = g[list(rows)]
            inv = gf_matinv(sub)
            assert np.array_equal(
                gf_matmul(sub, inv), np.eye(k, dtype=np.uint8)
            ), f"rows {rows} not invertible"
