"""Tests for the ASCII timeline renderer."""

from repro.analysis import render_timeline
from repro.sim import Tracer


def _traced_run():
    tr = Tracer()
    for t in (10.0, 20.0, 30.0):
        tr.emit(t, "diskless.cycle", epoch=int(t // 10))
    tr.emit(25.0, "failure.node", node=1)
    tr.emit(26.0, "diskless.recovery", node=1)
    tr.emit(28.0, "cluster.node_repaired", node=1)
    return tr


class TestTimeline:
    def test_lanes_and_counts(self):
        out = render_timeline(_traced_run(), width=60)
        assert "checkpoint" in out
        assert "failure" in out
        assert "recovery" in out
        assert "repair" in out
        # checkpoint lane tallies 3 records
        ckpt_line = next(ln for ln in out.splitlines() if "checkpoint" in ln)
        assert ckpt_line.rstrip().endswith("3")
        strip = ckpt_line.split("|")[1]  # between the lane pipes
        assert strip.count("c") == 3

    def test_empty_tracer(self):
        assert render_timeline(Tracer()) == "(no trace records)"

    def test_silent_lanes_omitted(self):
        tr = Tracer()
        tr.emit(1.0, "failure.node", node=0)
        out = render_timeline(tr)
        assert "failure" in out
        assert "checkpoint" not in out

    def test_explicit_window(self):
        tr = _traced_run()
        out = render_timeline(tr, start=0.0, end=100.0, width=50)
        assert "0" in out.splitlines()[-1]
        assert "100" in out.splitlines()[-1]

    def test_custom_lanes(self):
        tr = Tracer()
        tr.emit(5.0, "custom.thing", a=1)
        out = render_timeline(tr, lanes=[("custom.", "mine", "#")])
        assert "mine" in out and "#" in out

    def test_degenerate_single_instant(self):
        tr = Tracer()
        tr.emit(7.0, "failure.node", node=0)
        out = render_timeline(tr)
        assert "X" in out
