"""Tests for the analysis helpers (stats, tables, ASCII figures)."""

import math

import numpy as np
import pytest

from repro.analysis import (
    ascii_plot,
    bootstrap_ci,
    format_bytes,
    format_seconds,
    relative_error,
    render_table,
    summarize,
)


class TestStats:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.n == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0 and s.maximum == 5.0
        lo, hi = s.ci95()
        assert lo < 3.0 < hi

    def test_summarize_single(self):
        s = summarize([7.0])
        assert s.std == 0.0
        assert math.isinf(s.std_error)

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_bootstrap_ci_brackets_mean(self, rng):
        data = rng.normal(10.0, 2.0, 300)
        lo, hi = bootstrap_ci(data, rng)
        assert lo < data.mean() < hi
        assert hi - lo < 2.0

    def test_bootstrap_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            bootstrap_ci([], rng)

    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(0.0, 0.0) == 0.0
        assert math.isinf(relative_error(1.0, 0.0))


class TestFormat:
    def test_seconds_scales(self):
        assert format_seconds(5e-7).endswith("µs")
        assert format_seconds(5e-3).endswith("ms")
        assert format_seconds(5.0).endswith("s")
        assert format_seconds(300.0).endswith("min")
        assert format_seconds(7200.0).endswith("h")

    def test_bytes_scales(self):
        assert format_bytes(512.0) == "512B"
        assert format_bytes(2048.0).endswith("KiB")
        assert format_bytes(3 * 1 << 20).endswith("MiB")
        assert format_bytes(5 * (1 << 30)).endswith("GiB")


class TestTable:
    def test_alignment_and_content(self):
        out = render_table(
            ["name", "value"],
            [["alpha", 1], ["b", 22]],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert lines[3].startswith("alpha")
        # right-aligned numbers
        assert lines[3].endswith("1")
        assert lines[4].endswith("22")

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_bad_align_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x"]], align="lr")


class TestAsciiPlot:
    def test_basic_plot_contains_series_and_marks(self):
        x = np.linspace(1, 100, 50)
        y1 = (x - 50) ** 2 / 1000 + 1
        y2 = (x - 30) ** 2 / 500 + 2
        out = ascii_plot(
            [("a", x, y1), ("b", x, y2)],
            marks=[(50.0, 1.0)],
            title="curves",
            logx=True,
        )
        assert "curves" in out
        assert "*" in out and "+" in out and "X" in out
        assert "a" in out and "b" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([])

    def test_logx_requires_positive(self):
        with pytest.raises(ValueError):
            ascii_plot([("s", np.array([0.0, 1.0]), np.array([1.0, 2.0]))], logx=True)

    def test_nonfinite_filtered(self):
        x = np.array([1.0, 2.0, np.nan])
        y = np.array([1.0, np.inf, 3.0])
        out = ascii_plot([("s", x, y)])
        assert isinstance(out, str)

    def test_flat_series(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([5.0, 5.0, 5.0])
        out = ascii_plot([("flat", x, y)])
        assert "*" in out
