"""Tests for overlapped checkpointing and mid-cycle abort safety."""

import numpy as np
import pytest

from repro.checkpoint import DiskfulCheckpointer
from repro.core import dvdc
from repro.failures import FailureEvent, FailureInjector, FailureSchedule
from repro.workloads import CheckpointedJob, paper_scenario

from conftest import run_process


class TestPauseDoneEvent:
    def test_diskless_pause_done_fires_at_barrier(self):
        sc = paper_scenario(seed=1)
        ck = dvdc(sc.cluster)
        pause_done = sc.sim.event()
        times = {}

        def watcher():
            v = yield pause_done
            times["pause"] = (sc.sim.now, v)

        def cycle():
            r = yield from ck.run_cycle(pause_done=pause_done)
            times["commit"] = sc.sim.now
            return r

        sc.sim.process(watcher())
        run_process(sc.sim, cycle())
        t_pause, pause_len = times["pause"]
        assert t_pause == pytest.approx(0.12)  # barrier = 3 x 40 ms
        assert pause_len == pytest.approx(0.12)
        assert times["commit"] > t_pause + 10  # exchange takes ~25 s more

    def test_diskful_pause_done_fires_before_nas_transfer(self):
        sc = paper_scenario(seed=1)
        ck = DiskfulCheckpointer(sc.cluster)
        pause_done = sc.sim.event()
        seen = {}

        def watcher():
            yield pause_done
            seen["t"] = sc.sim.now

        sc.sim.process(watcher())
        r = run_process(sc.sim, ck.run_cycle(pause_done=pause_done))
        assert seen["t"] == pytest.approx(0.12)
        assert r.latency > 100  # the NAS pipeline dwarfs the pause


class TestMidCycleAbort:
    def test_diskless_abort_preserves_previous_epoch(self):
        sc = paper_scenario(seed=2)
        ck = dvdc(sc.cluster)
        rng = sc.rngs.stream("w")

        def proc():
            yield from ck.run_cycle()  # epoch 0 commits
            for vm in sc.cluster.all_vms:
                vm.image.touch_pages(rng.integers(0, 64, 4), rng)
            # kill a node mid-cycle: schedule the kill during the exchange
            sc.sim.schedule(5.0, sc.cluster.kill_node, 1)
            r1 = yield from ck.run_cycle()
            return r1

        r1 = run_process(sc.sim, proc())
        assert not r1.committed
        assert ck.committed_epoch == 0  # still the old epoch
        # surviving nodes still hold epoch-0 checkpoints and parity
        for g in ck.layout.groups:
            pnode = sc.cluster.node(g.parity_node)
            if pnode.alive:
                assert pnode.parity_store[g.group_id].epoch == 0

    def test_diskless_abort_then_recover_bit_exact(self):
        sc = paper_scenario(seed=3)
        ck = dvdc(sc.cluster)
        rng = sc.rngs.stream("w")
        committed = {}

        def proc():
            yield from ck.run_cycle()
            for vm in sc.cluster.all_vms:
                committed[vm.vm_id] = (
                    sc.cluster.hypervisor(vm.node_id).committed(vm.vm_id)
                    .payload_flat().copy()
                )
                vm.image.touch_pages(rng.integers(0, 64, 4), rng)
            sc.sim.schedule(5.0, sc.cluster.kill_node, 2)
            r1 = yield from ck.run_cycle()
            assert not r1.committed
            rep = yield from ck.recover(2)
            return rep

        run_process(sc.sim, proc())
        for vm in sc.cluster.all_vms:
            assert np.array_equal(vm.image.flat, committed[vm.vm_id])

    def test_diskful_abort_keeps_old_generation(self):
        sc = paper_scenario(seed=4)
        ck = DiskfulCheckpointer(sc.cluster)

        def proc():
            yield from ck.run_cycle()
            sc.sim.schedule(10.0, sc.cluster.kill_node, 0)
            r1 = yield from ck.run_cycle()
            return r1

        r1 = run_process(sc.sim, proc())
        assert not r1.committed
        assert ck.committed_epoch == 0
        # generation 0 keys still present for every VM
        for vm_id in range(12):
            assert sc.cluster.nas.contains(f"vm{vm_id}/epoch0")


class TestOverlappedJob:
    def _run(self, kind, overlap, events=(), work=3600.0, interval=600.0):
        sc = paper_scenario(seed=5)
        inj = FailureInjector(
            sc.sim, 4, schedule=FailureSchedule(events=list(events))
        )
        ck = (
            dvdc(sc.cluster)
            if kind == "dvdc"
            else DiskfulCheckpointer(sc.cluster)
        )
        job = CheckpointedJob(
            sc.cluster, ck, work=work, interval=interval,
            injector=inj, repair_time=30.0, overlap=overlap,
        )
        inj.start()
        proc = job.start()
        sc.sim.run()
        if proc.ok is False:
            raise proc.value
        return job.result

    def test_overlap_hides_diskful_latency(self):
        blocking = self._run("diskful", overlap=False)
        overlapped = self._run("diskful", overlap=True)
        assert blocking.completed and overlapped.completed
        assert overlapped.wall_time < blocking.wall_time * 0.8
        assert overlapped.n_checkpoints == blocking.n_checkpoints

    def test_overlap_correct_under_failure(self):
        # strike while a background cycle is in flight (cycle ~230 s,
        # started right after the first 600 s work chunk + initial ckpt)
        events = [FailureEvent(950.0, 2, 0)]
        r = self._run("diskful", overlap=True, events=events)
        assert r.completed
        assert r.n_recoveries == 1
        assert r.lost_work > 0

    def test_overlap_dvdc_still_wins(self):
        events = [FailureEvent(1500.0, 1, 0)]
        r_d = self._run("dvdc", overlap=True, events=events)
        r_f = self._run("diskful", overlap=True, events=events)
        assert r_d.completed and r_f.completed
        assert r_d.wall_time < r_f.wall_time


class TestFlowTeardown:
    def test_node_crash_aborts_its_flows(self):
        from repro.network import NetworkError

        sc = paper_scenario(seed=9)
        flow = sc.cluster.topology.transfer(0, 1, 10e9, label="doomed")
        caught = {}

        def waiter():
            try:
                yield flow
            except NetworkError as exc:
                caught["err"] = str(exc)

        sc.sim.process(waiter())
        sc.sim.schedule(1.0, sc.cluster.kill_node, 0)
        sc.sim.run()
        assert "node 0 failed" in caught["err"]
        assert flow.finished_at == 1.0

    def test_receiver_crash_also_aborts(self):
        from repro.network import NetworkError

        sc = paper_scenario(seed=9)
        flow = sc.cluster.topology.transfer(0, 1, 10e9)
        sc.sim.schedule(1.0, sc.cluster.kill_node, 1)  # receiver dies
        sc.sim.run()
        assert flow.ok is False

    def test_unrelated_flows_survive(self):
        sc = paper_scenario(seed=9)
        doomed = sc.cluster.topology.transfer(0, 1, 1e9)
        safe = sc.cluster.topology.transfer(2, 3, 1e9)
        sc.sim.schedule(1.0, sc.cluster.kill_node, 0)
        sc.sim.run()
        assert doomed.ok is False
        assert safe.ok is True

    def test_cycle_with_teardown_still_aborts_cleanly(self):
        """A mid-cycle crash now tears down the exchange flows AND
        aborts the epoch; recovery still lands bit-exact."""
        sc = paper_scenario(seed=10)
        ck = dvdc(sc.cluster)
        rng = sc.rngs.stream("w")
        committed = {}

        def proc():
            yield from ck.run_cycle()
            for vm in sc.cluster.all_vms:
                committed[vm.vm_id] = (
                    sc.cluster.hypervisor(vm.node_id).committed(vm.vm_id)
                    .payload_flat().copy()
                )
                vm.image.touch_pages(rng.integers(0, 64, 4), rng)
            sc.sim.schedule(3.0, sc.cluster.kill_node, 1)
            r1 = yield from ck.run_cycle()
            assert not r1.committed
            rep = yield from ck.recover(1)
            return rep

        run_process(sc.sim, proc())
        for vm in sc.cluster.all_vms:
            assert np.array_equal(vm.image.flat, committed[vm.vm_id])

    def test_rdp_cycle_abort_guard(self):
        from repro.cluster import ClusterSpec, VirtualCluster
        from repro.core import DoubleParityCheckpointer, build_double_parity_layout
        from repro.sim import Simulator

        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=6))
        rng = np.random.default_rng(2)
        for vm in cluster.create_vms_balanced(12, 1e9, image_pages=16, page_size=64):
            vm.image.write(0, rng.integers(0, 256, 512, dtype=np.uint8))
            vm.image.clear_dirty()
        ck = DoubleParityCheckpointer(cluster, build_double_parity_layout(cluster, 3))

        def proc():
            yield from ck.run_cycle()
            sim.schedule(5.0, cluster.kill_node, 2)
            r1 = yield from ck.run_cycle()
            return r1

        r1 = run_process(sim, proc())
        assert not r1.committed
        assert ck.committed_epoch == 0
