"""Geo golden determinism: the multi-site layer is bit-pinned.

A fixed 3-site / 64-node geo scenario (2 incremental epochs, seed 0,
worst-site kill — see :mod:`repro.geo.study`) is digested under each
placement policy and pinned in ``tests/golden/geo.json``: committed
checkpoints, parity, flows, cycles, clock, RNG states, plus the geo
extras (WAN bytes, survival verdict, rollback window, per-epoch
committed-image checksums).

The tests prove each policy's digests are byte-stable run to run,
identical under campaign ``--jobs 1`` vs ``--jobs 4``, and equal to the
pinned golden values — so any change that perturbs a checkpoint byte, a
WAN transfer, or a salvage decision fails here with the digest that
moved.

Regenerate after an *intentional* behavior change with::

    PYTHONPATH=src python tests/test_geo_golden.py --regen
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.geo import POLICIES, GeoConfig, run_geo_point

GOLDEN_PATH = Path(__file__).parent / "golden" / "geo.json"
#: The pinned scenario.  Changing any field invalidates the golden file.
GOLDEN_CFG = dict(n_nodes=64, n_sites=3, epochs=2, seed=0, kill_site=-1)


def _golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def _cell(policy: str) -> dict:
    cfg = GeoConfig(**GOLDEN_CFG, policy=policy, trace=True)
    return run_geo_point(cfg, collect_digests=True)


def _generate_golden() -> dict:
    out = {
        "_regen": "PYTHONPATH=src python tests/test_geo_golden.py --regen",
        "config": GOLDEN_CFG,
        "policies": {},
    }
    for policy in POLICIES:
        r = _cell(policy)
        out["policies"][policy] = {
            "events": r["events"],
            "sim_time": r["sim_time"].hex(),
            "survived": r["survived"],
            "beyond_tolerance": r["beyond_tolerance"],
            "rollback_epochs": r["rollback_epochs"],
            "digests": r["digests"],
        }
    return out


def test_golden_file_matches_config():
    assert _golden()["config"] == GOLDEN_CFG


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_run_matches_golden(policy):
    golden = _golden()["policies"][policy]
    r = _cell(policy)
    assert r["events"] == golden["events"]
    assert r["sim_time"].hex() == golden["sim_time"]
    assert r["survived"] == golden["survived"]
    assert r["beyond_tolerance"] == golden["beyond_tolerance"]
    assert r["rollback_epochs"] == golden["rollback_epochs"]
    assert r["digests"] == golden["digests"]


def test_golden_survival_matrix():
    """The acceptance matrix, straight off the pinned file: a full-site
    outage kills local-parity and is survived by both geo policies."""
    g = _golden()["policies"]
    assert not g["local-parity"]["survived"]
    assert g["local-parity"]["beyond_tolerance"]
    assert g["geo-spread"]["survived"]
    assert not g["geo-spread"]["beyond_tolerance"]
    assert g["remus-async"]["survived"]
    assert g["remus-async"]["beyond_tolerance"]
    assert g["remus-async"]["rollback_epochs"] == 1


# ---------------------------------------------------------------------------
# campaign --jobs byte-stability
# ---------------------------------------------------------------------------
def _campaign_digests(jobs: int) -> list[dict]:
    from repro.campaign import CampaignRunner, Task

    tasks = [
        Task(kind="geo_cell", params={**GOLDEN_CFG, "policy": policy})
        for policy in POLICIES
    ]
    result = CampaignRunner(jobs=jobs).run(tasks)
    assert result.n_failed == 0, [r.error for r in result.failures()]
    return [run.value for run in result.runs]


def test_campaign_jobs_1_vs_4_byte_stable():
    """Worker fan-out must not perturb a single bit of any policy cell."""
    golden = _golden()["policies"]
    serial = _campaign_digests(jobs=1)
    parallel = _campaign_digests(jobs=4)
    assert serial == parallel
    for value in serial:
        pinned = golden[value["policy"]]
        assert value["digests"] == pinned["digests"]
        assert value["sim_time"] == pinned["sim_time"]
        assert value["events"] == pinned["events"]


if __name__ == "__main__":
    if "--regen" not in sys.argv:
        sys.exit("usage: python tests/test_geo_golden.py --regen")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(_generate_golden(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
