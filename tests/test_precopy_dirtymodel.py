"""Pre-copy driven by workload dirty-page curves: pinned regression.

``PrecopyModel.estimate`` and ``live_migrate`` accept a
:class:`~repro.workloads.dirtypages.WorkloadDirtyModel`, replacing the
synthetic never-bending ``dirty_rate · t`` re-dirty line with the
workload's saturating working-set curve.  These tests pin the resulting
downtime estimates exactly (any change to the curve, the round logic,
or the saturation math moves a pinned float and fails here) and prove
the simulated migration agrees with the closed form.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, VirtualCluster
from repro.migration.precopy import PrecopyModel, live_migrate
from repro.sim import Simulator
from repro.workloads.dirtypages import HotColdDirty, WorkloadDirtyModel

BW = 1e8
IMAGE = 1e9
PAGE = 4096.0
N_PAGES = 262144  # IMAGE-scale address space


def _model():
    return PrecopyModel(bandwidth=BW, downtime_target_bytes=1e5)


def _dirty_model(touches_per_second):
    return WorkloadDirtyModel(
        HotColdDirty(N_PAGES, hot_fraction=0.1, hot_weight=0.9),
        touches_per_second, PAGE,
    )


class TestEstimatePinned:
    def test_hot_workload_saturates_where_linear_diverges(self):
        """Peak rate 2× bandwidth: the linear model diverges into a
        10-second stop-and-copy; the saturating working set bends the
        residual down to ~1.7 s.  Values pinned."""
        dm = _dirty_model(50_000.0)
        assert dm.peak_rate == pytest.approx(2.048e8)
        linear = _model().estimate(IMAGE, dm.peak_rate)
        sat = _model().estimate(IMAGE, dm.peak_rate, dirty_model=dm)
        assert (linear.rounds, linear.converged) == (2, False)
        assert linear.downtime == pytest.approx(10.04, rel=1e-12)
        assert sat.downtime == pytest.approx(1.686318774677221, rel=1e-9)
        assert sat.total_bytes == pytest.approx(1456558203.3104308, rel=1e-9)
        assert sat.downtime < linear.downtime / 5

    def test_convergent_workload_needs_fewer_rounds(self):
        """Peak rate 0.4× bandwidth: both converge, but re-dirtied hot
        pages cost one transfer, so the curve sheds rounds and traffic.
        Values pinned."""
        dm = _dirty_model(10_000.0)
        linear = _model().estimate(IMAGE, dm.peak_rate)
        sat = _model().estimate(IMAGE, dm.peak_rate, dirty_model=dm)
        assert (linear.rounds, sat.rounds) == (11, 9)
        assert linear.converged and sat.converged
        assert sat.total_bytes == pytest.approx(1222120471.4451137, rel=1e-9)
        assert sat.downtime == pytest.approx(0.0408200921049453, rel=1e-9)
        assert sat.total_bytes < linear.total_bytes

    def test_zero_and_validation(self):
        dm = _dirty_model(0.0)
        assert dm.dirty_bytes(10.0) == 0.0
        r = _model().estimate(IMAGE, 0.0, dirty_model=dm)
        assert r.rounds == 1 and r.converged
        with pytest.raises(TypeError, match="expected_unique_pages"):
            WorkloadDirtyModel(object(), 1.0, PAGE)


class TestLiveMigrateAgreesWithModel:
    def _migrate(self, dirty_model=None, dirty_rate=0.0):
        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=2))
        vm = cluster.create_vm(
            0, float(1024 * 4096), dirty_rate=dirty_rate,
            image_pages=1024, page_size=4096,
        )
        rng = np.random.default_rng(3)
        vm.image.write(0, rng.integers(0, 256, vm.image.nbytes, dtype=np.uint8))
        vm.image.clear_dirty()
        src_bytes = vm.image.flat.copy()
        model = PrecopyModel(
            bandwidth=cluster.spec.node_bandwidth,
            downtime_target_bytes=64 * 4096.0,
        )
        proc = sim.process(
            live_migrate(cluster, vm, 1, model=model, dirty_model=dirty_model)
        )
        sim.run()
        assert proc.ok, proc.value
        result = proc.value
        est = model.estimate(
            vm.memory_bytes,
            dirty_model.peak_rate if dirty_model else dirty_rate,
            dirty_model=dirty_model,
        )
        return vm, cluster, src_bytes, result, est

    def test_simulated_rounds_and_traffic_track_the_curve(self):
        dm = _dirty_model_small()
        vm, cluster, src_bytes, result, est = self._migrate(dirty_model=dm)
        assert result.converged
        assert result.rounds == est.rounds
        assert result.total_bytes == pytest.approx(est.total_bytes, rel=0.15)
        assert result.downtime == pytest.approx(est.downtime, rel=0.25)
        # the guest landed bit-exactly
        assert vm.node_id == 1
        assert np.array_equal(vm.image.flat, src_bytes)

    def test_saturating_curve_beats_linear_on_the_wire(self):
        dm = _dirty_model_small()
        _, _, _, with_curve, _ = self._migrate(dirty_model=dm)
        _, _, _, linear, _ = self._migrate(dirty_rate=dm.peak_rate)
        assert with_curve.total_bytes <= linear.total_bytes
        assert with_curve.rounds <= linear.rounds


def _dirty_model_small():
    """Sized for the 4 MiB functional VM used in the sim tests: peak
    rate 0.4× of the 1 GbE NIC."""
    return WorkloadDirtyModel(
        HotColdDirty(1024, hot_fraction=0.1, hot_weight=0.9),
        cluster_touch_rate(), 4096.0,
    )


def cluster_touch_rate() -> float:
    from repro.network.topology import GBE_BANDWIDTH

    return 0.4 * GBE_BANDWIDTH / 4096.0
