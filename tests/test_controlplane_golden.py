"""Coordinator transparency: the control plane changes *nothing*.

The determinism contract of :mod:`repro.controlplane` says the
coordinator draws no random numbers and moves no network bytes of its
own in the fault-free path.  This pins it: the 64-node golden scale
scenario (``tests/golden/scale64.json``) run *through*
``ControlPlane.checkpoint()`` — keepalive daemons live, monitor
sweeping, protocol lock held — produces byte-identical checkpoints,
parity blocks, flow completions, cycle latencies, and RNG states to the
coordinator-free reference run.  Only the clock digest is exempt: the
keepalive timeouts add heap events, which is exactly the overhead an
always-on daemon is allowed to have.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.controlplane import ControlPlane
from repro.perf import ScaleConfig, build_scale_scenario
from repro.perf.scale import _dirty_epoch, scenario_digests

GOLDEN_PATH = Path(__file__).parent / "golden" / "scale64.json"
GOLDEN_CFG = dict(n_nodes=64, epochs=2, seed=0)
#: every digest but the clock (keepalive events inflate the event count)
TRANSPARENT_KEYS = ("checkpoints", "parity", "flows", "cycles", "rng")


def _managed_run():
    cfg = ScaleConfig(**GOLDEN_CFG, trace=True)
    sim, cluster, ckpt, rngs, tracer = build_scale_scenario(cfg)
    cp = ControlPlane(cluster, ckpt).start()

    def epochs():
        for _ in range(cfg.epochs):
            _dirty_epoch(cluster, rngs, cfg)
            yield from cp.checkpoint()
        cp.stop()

    sim.run_processes(epochs())
    return cp, scenario_digests(sim, cluster, ckpt, rngs, tracer)


def test_controlplane_run_matches_coordinator_free_golden():
    golden = json.loads(GOLDEN_PATH.read_text())["digests"]
    cp, digests = _managed_run()
    for key in TRANSPARENT_KEYS:
        assert digests[key] == golden[key], (
            f"digest {key!r} moved: the coordinator perturbed a "
            "fault-free run"
        )


def test_the_daemons_were_actually_live():
    """Guard against vacuous transparency: the run above must really
    have had every node enrolled and zero interventions."""
    cp, _ = _managed_run()
    assert len(cp.registry.last_seen) == GOLDEN_CFG["n_nodes"]
    assert not cp.fenced and not cp.maintenance
    assert cp.ck.committed_epoch == GOLDEN_CFG["epochs"] - 1
    assert not [r for r in cp.tracer.records if r.kind == "controlplane.fence"]
