"""Tests for the fault-schedule fuzzer machinery itself.

The invariant checkers are covered in ``test_audit_invariants.py``; here
we pin down the harness: schedule generation, determinism, shrinking,
unrecoverable classification, budgets, and the ``repro audit`` CLI.
"""

import numpy as np
import pytest

from repro.audit import (
    FaultSpec,
    FuzzConfig,
    canonical_schedule,
    draw_schedule,
    fuzz,
    run_trial,
    shrink,
)
from repro.audit import fuzzer as fuzzer_mod
from repro.cli import main


class TestFaultSpec:
    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError):
            FaultSpec(cycle=0, phase="mid_lunch", node=0, frac=0.5)

    def test_rejects_out_of_range_frac(self):
        with pytest.raises(ValueError):
            FaultSpec(cycle=0, phase="idle", node=0, frac=1.5)

    def test_str_names_the_kill(self):
        spec = FaultSpec(cycle=2, phase="mid_pause", node=1, frac=0.25)
        assert "cycle 2" in str(spec)
        assert "node 1" in str(spec)
        assert "mid_pause" in str(spec)


class TestFuzzConfig:
    def test_rejects_unknown_layout(self):
        with pytest.raises(ValueError):
            FuzzConfig(layout="fig9")

    def test_rejects_tiny_cluster(self):
        with pytest.raises(ValueError):
            FuzzConfig(n_nodes=2)


class TestScheduleGeneration:
    def test_draw_respects_bounds(self):
        config = FuzzConfig(n_cycles=5, max_faults=3, n_nodes=6)
        for seed in range(20):
            schedule = draw_schedule(np.random.default_rng(seed), config)
            assert len(schedule) <= config.max_faults
            for f in schedule:
                assert 0 <= f.cycle < config.n_cycles
                assert 0 <= f.node < config.n_nodes
                assert 0.1 <= f.frac <= 0.9

    def test_draw_deterministic_in_seed(self):
        config = FuzzConfig()
        a = draw_schedule(np.random.default_rng(42), config)
        b = draw_schedule(np.random.default_rng(42), config)
        assert a == b

    def test_draw_sorted_by_firing_order(self):
        config = FuzzConfig(n_cycles=8, max_faults=8)
        schedule = draw_schedule(np.random.default_rng(7), config)
        cycles = [f.cycle for f in schedule]
        assert cycles == sorted(cycles)

    def test_canonical_is_single_midrun_kill(self):
        config = FuzzConfig(n_cycles=4)
        (spec,) = canonical_schedule(config)
        assert spec == FaultSpec(cycle=2, phase="idle", node=0, frac=0.5)


class TestTrialDeterminism:
    def test_same_seed_same_outcome(self):
        config = FuzzConfig(n_cycles=3)
        schedule = draw_schedule(np.random.default_rng([5, 0x5C]), config)
        a = run_trial(config, schedule, seed=5)
        b = run_trial(config, schedule, seed=5)
        assert (a.commits, a.aborts, a.recoveries) == (
            b.commits, b.aborts, b.recoveries
        )
        assert a.unrecoverable == b.unrecoverable
        assert [str(v) for v in a.violations] == [str(v) for v in b.violations]
        assert [(e.time, e.node_id) for e in a.faults_fired] == [
            (e.time, e.node_id) for e in b.faults_fired
        ]

    def test_clean_run_commits_every_cycle(self):
        config = FuzzConfig(n_cycles=3)
        trial = run_trial(config, (), seed=1)
        # the driver runs one priming cycle before the fuzzed cycles
        assert trial.commits == config.n_cycles + 1
        assert trial.aborts == 0 and trial.recoveries == 0
        assert not trial.failed and trial.unrecoverable is None


class TestUnrecoverableClassification:
    def test_double_fault_same_cycle_is_not_a_bug(self):
        """Two distinct nodes dying in the same interval exceed single
        parity; the trial must end unrecoverable, not failed."""
        config = FuzzConfig(n_cycles=3)
        schedule = (
            FaultSpec(cycle=1, phase="idle", node=1, frac=0.4),
            FaultSpec(cycle=1, phase="idle", node=2, frac=0.45),
        )
        trial = run_trial(config, schedule, seed=0)
        assert trial.unrecoverable is not None
        assert not trial.failed

    def test_repeat_kill_of_same_node_is_absorbed(self):
        config = FuzzConfig(n_cycles=3)
        schedule = (
            FaultSpec(cycle=1, phase="idle", node=1, frac=0.4),
            FaultSpec(cycle=1, phase="idle", node=1, frac=0.6),
        )
        trial = run_trial(config, schedule, seed=0)
        assert trial.unrecoverable is None
        assert not trial.failed
        assert trial.recoveries == 1


class TestShrink:
    def test_shrinks_to_single_culprit(self, monkeypatch):
        """With a stubbed oracle that fails iff the culprit fault is
        present, shrink must strip everything else."""
        culprit = FaultSpec(cycle=1, phase="mid_pause", node=2, frac=0.5)
        noise = [
            FaultSpec(cycle=0, phase="idle", node=0, frac=0.3),
            FaultSpec(cycle=2, phase="post_commit", node=1, frac=0.7),
            FaultSpec(cycle=3, phase="idle", node=3, frac=0.2),
        ]

        class FakeTrial:
            def __init__(self, failed):
                self.failed = failed

        def fake_run_trial(config, schedule, seed, tracer=None):
            return FakeTrial(culprit in schedule)

        monkeypatch.setattr(fuzzer_mod, "run_trial", fake_run_trial)
        schedule = (noise[0], culprit, noise[1], noise[2])
        assert shrink(FuzzConfig(), schedule, seed=0) == (culprit,)

    def test_keeps_conjunction_of_two(self, monkeypatch):
        """If failure needs BOTH faults, neither may be dropped."""
        a = FaultSpec(cycle=0, phase="idle", node=0, frac=0.3)
        b = FaultSpec(cycle=1, phase="idle", node=1, frac=0.5)
        noise = FaultSpec(cycle=2, phase="idle", node=2, frac=0.7)

        class FakeTrial:
            def __init__(self, failed):
                self.failed = failed

        def fake_run_trial(config, schedule, seed, tracer=None):
            return FakeTrial(a in schedule and b in schedule)

        monkeypatch.setattr(fuzzer_mod, "run_trial", fake_run_trial)
        assert shrink(FuzzConfig(), (a, noise, b), seed=0) == (a, b)


class TestFuzzBatch:
    def test_deterministic_in_base_seed(self):
        config = FuzzConfig(n_cycles=2)
        a = fuzz(config, seeds=3, base_seed=10)
        b = fuzz(config, seeds=3, base_seed=10)
        assert [t.schedule for t in a.trials] == [t.schedule for t in b.trials]
        assert [t.commits for t in a.trials] == [t.commits for t in b.trials]

    def test_budget_stops_early(self):
        result = fuzz(FuzzConfig(n_cycles=2), seeds=50, budget=0.0)
        assert result.budget_exhausted
        assert len(result.trials) <= 1

    def test_aggregates(self):
        result = fuzz(FuzzConfig(n_cycles=2), seeds=4)
        assert len(result.trials) == 4
        assert result.ok and not result.failures
        assert result.n_violations == 0
        assert result.elapsed > 0


class TestCli:
    def test_one_shot_exit_zero(self, capsys):
        assert main(["audit", "--layout", "fig4", "--cycles", "2"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "verdict" in out

    def test_fuzz_exit_zero_and_reports(self, capsys):
        assert main([
            "audit", "--fuzz", "--layout", "fig1",
            "--seeds", "3", "--cycles", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "violations" in out

    def test_layout_choices_enforced(self):
        with pytest.raises(SystemExit):
            main(["audit", "--layout", "fig2"])


class TestSchemeSweep:
    """Scheme-parameterized fuzzing and the tolerance-aware classifier."""

    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            FuzzConfig(scheme="lrc-4")

    def test_beyond_tolerance_marker_is_deliberate_only(self):
        """Only the em-dash ``— beyond`` messages raised when a loss
        genuinely exceeds the scheme's tolerance count as fate.  A
        decode failure *within* tolerance (e.g. an RS(k,2) double fault
        the codec should have survived) matches no marker and therefore
        surfaces as a bug, exactly as the classifier intends."""
        fate = "silent corruption — beyond rs-8-2 tolerance 2: g0 shard1"
        assert any(m in fate for m in fuzzer_mod._UNRECOVERABLE_MARKERS)
        bug = "rs-8-2 decode failed: singular survivor matrix (2 erasures)"
        assert not any(m in bug for m in fuzzer_mod._UNRECOVERABLE_MARKERS)

    @pytest.mark.parametrize("scheme", ["rs-8-2", "rep-3"])
    def test_double_faults_never_lose_data(self, scheme):
        """The acceptance bar: with tolerance-2 schemes, dense double
        faults produce neither violations nor data-loss classifications
        — schedules XOR would write off as fate."""
        config = FuzzConfig(
            n_nodes=6, n_cycles=3, max_faults=2, interval=60.0, scheme=scheme
        )
        result = fuzz(config, seeds=4, base_seed=7)
        assert result.ok, [str(v) for t in result.failures for v in t.violations]
        assert all(t.unrecoverable is None for t in result.trials)

    def test_xor_shrink_still_one_minimal(self, monkeypatch):
        """Tolerance-1 schemes keep producing 1-minimal reproducers:
        an explicit ``scheme="xor"`` config shrinks a noisy schedule
        down to exactly the single culprit fault, unchanged from the
        pre-scheme fuzzer."""
        culprit = FaultSpec(cycle=1, phase="mid_pause", node=2, frac=0.5)
        noise = [
            FaultSpec(cycle=0, phase="idle", node=0, frac=0.3),
            FaultSpec(cycle=2, phase="post_commit", node=1, frac=0.7),
        ]

        class FakeTrial:
            def __init__(self, failed):
                self.failed = failed

        def fake_run_trial(config, schedule, seed, tracer=None):
            return FakeTrial(culprit in schedule)

        monkeypatch.setattr(fuzzer_mod, "run_trial", fake_run_trial)
        config = FuzzConfig(n_nodes=6, n_cycles=3, scheme="xor")
        assert shrink(config, (noise[0], culprit, noise[1]), seed=0) == (culprit,)
