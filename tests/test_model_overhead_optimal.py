"""Tests for the overhead pipelines, optimal intervals, and Fig. 5."""

import numpy as np
import pytest

from repro.failures.mtbf import PAPER_LAMBDA
from repro.model import (
    DISKFUL_PAPER,
    DISKLESS_PAPER,
    ClusterModel,
    MethodConfig,
    PAPER_JOB_SECONDS,
    daly_interval,
    diskful_costs,
    diskless_costs,
    expected_time_with_overhead,
    fig5,
    find_optimal_interval,
    overhead_function,
    sweep_intervals,
    young_interval,
)


class TestClusterModel:
    def test_paper_defaults(self):
        m = ClusterModel()
        assert m.n_vms == 12
        assert m.capture_pause == pytest.approx(40e-3)

    def test_with_(self):
        m = ClusterModel().with_(n_nodes=8)
        assert m.n_nodes == 8
        assert m.vms_per_node == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterModel(n_nodes=0)
        with pytest.raises(ValueError):
            ClusterModel(nas_bandwidth=0.0)
        with pytest.raises(ValueError):
            ClusterModel(vm_dirty_rate=-1.0)
        with pytest.raises(ValueError):
            MethodConfig(incremental=False, compression_ratio=0.0)


class TestPipelines:
    def test_diskful_nas_serialization(self):
        m = ClusterModel()
        c = diskful_costs(m, interval=1000.0)
        # 12 GiB over 100 MB/s ingress then 120 MB/s disk
        total = 12 * m.vm_memory_bytes
        assert c.network == pytest.approx(total / 100e6)
        assert c.sink == pytest.approx(total / 120e6)
        assert c.overhead == pytest.approx(c.pause + c.network + c.sink)

    def test_diskless_distributed_exchange(self):
        m = ClusterModel()
        c = diskless_costs(m, interval=100.0)
        raw_per_vm = min(m.vm_dirty_rate * 100.0, m.vm_memory_bytes)
        per_node_wire = raw_per_vm * 0.5 * 3
        assert c.network == pytest.approx(per_node_wire / m.node_bandwidth)
        # XOR orders of magnitude below a disk write of the same data
        assert c.sink < diskful_costs(m, 100.0).sink / 100

    def test_diskless_overhead_orders_below_diskful(self):
        m = ClusterModel()
        assert diskless_costs(m, 100.0).overhead < diskful_costs(m, 100.0).overhead / 50

    def test_incremental_saturates(self):
        m = ClusterModel()
        c1 = diskless_costs(m, interval=1e12)
        # dirty set capped at image size
        assert c1.stage_bytes <= m.n_vms * m.vm_memory_bytes * 0.5 + 1

    def test_pipelined_config_overlaps(self):
        m = ClusterModel()
        cfg = MethodConfig(incremental=False, pipelined=True)
        serial = diskful_costs(m, 0.0)
        overl = diskful_costs(m, 0.0, cfg)
        assert overl.overhead == pytest.approx(
            serial.pause + max(serial.network, serial.sink)
        )
        assert overl.overhead < serial.overhead

    def test_diskful_nic_bound_when_nas_fast(self):
        m = ClusterModel(nas_bandwidth=1e12, nas_disk_bandwidth=1e12)
        c = diskful_costs(m, 0.0)
        per_node = 3 * m.vm_memory_bytes
        assert c.network == pytest.approx(per_node / m.node_bandwidth)

    def test_overhead_function_dispatch(self):
        m = ClusterModel()
        f = overhead_function(m, "diskful")
        g = overhead_function(m, "diskless")
        assert f(100.0) == diskful_costs(m, 100.0).overhead
        assert g(100.0) == diskless_costs(m, 100.0).overhead
        with pytest.raises(ValueError):
            overhead_function(m, "nonsense")


class TestOptimalInterval:
    def test_young_formula(self):
        assert young_interval(1e-4, 50.0) == pytest.approx((2 * 50.0 / 1e-4) ** 0.5)

    def test_daly_close_to_young_for_small_overhead(self):
        lam, ov = 1e-5, 10.0
        y, d = young_interval(lam, ov), daly_interval(lam, ov)
        assert abs(d - y) / y < 0.05

    def test_daly_clamps_outside_validity(self):
        lam = 1e-2
        assert daly_interval(lam, 1000.0) == pytest.approx(1.0 / lam)

    def test_search_matches_young_for_constant_overhead(self):
        lam, T, ov = PAPER_LAMBDA, PAPER_JOB_SECONDS, 100.0
        opt = find_optimal_interval(lam, T, ov)
        y = young_interval(lam, ov)
        # Young is first-order; agree within ~15%
        assert abs(opt.interval - y) / y < 0.15
        # and the found optimum is at least as good as Young's point
        assert opt.expected_time <= expected_time_with_overhead(lam, T, y, ov) * (
            1 + 1e-9
        )

    def test_search_handles_interval_dependent_overhead(self):
        m = ClusterModel()
        opt = find_optimal_interval(
            PAPER_LAMBDA, PAPER_JOB_SECONDS, overhead_function(m, "diskless")
        )
        assert 10.0 < opt.interval < 1000.0
        assert opt.expected_ratio < 1.05

    def test_grid_boundaries(self):
        with pytest.raises(ValueError):
            find_optimal_interval(1e-4, 100.0, 1.0, bounds=(10.0, 5.0))
        with pytest.raises(ValueError):
            find_optimal_interval(1e-4, 100.0, -1.0)


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5()

    def test_headline_reduction_matches_paper(self, result):
        """Section V-B: 'diskless checkpointing reduces estimated time to
        completion by 18% over disk-based checkpointing'."""
        assert 0.14 <= result.reduction <= 0.23

    def test_diskless_overhead_ratio_about_one_percent(self, result):
        """Section V-B: 'with 1% overhead ratio'."""
        assert 0.005 <= result.diskless.overhead_ratio <= 0.02

    def test_diskful_adds_nearly_twenty_percent(self, result):
        """Section V-B: 'adds nearly 20% to the total execution time'."""
        assert 0.15 <= result.diskful.overhead_ratio <= 0.30

    def test_optima_are_curve_minima(self, result):
        for series in (result.diskless, result.diskful):
            assert series.min_ratio <= series.ratios.min() * (1 + 1e-6)

    def test_diskless_curve_below_diskful_everywhere_near_optima(self, result):
        mask = (result.diskless.intervals > 10) & (
            result.diskless.intervals < 10000
        )
        assert (
            result.diskless.ratios[mask] <= result.diskful.ratios[mask] + 1e-9
        ).all()

    def test_diskless_optimal_interval_shorter(self, result):
        """Cheap checkpoints => checkpoint more often (Young's law)."""
        assert result.diskless.optimum.interval < result.diskful.optimum.interval

    def test_sweep_custom_grid(self):
        grid = np.logspace(1, 4, 40)
        s = sweep_intervals(
            PAPER_LAMBDA, PAPER_JOB_SECONDS, ClusterModel(), "diskful",
            DISKFUL_PAPER, intervals=grid,
        )
        assert len(s.ratios) == 40
        assert s.method == "diskful"

    def test_curves_are_u_shaped(self, result):
        """Both curves rise at both ends (too-frequent and too-rare)."""
        for series in (result.diskless, result.diskful):
            r = series.ratios
            assert r[0] > series.min_ratio
            assert r[-1] > series.min_ratio

    def test_configs_exported(self):
        assert DISKFUL_PAPER.incremental is False
        assert DISKLESS_PAPER.incremental is True
        assert DISKLESS_PAPER.compression_ratio == 0.5
