"""Checksums and the corruption scrubber: detect, repair, refuse."""

import numpy as np
import pytest

from repro.checkpoint.strategies import IncrementalCapture
from repro.cluster.checksum import block_checksum, checksum_ok, page_checksums
from repro.core import dvdc
from repro.resilience import Scrubber
from repro.telemetry import Probe

from conftest import run_process


def _counter(probe, name):
    fam = probe.metrics.snapshot().get(name)
    return 0.0 if fam is None else sum(s["value"] for s in fam["series"])


class TestChecksums:
    def test_block_checksum_is_content_and_length_sensitive(self):
        a = np.arange(256, dtype=np.uint8)
        assert block_checksum(a) == block_checksum(a.copy())
        flipped = a.copy()
        flipped[17] ^= 1
        assert block_checksum(flipped) != block_checksum(a)
        # zero-extension keeps a bare CRC of the prefix plausible; the
        # length fold must still distinguish the two
        assert block_checksum(a) != block_checksum(np.concatenate(
            [a, np.zeros(4, np.uint8)]
        ))

    def test_checksum_works_on_noncontiguous_views(self):
        a = np.arange(512, dtype=np.uint8)
        assert block_checksum(a[::2]) == block_checksum(a[::2].copy())

    def test_page_checksums_localize_damage(self):
        a = np.arange(1000, dtype=np.uint8)
        before = page_checksums(a, 256)
        assert len(before) == 4  # last page is short
        a[300] ^= 0x80
        after = page_checksums(a, 256)
        assert [i for i, (x, y) in enumerate(zip(before, after)) if x != y] == [1]
        with pytest.raises(ValueError):
            page_checksums(a, 0)

    def test_checksum_ok_is_vacuous_without_either_side(self):
        a = np.arange(16, dtype=np.uint8)
        assert checksum_ok(None, 123)
        assert checksum_ok(a, None)
        assert checksum_ok(a, block_checksum(a))
        assert not checksum_ok(a, block_checksum(a) ^ 1)


class TestScrubber:
    def _checkpointed(self, sim, cluster, **kw):
        ck = dvdc(cluster, **kw)

        def cycle():
            r = yield from ck.run_cycle()
            assert r.committed
        run_process(sim, cycle())
        return ck

    def _flip_parity(self, cluster, group):
        block = cluster.node(group.parity_node).parity_store[group.group_id]
        block.data[7] ^= np.uint8(0x10)
        return block

    def _flip_member(self, cluster, vm_id):
        vm = cluster.vm(vm_id)
        img = cluster.node(vm.node_id).checkpoint_store[vm_id]
        flat = img.payload.reshape(-1).view(np.uint8)
        flat[3] ^= np.uint8(0x04)

    def test_clean_cluster_scrubs_clean(self, sim, paper_cluster):
        ck = self._checkpointed(sim, paper_cluster)
        report = Scrubber(paper_cluster, ck.layout).scrub_once()
        assert report.clean and report.scrubbed > 0
        assert report.repaired == [] and report.unrepairable == []

    def test_corrupt_parity_detected_and_repaired_bit_exactly(self, sim, paper_cluster):
        probe = Probe()
        ck = self._checkpointed(sim, paper_cluster)
        group = ck.layout.groups[0]
        block = self._flip_parity(paper_cluster, group)
        pristine_checksum = block.checksum

        report = Scrubber(paper_cluster, ck.layout, tracer=probe).scrub_once()
        assert report.detected == [f"parity g{group.group_id}@node{group.parity_node}"]
        assert report.repaired == [f"parity g{group.group_id}"]
        assert report.unrepairable == []
        assert block_checksum(block.data) == pristine_checksum  # bit-exact
        assert _counter(probe, "repro_resilience_corruptions_detected_total") == 1
        assert _counter(probe, "repro_resilience_corruptions_repaired_total") == 1

    def test_corrupt_member_rebuilt_from_parity_bit_exactly(self, sim, paper_cluster):
        ck = self._checkpointed(sim, paper_cluster)
        group = ck.layout.groups[0]
        victim = group.member_vm_ids[0]
        vm = paper_cluster.vm(victim)
        img = paper_cluster.node(vm.node_id).checkpoint_store[victim]
        pristine = img.payload_flat().copy()
        self._flip_member(paper_cluster, victim)

        report = Scrubber(paper_cluster, ck.layout).scrub_once()
        assert report.detected == [f"image vm{victim}@node{vm.node_id}"]
        assert report.repaired == [f"image vm{victim}"]
        np.testing.assert_array_equal(img.payload_flat(), pristine)

    def test_double_member_corruption_is_unrepairable(self, sim, paper_cluster):
        probe = Probe()
        ck = self._checkpointed(sim, paper_cluster)
        group = ck.layout.groups[0]
        v1, v2 = group.member_vm_ids[0], group.member_vm_ids[1]
        self._flip_member(paper_cluster, v1)
        self._flip_member(paper_cluster, v2)

        report = Scrubber(paper_cluster, ck.layout, tracer=probe).scrub_once()
        assert len(report.detected) == 2
        assert report.repaired == []
        assert set(report.unrepairable) == {f"image vm{v1}", f"image vm{v2}"}
        assert _counter(
            probe, "repro_resilience_corruptions_unrepairable_total"
        ) == 2

    def test_member_plus_parity_corruption_is_unrepairable(self, sim, paper_cluster):
        ck = self._checkpointed(sim, paper_cluster)
        group = ck.layout.groups[0]
        victim = group.member_vm_ids[0]
        self._flip_member(paper_cluster, victim)
        self._flip_parity(paper_cluster, group)

        report = Scrubber(paper_cluster, ck.layout).scrub_once()
        assert len(report.detected) == 2
        assert report.repaired == []
        assert f"image vm{victim}" in report.unrepairable
        assert f"parity g{group.group_id}" in report.unrepairable

    def test_scrub_skips_dead_parity_node(self, sim, paper_cluster):
        ck = self._checkpointed(sim, paper_cluster)
        group = ck.layout.groups[0]
        self._flip_parity(paper_cluster, group)
        paper_cluster.kill_node(group.parity_node)
        report = Scrubber(paper_cluster, ck.layout).scrub_once()
        # the dead node's artifacts are gone, not corrupt
        assert not any(f"g{group.group_id}@" in d for d in report.detected)

    def test_periodic_run_scrubs_on_schedule(self, sim, paper_cluster):
        ck = self._checkpointed(sim, paper_cluster)
        scrubber = Scrubber(paper_cluster, ck.layout)
        with pytest.raises(ValueError):
            next(scrubber.run(0.0))
        sim.process(scrubber.run(10.0))
        sim.run(until=sim.now + 35.0)
        assert len(scrubber.reports) == 3
        assert all(r.clean for r in scrubber.reports)


class TestRottenParityRefusal:
    def test_incremental_fold_refuses_corrupt_previous_parity(self, sim, paper_cluster):
        ck = dvdc(paper_cluster, strategy=IncrementalCapture())

        def first():
            r = yield from ck.run_cycle()
            assert r.committed
        run_process(sim, first())

        group = ck.layout.groups[0]
        block = paper_cluster.node(group.parity_node).parity_store[group.group_id]
        block.data[0] ^= np.uint8(1)

        # dirty a member so the next epoch actually folds a delta
        vm = paper_cluster.vm(group.member_vm_ids[0])
        vm.image.write(0, np.full(16, 0xAB, dtype=np.uint8))

        def second():
            yield from ck.run_cycle()

        with pytest.raises(RuntimeError, match="silent corruption"):
            run_process(sim, second())

    def test_scrub_first_then_fold_succeeds(self, sim, paper_cluster):
        ck = dvdc(paper_cluster, strategy=IncrementalCapture())

        def first():
            r = yield from ck.run_cycle()
            assert r.committed
        run_process(sim, first())

        group = ck.layout.groups[0]
        block = paper_cluster.node(group.parity_node).parity_store[group.group_id]
        block.data[0] ^= np.uint8(1)

        report = Scrubber(paper_cluster, ck.layout).scrub_once()
        assert report.repaired  # the scrubber is the prescribed remedy

        vm = paper_cluster.vm(group.member_vm_ids[0])
        vm.image.write(0, np.full(16, 0xAB, dtype=np.uint8))

        def second():
            r = yield from ck.run_cycle()
            assert r.committed
        run_process(sim, second())
