"""Property tests for the calendar-queue event engine.

The queue runs pure-heap below ``BUCKET_THRESHOLD`` pending entries and
switches to bucketed (calendar) mode above it.  These tests force the
calendar paths with tiny instance-level threshold overrides and check
them differentially against a simulator pinned to pure-heap mode: both
must execute identical workloads in identical order, because mode is an
internal detail the rest of the repo never observes.

Also covers two bugfix regressions:

* ``at()`` must reject NaN/inf absolute times (a NaN compares false
  against everything and would corrupt the queue's total order);
* a zero-span event spike (thousands of events at one timestamp) must
  not shrink the calendar width toward float underflow — the pre-fix
  code re-sized the width on every overstuffed merge until
  ``int(time/width)`` overflowed to infinity.
"""

import itertools
import math
import random

import pytest

from repro.sim import (
    LATE,
    NORMAL,
    URGENT,
    SimulationError,
    Simulator,
)

PRIORITIES = (URGENT, NORMAL, LATE)


def _calendar_sim(threshold: int = 32, split: int = 128) -> Simulator:
    """A simulator forced into calendar mode almost immediately."""
    sim = Simulator()
    sim.BUCKET_THRESHOLD = threshold
    sim.BUCKET_SPLIT_SIZE = split
    return sim


def _heap_sim() -> Simulator:
    """A simulator that can never leave pure-heap mode."""
    sim = Simulator()
    sim.BUCKET_THRESHOLD = 10**9
    return sim


def _buried_cancelled(sim: Simulator) -> int:
    """Ground truth for ``cancelled_pending``: walk both tiers."""
    return sum(
        1
        for e in itertools.chain(sim._cur, *sim._future.values())
        if e[3].cancelled
    )


def _total_entries(sim: Simulator) -> int:
    """Ground truth for ``heap_size``: walk both tiers."""
    return len(sim._cur) + sum(len(b) for b in sim._future.values())


def _tied_workload(seed: int, n: int):
    """(delay, priority, tag) triples with heavy time and priority ties."""
    rng = random.Random(seed)
    ops = []
    for i in range(n):
        delay = rng.choice(
            (0.0, 0.25, 1.0, 1.0, 1.0, 7.5, rng.random() * 20.0)
        )
        ops.append((delay, rng.choice(PRIORITIES), i))
    return ops


# ---------------------------------------------------------------------------
# satellite bugfix: at() rejects non-finite absolute times
# ---------------------------------------------------------------------------
class TestAtNonFinite:
    def test_at_rejects_nan(self):
        with pytest.raises(SimulationError, match="non-finite"):
            Simulator().at(math.nan, lambda: None)

    def test_at_rejects_inf(self):
        with pytest.raises(SimulationError, match="non-finite"):
            Simulator().at(math.inf, lambda: None)

    def test_queue_usable_after_rejection(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.at(math.nan, lambda: None)
        fired = []
        sim.at(1.0, fired.append, "ok")
        sim.run()
        assert fired == ["ok"]


# ---------------------------------------------------------------------------
# satellite bugfix: _cancelled bookkeeping is an exact buried count
# ---------------------------------------------------------------------------
class TestCancelledBookkeeping:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cancelled_pending_equals_buried_count(self, seed):
        """``cancelled_pending`` must equal the number of cancelled
        entries physically buried in the queue at every point of a random
        schedule/cancel/step interleaving — in both queue modes."""
        rng = random.Random(seed)
        sim = _calendar_sim(threshold=48)
        live = []
        for round_ in range(40):
            for _ in range(rng.randrange(1, 30)):
                live.append(
                    sim.schedule(
                        rng.random() * 50.0,
                        lambda: None,
                        priority=rng.choice(PRIORITIES),
                    )
                )
            for _ in range(rng.randrange(0, 12)):
                if live:
                    live.pop(rng.randrange(len(live))).cancel()
            for _ in range(rng.randrange(0, 6)):
                sim.step()
            live = [h for h in live if h.pending]
            assert sim.cancelled_pending == _buried_cancelled(sim)
            assert sim.heap_size == _total_entries(sim)
        sim.run()
        assert sim.heap_size == 0
        assert sim.cancelled_pending == 0

    def test_drain_resets_bookkeeping_in_bucket_mode(self):
        sim = _calendar_sim(threshold=16)
        handles = [sim.schedule(float(i % 97) + 0.5, lambda: None) for i in range(300)]
        for h in handles[::3]:
            h.cancel()
        expected = len([h for h in handles if not h.cancelled])
        assert sim.drain() == expected
        assert sim.heap_size == 0
        assert sim.cancelled_pending == 0
        assert sim.peek() == math.inf


# ---------------------------------------------------------------------------
# calendar vs pure-heap differential: mode must be unobservable
# ---------------------------------------------------------------------------
class TestCalendarHeapEquivalence:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_tied_workload_fires_in_identical_order(self, seed):
        traces = []
        for sim in (_calendar_sim(), _heap_sim()):
            trace = []
            for delay, prio, tag in _tied_workload(seed, 600):
                sim.schedule(
                    delay,
                    lambda t=tag: trace.append((sim.now, t)),
                    priority=prio,
                )
            sim.run()
            traces.append(trace)
        assert traces[0] == traces[1]
        assert len(traces[0]) == 600

    @pytest.mark.parametrize("seed", [3, 11])
    def test_midrun_scheduling_and_cancellation_match(self, seed):
        """Events that schedule follow-ups and cancel peers mid-run —
        exercising bucket merges interleaved with compaction — still
        execute identically to the pure heap."""

        def drive(sim):
            rng = random.Random(seed)
            trace = []
            live = []

            def fire(tag):
                trace.append((sim.now, tag))
                if rng.random() < 0.5:
                    live.append(
                        sim.schedule(
                            rng.choice((0.0, 0.5, 2.0)),
                            fire,
                            tag + 10_000,
                            priority=rng.choice(PRIORITIES),
                        )
                    )
                if live and rng.random() < 0.4:
                    live.pop(rng.randrange(len(live))).cancel()

            for delay, prio, tag in _tied_workload(seed + 1, 400):
                live.append(sim.schedule(delay, fire, tag, priority=prio))
            sim.run(until=40.0)
            return trace

        assert drive(_calendar_sim(threshold=24)) == drive(_heap_sim())

    def test_far_future_events_fire_last_and_in_order(self):
        """Times far beyond the initial bucket horizon land in distant
        buckets (or overflow-abort back to the heap) without disturbing
        the near-term order."""
        sim = _calendar_sim(threshold=16)
        order = []
        for far in (1e12, 1e6, 1e9):
            sim.at(far, order.append, far)
        for i in range(200):
            sim.schedule(float(i % 13) + 0.1, order.append, i)
        sim.run()
        assert order[-3:] == [1e6, 1e9, 1e12]
        near = order[:-3]
        assert len(near) == 200
        # near events sorted by their scheduled time, FIFO within ties
        times = [float(t % 13) + 0.1 for t in near]
        assert times == sorted(times)

    def test_astronomical_time_aborts_width_not_the_queue(self):
        """A pending time whose bucket key would overflow float range
        makes ``_set_width`` abort (stay pure-heap) rather than raise —
        and every event still fires in order."""
        sim = _calendar_sim(threshold=64)
        order = []
        sim.at(1e300, order.append, "far")
        for i in range(500):
            sim.schedule((i % 50) * 1e-9 + 1e-9, order.append, i)
        sim.run()
        assert len(order) == 501
        assert order[-1] == "far"


# ---------------------------------------------------------------------------
# width adaptation: dense cancellation and zero-span spikes
# ---------------------------------------------------------------------------
class TestWidthAdaptation:
    def test_bucket_resize_under_dense_cancellation(self):
        """Cancelling most of a bucketed schedule triggers compactions in
        calendar mode; survivors still fire in exact time order."""
        rng = random.Random(5)
        sim = _calendar_sim(threshold=64)
        handles = []
        for i in range(4000):
            handles.append(
                sim.schedule(rng.random() * 100.0, lambda: None)
            )
        survivors = []
        for h in handles:
            if rng.random() < 0.7:
                h.cancel()
            else:
                survivors.append(h)
        assert sim.compactions > 0
        assert sim.cancelled_pending == _buried_cancelled(sim)
        fired = []
        for h in survivors:
            h.fn = fired.append
            h.args = (h.time,)
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(survivors)
        assert sim.heap_size == 0 and sim.cancelled_pending == 0

    def test_zero_span_spike_does_not_underflow_width(self):
        """Regression: an overstuffed bucket whose events all share one
        timestamp can never be split by a narrower width.  The pre-fix
        code shrank the width on every merge regardless, underflowing it
        until ``int(time/width)`` overflowed to infinity mid-run."""
        sim = _calendar_sim(threshold=64, split=128)
        # spread events first so bucket mode engages with a finite span
        for i in range(80):
            sim.schedule(float(i) * 0.1 + 0.1, lambda: None)
        order = []
        # then a spike: one future bucket holding 400 same-time entries
        for i in range(400):
            sim.at(500.0, order.append, i)
        sim.schedule(600.0, order.append, "after")
        sim.run()  # pre-fix: OverflowError merging the spike bucket
        assert order == list(range(400)) + ["after"]

    def test_spike_followed_by_normal_load_keeps_working(self):
        """After the zero-span merge leaves the width alone, later
        spread-out events still bucket and fire correctly."""
        sim = _calendar_sim(threshold=64, split=128)
        for i in range(80):
            sim.schedule(float(i) * 0.1 + 0.1, lambda: None)
        for _ in range(300):
            sim.at(50.0, lambda: None)
        order = []

        def reload():
            for j in range(100):
                sim.schedule(float(j % 10) + 1.0, order.append, j)

        sim.at(51.0, reload)
        sim.run()
        assert len(order) == 100
        times = [float(j % 10) + 1.0 for j in order]
        assert times == sorted(times)
