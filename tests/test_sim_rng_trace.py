"""Tests for seeded RNG streams and the tracer."""

import numpy as np
import pytest

from repro.sim import NULL_TRACER, RngRegistry, Tracer, derive_seed


class TestRng:
    def test_same_name_same_stream_object(self, rngs):
        assert rngs.stream("a") is rngs.stream("a")

    def test_different_names_different_sequences(self, rngs):
        a = rngs.stream("a").random(8)
        b = rngs.stream("b").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_across_registries(self):
        x = RngRegistry(7).stream("failures").random(8)
        y = RngRegistry(7).stream("failures").random(8)
        assert np.allclose(x, y)

    def test_fresh_restarts_stream(self, rngs):
        first = rngs.stream("s").random(4)
        again = rngs.stream("s", fresh=True).random(4)
        assert np.allclose(first, again)

    def test_stream_independent_of_registration_order(self):
        r1 = RngRegistry(1)
        r1.stream("a")
        b_after_a = r1.stream("b").random(4)
        r2 = RngRegistry(1)
        b_alone = r2.stream("b").random(4)
        assert np.allclose(b_after_a, b_alone)

    def test_spawn_child_registry(self):
        parent = RngRegistry(3)
        c1 = parent.spawn("rep0").stream("x").random(4)
        c2 = parent.spawn("rep1").stream("x").random(4)
        assert not np.allclose(c1, c2)
        again = RngRegistry(3).spawn("rep0").stream("x").random(4)
        assert np.allclose(c1, again)

    def test_spawn_many_matches_individual_spawns(self):
        parent = RngRegistry(3)
        children = parent.spawn_many("rep", 4)
        assert len(children) == 4
        for i, child in enumerate(children):
            solo = parent.spawn(f"rep/{i}")
            assert child.master_seed == solo.master_seed

    def test_spawn_many_pairwise_distinct(self):
        streams = [
            c.stream("x").random(8) for c in RngRegistry(3).spawn_many("rep", 5)
        ]
        for i in range(len(streams)):
            for j in range(i + 1, len(streams)):
                assert not np.allclose(streams[i], streams[j])

    def test_spawn_many_order_insensitive(self):
        # a child's streams don't depend on how many siblings exist or
        # in which order they are materialized
        few = RngRegistry(3).spawn_many("rep", 2)
        many = RngRegistry(3).spawn_many("rep", 8)
        assert np.allclose(
            few[1].stream("x").random(4), many[1].stream("x").random(4)
        )

    def test_spawn_many_negative_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(0).spawn_many("rep", -1)

    def test_pickle_roundtrip_preserves_stream_positions(self):
        import pickle

        reg = RngRegistry(7)
        reg.stream("a").random(16)  # advance the stream
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.master_seed == reg.master_seed
        # continuation after the round-trip matches the original exactly
        assert np.allclose(clone.stream("a").random(8),
                           reg.stream("a").random(8))
        # and unnamed streams derive identically
        assert np.allclose(clone.stream("b").random(4),
                           RngRegistry(7).stream("b").random(4))

    def test_pickled_registry_usable_in_subprocess_style_flow(self):
        # the multiprocessing contract: ship a child registry to a
        # worker, draw there, get the same numbers as drawing locally
        import pickle

        child = RngRegistry(3).spawn("rep/2")
        shipped = pickle.loads(pickle.dumps(child))
        assert np.allclose(shipped.stream("failures").random(8),
                           RngRegistry(3).spawn("rep/2")
                           .stream("failures").random(8))

    def test_derive_seed_stability(self):
        assert derive_seed(5, "x") == derive_seed(5, "x")
        assert derive_seed(5, "x") != derive_seed(5, "y")
        assert derive_seed(5, "x") != derive_seed(6, "x")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(-1)

    def test_contains(self, rngs):
        assert "never" not in rngs
        rngs.stream("yes")
        assert "yes" in rngs


class TestTracer:
    def test_emit_and_select(self):
        tr = Tracer()
        tr.emit(1.0, "a.x", v=1)
        tr.emit(2.0, "a.y", v=2)
        tr.emit(3.0, "b.x", v=3)
        assert len(tr) == 3
        assert [r.time for r in tr.select(kind="a.x")] == [1.0]
        assert [r["v"] for r in tr.select(prefix="a.")] == [1, 2]
        assert [r.time for r in tr.select(where=lambda r: r["v"] > 1)] == [2.0, 3.0]

    def test_count_and_times(self):
        tr = Tracer()
        for t in (1.0, 2.0, 5.0):
            tr.emit(t, "tick")
        assert tr.count("tick") == 3
        assert tr.times("tick") == [1.0, 2.0, 5.0]

    def test_record_getitem(self):
        tr = Tracer()
        tr.emit(0.0, "k", alpha=7)
        assert tr.records[0]["alpha"] == 7

    def test_disabled_tracer_drops(self):
        tr = Tracer(enabled=False)
        tr.emit(1.0, "x")
        assert len(tr) == 0

    def test_null_tracer_is_silent_singleton(self):
        NULL_TRACER.emit(1.0, "anything", junk=True)
        assert len(NULL_TRACER) == 0

    def test_clear(self):
        tr = Tracer()
        tr.emit(1.0, "x")
        tr.clear()
        assert len(tr) == 0
