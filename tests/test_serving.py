"""repro.serving — PS engine, cells, policies, and the SLA controller.

The queueing-theory anchors here are the real tests: the exact PS
engine must reproduce the closed-form M/M/1-PS mean sojourn, stalls
must delay completions by exactly the stall width, and the policy
comparisons (checkpoint inflates p99, SLA control deflates it, cloning
eats crash loss) must hold on seeded traces.
"""

import numpy as np
import pytest

from repro.experiments import MethodSpec, PairedJobStudy
from repro.serving import (
    ArrivalChunk,
    ArrivalConfig,
    OpenLoopArrivals,
    PSServer,
    ServingEngine,
    ServingLoad,
    ServingPolicy,
    SLAController,
    policies_named,
    run_serving_cell,
    run_serving_study,
)
from repro.sim import RngRegistry


# ---------------------------------------------------------------------------
# arrival streams


class TestArrivalConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            ArrivalConfig(rate=0.0)
        with pytest.raises(ValueError, match="n_requests"):
            ArrivalConfig(n_requests=0)
        with pytest.raises(ValueError, match="service_mean"):
            ArrivalConfig(service_mean=-1.0)
        with pytest.raises(ValueError, match="service_dist"):
            ArrivalConfig(service_dist="pareto")
        with pytest.raises(ValueError, match="chunk_requests"):
            ArrivalConfig(chunk_requests=0)

    def test_offered_load(self):
        cfg = ArrivalConfig(rate=200.0, service_mean=0.02)
        assert cfg.offered_load_per_server == pytest.approx(4.0)


class TestOpenLoopArrivals:
    def test_stream_shape_and_statistics(self):
        cfg = ArrivalConfig(rate=100.0, n_requests=50_000, service_mean=0.05)
        chunks = list(OpenLoopArrivals(cfg, RngRegistry(7)).chunks())
        times = np.concatenate([c.times for c in chunks])
        service = np.concatenate([c.service for c in chunks])
        assert times.size == service.size == 50_000
        assert np.all(np.diff(times) > 0)  # strictly increasing
        # seeded law-of-large-numbers sanity, not a statistical test
        assert np.mean(np.diff(times)) == pytest.approx(0.01, rel=0.05)
        assert service.mean() == pytest.approx(0.05, rel=0.05)

    def test_lognormal_hits_requested_mean(self):
        cfg = ArrivalConfig(
            n_requests=200_000, service_dist="lognormal", service_mean=0.03
        )
        chunks = OpenLoopArrivals(cfg, RngRegistry(7)).chunks()
        service = np.concatenate([c.service for c in chunks])
        assert service.mean() == pytest.approx(0.03, rel=0.05)

    def test_request_ids_are_contiguous(self):
        cfg = ArrivalConfig(n_requests=10_000, chunk_requests=4096)
        chunks = list(OpenLoopArrivals(cfg, RngRegistry(0)).chunks())
        assert [c.start_id for c in chunks] == [0, 4096, 8192]
        assert [c.n for c in chunks] == [4096, 4096, 1808]

    def test_clone_sampler_leaves_primary_stream_alone(self):
        reg1, reg2 = RngRegistry(5), RngRegistry(5)
        a1 = OpenLoopArrivals(ArrivalConfig(n_requests=1000), reg1)
        a2 = OpenLoopArrivals(ArrivalConfig(n_requests=1000), reg2)
        draw = a2.clone_sampler()
        sampled = [draw() for _ in range(100)]
        assert all(s > 0 for s in sampled)
        t1 = np.concatenate([c.service for c in a1.chunks()])
        t2 = np.concatenate([c.service for c in a2.chunks()])
        np.testing.assert_array_equal(t1, t2)


# ---------------------------------------------------------------------------
# the exact PS engine


def _single_server_engine(**kw):
    return ServingEngine([PSServer(0)], **kw)


def _chunk(times, service, start_id=0):
    return ArrivalChunk(
        start_id,
        np.asarray(times, dtype=np.float64),
        np.asarray(service, dtype=np.float64),
    )


class TestPSServerEngine:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            ServingEngine([])
        with pytest.raises(ValueError, match="clone"):
            _single_server_engine(clone=0)

    def test_single_request_departs_after_its_demand(self):
        eng = _single_server_engine()
        eng.feed(_chunk([1.0], [2.5]))
        eng.advance_to(10.0)
        t, lat, rid, sid = eng.take_completions()
        assert t.tolist() == [3.5]
        assert lat.tolist() == [2.5]
        assert rid.tolist() == [0] and sid.tolist() == [0]

    def test_two_requests_share_the_processor(self):
        # both arrive at 0 with demand 1: each gets half capacity, both
        # finish at exactly t=2 (PS fluid sharing)
        eng = _single_server_engine()
        eng.feed(_chunk([0.0, 0.0], [1.0, 1.0]))
        eng.advance_to(10.0)
        t, lat, _, _ = eng.take_completions()
        assert t.tolist() == [2.0, 2.0]
        assert lat.tolist() == [2.0, 2.0]

    def test_stall_delays_completion_by_exactly_its_width(self):
        eng = _single_server_engine()
        eng.feed(_chunk([0.0], [1.0]))
        eng.stall_begin(0.25)
        eng.stall_end(0.75)  # 0.5 s frozen
        eng.advance_to(10.0)
        t, lat, _, _ = eng.take_completions()
        assert t.tolist() == [1.5]
        assert lat.tolist() == [1.5]

    def test_crash_sheds_in_flight_and_unroutes_arrivals(self):
        eng = _single_server_engine()
        eng.feed(_chunk([0.0, 1.0], [5.0, 1.0]))
        eng.set_down(0.5, [0])
        eng.advance_to(2.0)
        assert eng.lost == 1  # the in-flight request
        assert eng.lost_unrouted == 1  # the arrival with nowhere to go
        assert eng.outstanding == 0

    def test_recovery_resumes_service(self):
        eng = _single_server_engine()
        eng.set_down(0.0, [0])
        eng.set_up(2.0, [0])
        eng.feed(_chunk([3.0], [1.0]))
        eng.advance_to(10.0)
        t, _, _, _ = eng.take_completions()
        assert t.tolist() == [4.0]

    def test_mm1_ps_mean_sojourn_matches_closed_form(self):
        # M/M/1-PS: E[T] = s / (1 - rho); rho=0.8, s=0.01 -> 50 ms
        cfg = ArrivalConfig(
            rate=80.0, n_requests=40_000, service_mean=0.01,
            chunk_requests=8192,
        )
        eng = _single_server_engine()
        lats = []
        for chunk in OpenLoopArrivals(cfg, RngRegistry(21)).chunks():
            eng.feed(chunk)
            eng.advance_to(chunk.end)
            lats.append(eng.take_completions()[1])
        eng.advance_to(1e9)
        lats.append(eng.take_completions()[1])
        lat = np.concatenate(lats)
        assert lat.size == 40_000
        assert lat.mean() == pytest.approx(0.05, rel=0.10)


class TestCloning:
    def test_first_completion_wins_and_cancels_sibling(self):
        demands = iter([5.0])  # the sibling draws a slow copy
        eng = ServingEngine(
            [PSServer(0), PSServer(1)], clone=2,
            clone_demand=lambda: next(demands),
        )
        eng.feed(_chunk([0.0], [1.0]))
        eng.advance_to(10.0)
        t, lat, rid, sid = eng.take_completions()
        assert t.tolist() == [1.0]  # the fast copy's finish, not 5.0
        assert rid.tolist() == [0] and sid.tolist() == [0]
        assert eng.completed == 1 and eng.outstanding == 0
        # the cancelled sibling left no residue
        assert eng.servers[1].n == 0 and not eng.servers[1].jobs

    def test_clone_without_sampler_shares_the_demand(self):
        eng = ServingEngine([PSServer(0), PSServer(1)], clone=2)
        eng.feed(_chunk([0.0], [1.0]))
        eng.advance_to(10.0)
        t, _, _, _ = eng.take_completions()
        assert t.tolist() == [1.0]
        assert eng.completed == 1

    def test_cloned_request_survives_one_crash(self):
        eng = ServingEngine([PSServer(0), PSServer(1)], clone=2)
        eng.feed(_chunk([0.0], [1.0]))
        eng.set_down(0.5, [0])  # primary dies mid-service
        eng.advance_to(10.0)
        t, _, _, sid = eng.take_completions()
        assert eng.completed == 1 and eng.lost == 0
        assert sid.tolist() == [1]

    def test_cloned_request_lost_only_when_all_replicas_die(self):
        eng = ServingEngine([PSServer(0), PSServer(1)], clone=2)
        eng.feed(_chunk([0.0], [1.0]))
        eng.set_down(0.2, [0])
        eng.set_down(0.4, [1])
        eng.advance_to(10.0)
        assert eng.completed == 0 and eng.lost == 1
        assert eng.outstanding == 0

    def test_clone_routes_to_distinct_live_replicas(self):
        eng = ServingEngine([PSServer(0), PSServer(1), PSServer(2)], clone=2)
        eng.set_down(0.0, [1])
        eng.feed(_chunk([1.0, 1.0], [1.0, 1.0], start_id=0))
        eng.advance_to(0.99)
        # rid 0 -> base 0 -> [0, 2] (1 is down); rid 1 -> base 1 -> [2, 0]
        eng.advance_to(5.0)
        assert eng.completed == 2 and eng.lost_unrouted == 0


# ---------------------------------------------------------------------------
# policy / load validation


class TestPolicies:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="clone"):
            ServingPolicy("bad", clone=0)
        with pytest.raises(ValueError, match="sla"):
            ServingPolicy("bad", sla=True)
        with pytest.raises(ValueError, match="interval"):
            ServingPolicy("bad", checkpoint=True, interval=0.0)

    def test_policies_named(self):
        assert [p.name for p in policies_named(["clone2", "baseline"])] == [
            "clone2", "baseline"
        ]
        with pytest.raises(ValueError, match="unknown policy"):
            policies_named(["chaos"])


# ---------------------------------------------------------------------------
# SLA controller (unit)


class _Knob:
    interval = 10.0


class TestSLAController:
    def test_validation(self):
        with pytest.raises(ValueError, match="slo_p99"):
            SLAController(_Knob(), 0.0)
        with pytest.raises(ValueError, match="min_interval"):
            SLAController(_Knob(), 0.2, min_interval=10.0, max_interval=1.0)
        with pytest.raises(ValueError, match="relax"):
            SLAController(_Knob(), 0.2, relax=1.0)

    def test_breach_relaxes_the_interval(self):
        knob = _Knob()
        ctl = SLAController(knob, 0.2, min_interval=1.0, max_interval=100.0)
        ctl.update(5.0, np.full(100, 0.5))  # p99 way over SLO
        assert knob.interval == pytest.approx(16.0)
        assert ctl.breaches == 1 and ctl.windows == 1
        assert ctl.actions[0][2:] == (10.0, 16.0)

    def test_comfortable_p99_tightens_back(self):
        knob = _Knob()
        ctl = SLAController(knob, 0.2, min_interval=1.0, max_interval=100.0)
        ctl.update(5.0, np.full(100, 0.01))  # far under headroom
        assert knob.interval == pytest.approx(8.5)
        assert ctl.breaches == 0

    def test_in_band_holds(self):
        knob = _Knob()
        ctl = SLAController(knob, 0.2, min_interval=1.0, max_interval=100.0)
        ctl.update(5.0, np.full(100, 0.15))  # between headroom and SLO
        assert knob.interval == 10.0
        assert ctl.actions == []

    def test_clamping_both_ways(self):
        knob = _Knob()
        ctl = SLAController(knob, 0.2, min_interval=9.0, max_interval=12.0)
        ctl.update(1.0, np.full(10, 1.0))
        assert knob.interval == 12.0  # clamped relax
        ctl.update(2.0, np.full(10, 0.001))
        ctl.update(3.0, np.full(10, 0.001))
        assert knob.interval == 9.0  # clamped tighten

    def test_empty_window_is_ignored(self):
        ctl = SLAController(_Knob(), 0.2)
        ctl.update(1.0, np.empty(0))
        assert ctl.windows == 0

    def test_summary_shape(self):
        knob = _Knob()
        ctl = SLAController(knob, 0.2, min_interval=1.0, max_interval=100.0)
        ctl.update(1.0, np.full(10, 1.0))
        s = ctl.summary()
        assert s["breaches"] == 1 and s["windows"] == 1
        assert s["adjustments"] == 1
        assert s["interval_final"] == pytest.approx(knob.interval)
        assert 0.0 <= s["breach_rate"] <= 1.0


# ---------------------------------------------------------------------------
# full serving cells: the policy comparisons the ISSUE gates


QUICK = ServingLoad(n_requests=6000)
CRASHY = ServingLoad(n_requests=6000, node_mtbf=60.0)


class TestServingCell:
    def test_report_contract(self):
        rep = run_serving_cell(ServingPolicy("baseline"), QUICK, 0)
        assert rep["offered"] == 6000
        assert rep["completed"] == 6000
        assert rep["lost"] == 0 and rep["lost_unrouted"] == 0
        assert rep["drained"] is True
        assert set(rep["latency"]) == {
            "mean", "max", "p50", "p95", "p99", "p999"
        }
        assert len(rep["digest"]) == 64
        assert rep["policy"] == "baseline" and rep["trace_seed"] == 0

    def test_cell_is_deterministic(self):
        a = run_serving_cell(ServingPolicy("baseline"), QUICK, 3)
        b = run_serving_cell(ServingPolicy("baseline"), QUICK, 3)
        assert a == b

    def test_checkpoint_pauses_inflate_p99(self):
        base = run_serving_cell(ServingPolicy("baseline"), QUICK, 0)
        ck = run_serving_cell(
            ServingPolicy("ck", checkpoint=True, interval=1.0), QUICK, 0
        )
        assert ck["pauses"] > 3
        assert ck["pause_seconds"] > 0
        # the pause windows must show up in the tail, visibly
        assert ck["latency"]["p99"] > base["latency"]["p99"] * 1.05
        # ... and nothing is lost: pauses stall, they don't drop
        assert ck["lost"] == 0 and ck["completed"] == 6000

    def test_sla_controller_deflates_the_checkpoint_tail(self):
        load = ServingLoad(n_requests=20_000)
        fixed = run_serving_cell(
            ServingPolicy("ck", checkpoint=True, interval=1.0), load, 0
        )
        sla = run_serving_cell(
            ServingPolicy(
                "sla", checkpoint=True, sla=True, interval=1.0
            ),
            load, 0,
        )
        assert sla["sla"]["adjustments"] > 0
        assert sla["interval_final"] > 1.0  # it relaxed the cadence
        assert sla["pause_seconds"] < fixed["pause_seconds"]
        assert sla["latency"]["p99"] < fixed["latency"]["p99"]

    def test_cloning_eats_crash_loss(self):
        base = run_serving_cell(ServingPolicy("baseline"), CRASHY, 0)
        clone = run_serving_cell(ServingPolicy("clone2", clone=2), CRASHY, 0)
        assert base["failures"] > 0
        assert base["lost"] > 0
        assert clone["failures"] == base["failures"]  # same trace
        assert clone["lost"] == 0 and clone["lost_unrouted"] == 0
        assert clone["completed"] == 6000

    def test_iid_clone_demands_cut_the_tail(self):
        base = run_serving_cell(ServingPolicy("baseline"), QUICK, 0)
        clone = run_serving_cell(ServingPolicy("clone2", clone=2), QUICK, 0)
        assert clone["latency"]["p99"] < base["latency"]["p99"]

    def test_degraded_windows_attributed_per_group(self):
        rep = run_serving_cell(
            ServingPolicy("ck", checkpoint=True, interval=1.0), CRASHY, 0
        )
        assert rep["failures"] > 0
        assert rep["degraded_seconds"]  # outage windows recorded
        # parity-group labels, not 'none': the checkpointer places groups
        assert all(k != "none" for k in rep["degraded_seconds"])
        assert rep["degraded_requests"]
        assert all(v > 0 for v in rep["degraded_requests"].values())

    def test_unprotected_outages_attributed_to_none(self):
        rep = run_serving_cell(ServingPolicy("baseline"), CRASHY, 0)
        assert set(rep["degraded_seconds"]) == {"none"}


# ---------------------------------------------------------------------------
# study orchestration


class TestServingStudy:
    def test_study_runs_all_policies_in_order(self, tmp_path):
        load = ServingLoad(n_requests=2000)
        policies = policies_named(["baseline", "clone2"])
        outcome, result = run_serving_study(
            policies, load, seeds=2, store=str(tmp_path / "store")
        )
        assert [c["policy"] for c in outcome.cells] == [
            "baseline", "baseline", "clone2", "clone2"
        ]
        assert [c["trace_seed"] for c in outcome.cells] == [0, 1, 0, 1]
        table = outcome.summary_table()
        assert "baseline" in table and "clone2" in table
        assert result.n_failed == 0

    def test_mean_quantile_over_seeds(self, tmp_path):
        load = ServingLoad(n_requests=2000)
        outcome, _ = run_serving_study(
            policies_named(["baseline"]), load, seeds=2,
            store=str(tmp_path / "store"),
        )
        per_seed = [c["latency"]["p99"] for c in outcome.cells]
        assert outcome.mean_quantile("baseline", "p99") == pytest.approx(
            float(np.mean(per_seed))
        )


# ---------------------------------------------------------------------------
# sidecar mode: serving riding a paired batch-job study


class TestServingSidecar:
    def test_paired_study_carries_serving_outcomes(self):
        study = PairedJobStudy(
            methods=[MethodSpec("dvdc")],
            work=1800.0, seeds=1, node_mtbf=200 * 3600.0,
            serving={"rate": 40.0, "n_requests": 1500},
        )
        out = study.run()
        assert len(out.cells) == 1
        serving = out.cells[0].serving
        assert serving is not None
        assert serving["offered"] == 1500
        assert serving["completed"] + serving["lost"] <= 1500
        assert serving["latency"]["p99"] > 0
