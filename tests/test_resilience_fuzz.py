"""Transient-fault mode of the audit fuzzer, and its CLI surface."""

import numpy as np
import pytest

from repro.audit import FaultSpec, FuzzConfig, draw_schedule, fuzz, run_trial
from repro.cli import main


class TestFaultSpecKinds:
    def test_kind_validation(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(cycle=0, phase="idle", node=0, frac=0.5, kind="meteor")
        with pytest.raises(ValueError, match="duration"):
            FaultSpec(cycle=0, phase="idle", node=0, frac=0.5,
                      kind="flap", duration=-1.0)
        with pytest.raises(ValueError, match="severity"):
            FaultSpec(cycle=0, phase="idle", node=0, frac=0.5,
                      kind="degrade", severity=0.0)

    def test_str_names_the_kind(self):
        spec = FaultSpec(cycle=1, phase="mid_pause", node=2, frac=0.5,
                        kind="flap", duration=0.3)
        assert "flap" in str(spec)
        # the classic kill keeps its familiar rendering
        assert "kill" in str(FaultSpec(cycle=0, phase="idle", node=0, frac=0.5))


class TestTransientDraw:
    def test_deterministic_in_the_seed(self):
        cfg = FuzzConfig(transient=True, max_faults=4)
        a = draw_schedule(np.random.default_rng([7, 0x5C]), cfg)
        b = draw_schedule(np.random.default_rng([7, 0x5C]), cfg)
        assert a == b

    def test_classic_stream_is_untouched_by_the_kind_draw(self):
        """The transient vocabulary must not perturb where classic fuzz
        schedules aim: same seed, same (cycle, phase, node, frac)."""
        classic = FuzzConfig(transient=False, max_faults=4)
        transient = FuzzConfig(transient=True, max_faults=4)
        for seed in range(20):
            c = draw_schedule(np.random.default_rng([seed, 0x5C]), classic)
            t = draw_schedule(np.random.default_rng([seed, 0x5C]), transient)
            assert [(f.cycle, f.phase, f.node, f.frac) for f in c] \
                == [(f.cycle, f.phase, f.node, f.frac) for f in t]
            assert all(f.kind == "kill" for f in c)

    def test_vocabulary_and_bounds(self):
        cfg = FuzzConfig(transient=True, max_faults=4)
        kinds = set()
        for seed in range(60):
            for f in draw_schedule(np.random.default_rng([seed, 0x5C]), cfg):
                kinds.add(f.kind)
                assert 0.05 <= f.duration <= 1.5 or f.kind == "kill"
                assert 0.1 <= f.severity <= 0.9 or f.kind == "kill"
        # kills keep their share and at least most transient kinds appear
        assert "kill" in kinds
        assert len(kinds - {"kill"}) >= 3

    def test_incremental_strategy_never_draws_corrupt(self):
        cfg = FuzzConfig(transient=True, max_faults=4, strategy="incremental")
        for seed in range(60):
            for f in draw_schedule(np.random.default_rng([seed, 0x5C]), cfg):
                assert f.kind != "corrupt"


class TestTransientTrials:
    def test_small_batch_runs_clean(self):
        result = fuzz(FuzzConfig(transient=True, n_cycles=3), seeds=4)
        assert result.ok, [str(v) for t in result.failures for v in t.violations]
        assert len(result.trials) == 4
        # determinism: the same campaign replays identically
        again = fuzz(FuzzConfig(transient=True, n_cycles=3), seeds=4)
        assert [t.schedule for t in again.trials] \
            == [t.schedule for t in result.trials]

    def test_transient_faults_actually_fire(self):
        cfg = FuzzConfig(transient=True, n_cycles=3, max_faults=3)
        fired = []
        for seed in range(8):
            sched = draw_schedule(np.random.default_rng([seed, 0x5C]), cfg)
            trial = run_trial(cfg, sched, seed)
            assert not trial.failed, [str(v) for v in trial.violations]
            fired.extend(trial.transients_fired)
        assert fired, "eight seeds must land at least one transient fault"
        assert all(f.kind != "kill" for f in fired)


class TestCLI:
    def test_audit_fuzz_transient_exits_zero(self, capsys):
        rc = main([
            "audit", "--fuzz", "--transient", "--layout", "fig4",
            "--seeds", "3", "--cycles", "3",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "+transient" in out and "transients" in out

    def test_audit_heal_with_spare_exits_zero(self, capsys):
        rc = main(["audit", "--heal", "--spares", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "protected" in out
        assert "still open" not in out  # the window closed and is reported

    def test_audit_heal_without_spares_exits_zero(self, capsys):
        rc = main(["audit", "--heal", "--spares", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "degraded" in out
        assert "outstanding" in out  # it says *why* it is not protected
