"""Property-based tests (hypothesis) for the core data structures and
invariants: XOR algebra, erasure codes, memory deltas, layouts, and the
analytical model's shape properties."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, MemoryImage, VirtualCluster, xor_reduce
from repro.core import RDPCode, XorCode, build_orthogonal_layout, validate_layout
from repro.model import (
    expected_time_checkpointed,
    expected_time_no_checkpoint,
    expected_time_with_overhead,
    truncated_mean_failure_time,
)
from repro.sim import Simulator


def buffers(k, min_len=1, max_len=200):
    return st.integers(min_value=min_len, max_value=max_len).flatmap(
        lambda n: st.lists(
            st.binary(min_size=n, max_size=n), min_size=k, max_size=k
        )
    )


class TestXorAlgebra:
    @given(buffers(3))
    def test_parity_xor_members_is_zero(self, bufs):
        members = [np.frombuffer(b, dtype=np.uint8) for b in bufs]
        [parity] = XorCode().encode(members)
        assert not xor_reduce(members + [parity]).any()

    @given(buffers(4), st.integers(min_value=0, max_value=3))
    def test_any_member_recoverable(self, bufs, lost):
        members = [np.frombuffer(b, dtype=np.uint8) for b in bufs]
        code = XorCode()
        [parity] = code.encode(members)
        shards = [m if i != lost else None for i, m in enumerate(members)]
        out = code.reconstruct(shards, [parity])
        assert np.array_equal(out[lost], members[lost])


class TestRDPProperties:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=1, max_value=120),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_double_erasure_always_recoverable(self, k, nbytes, data):
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        members = [rng.integers(0, 256, nbytes, dtype=np.uint8) for _ in range(k)]
        code = RDPCode(k)
        rp, dp = code.encode(members)
        ids = list(range(k)) + ["rp", "dp"]
        lost = data.draw(
            st.lists(st.sampled_from(ids), min_size=0, max_size=2, unique=True)
        )
        ms = [None if i in lost else members[i] for i in range(k)]
        ps = [None if "rp" in lost else rp, None if "dp" in lost else dp]
        out = code.reconstruct(ms, ps, nbytes=nbytes)
        for got, want in zip(out, members):
            assert np.array_equal(got, want)

    @given(st.integers(min_value=1, max_value=8))
    def test_row_parity_equals_xor(self, k):
        rng = np.random.default_rng(k)
        code = RDPCode(k)
        nbytes = (code.p - 1) * 8  # no padding
        members = [rng.integers(0, 256, nbytes, dtype=np.uint8) for _ in range(k)]
        rp, _ = code.encode(members)
        [xp] = XorCode().encode(members)
        assert np.array_equal(rp, xp)


class TestMemoryDeltaProperties:
    @given(
        st.integers(min_value=1, max_value=32),
        st.lists(
            st.tuples(st.integers(0, 2**16), st.binary(min_size=1, max_size=64)),
            min_size=0,
            max_size=20,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_delta_applied_to_base_reproduces_state(self, n_pages, writes):
        img = MemoryImage(n_pages, page_size=32)
        base = img.snapshot()
        for addr, data in writes:
            addr = addr % max(1, img.nbytes - len(data)) if img.nbytes > len(data) else 0
            if addr + len(data) <= img.nbytes:
                img.write(addr, data)
        delta = img.capture_delta()
        patched = base.copy()
        delta.apply_to(patched)
        assert np.array_equal(patched, img.flat)

    @given(st.integers(min_value=1, max_value=64))
    def test_snapshot_restore_roundtrip(self, n_pages):
        rng = np.random.default_rng(n_pages)
        img = MemoryImage(n_pages, page_size=16)
        img.write(0, rng.integers(0, 256, img.nbytes, dtype=np.uint8))
        snap = img.snapshot()
        img.write(0, rng.integers(0, 256, img.nbytes, dtype=np.uint8))
        img.restore(snap)
        assert np.array_equal(img.flat, snap)


class TestLayoutProperties:
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=50, deadline=None)
    def test_builder_layouts_always_valid(self, n_nodes, vms_per_node, group_size):
        if group_size >= n_nodes:
            group_size = n_nodes - 1
        if group_size < 1:
            return
        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=n_nodes))
        cluster.create_vms_balanced(n_nodes * vms_per_node, 1e9)
        layout = build_orthogonal_layout(cluster, group_size)
        assert validate_layout(layout, cluster).ok
        assert sorted(layout.vm_ids) == list(range(n_nodes * vms_per_node))

    @given(
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_parity_load_balanced_within_one(self, n_nodes, vms_per_node):
        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=n_nodes))
        cluster.create_vms_balanced(n_nodes * vms_per_node, 1e9)
        layout = build_orthogonal_layout(cluster, n_nodes - 1)
        load = layout.parity_load()
        values = [load.get(n, 0) for n in range(n_nodes)]
        assert max(values) - min(values) <= 1


class TestModelProperties:
    @given(
        st.floats(min_value=1e-6, max_value=1e-2),
        st.floats(min_value=10.0, max_value=1e5),
    )
    @settings(max_examples=60)
    def test_expected_time_at_least_T(self, lam, T):
        assert expected_time_no_checkpoint(lam, T) >= T * (1 - 1e-12)

    @given(
        st.floats(min_value=1e-6, max_value=1e-3),
        st.floats(min_value=1000.0, max_value=1e5),
        st.floats(min_value=1.0, max_value=999.0),
    )
    @settings(max_examples=60)
    def test_zero_cost_checkpointing_never_hurts(self, lam, T, N):
        assert (
            expected_time_checkpointed(lam, T, N)
            <= expected_time_no_checkpoint(lam, T) * (1 + 1e-9)
        )

    @given(
        st.floats(min_value=1e-6, max_value=1e-3),
        st.floats(min_value=100.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=60)
    def test_overhead_monotone(self, lam, N, ov1, ov2):
        T = 1e5
        lo, hi = sorted((ov1, ov2))
        assert (
            expected_time_with_overhead(lam, T, N, lo)
            <= expected_time_with_overhead(lam, T, N, hi) * (1 + 1e-12)
        )

    @given(
        st.floats(min_value=1e-6, max_value=1e-2),
        st.floats(min_value=1.0, max_value=1e5),
    )
    @settings(max_examples=60)
    def test_truncated_mean_bounds(self, lam, span):
        m = truncated_mean_failure_time(lam, span)
        assert 0.0 < m < min(span, 1.0 / lam) + 1e-9
