"""Zero-copy shared-memory array transport for campaign workers.

Covers :mod:`repro.campaign.shm` (segment round trips, recursive
extract/restore, JSON-safe stripping), the runner integration (pooled
workers publish arrays to shared memory instead of pickling them back),
and two store bugfixes that ride along:

* ``ResultStore.write_report`` is atomic (temp file + ``os.replace``) —
  the pre-fix implementation wrote the report in place, so a crash
  mid-write left a truncated JSON document behind;
* ``ResultStore._load`` compaction rewrites one line per key (last
  wins) — the pre-fix implementation kept every superseded duplicate
  line forever, so a store two campaigns raced on never shrank.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaign import (
    CampaignRunner,
    ResultStore,
    Task,
    execute_task,
)
from repro.campaign.shm import (
    REF_KEY,
    SHM_AVAILABLE,
    STUB_KEY,
    ShmArrayRef,
    extract_arrays,
    has_arrays,
    load_array,
    restore_arrays,
    share_array,
    strip_arrays,
)

needs_shm = pytest.mark.skipif(not SHM_AVAILABLE, reason="no shared memory")


# ---------------------------------------------------------------------------
# segment round trips
# ---------------------------------------------------------------------------
@needs_shm
class TestSegments:
    def test_round_trip_preserves_bytes_and_shape(self):
        arr = np.arange(997, dtype=np.uint8).reshape(-1)
        ref = share_array(arr)
        out = load_array(ref)
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert np.array_equal(out, arr)

    def test_round_trip_2d_nonuint8(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        out = load_array(share_array(arr))
        assert out.shape == (3, 4)
        assert np.array_equal(out, arr)

    def test_unlink_removes_segment(self):
        from multiprocessing import shared_memory

        ref = share_array(np.zeros(16, dtype=np.uint8))
        load_array(ref, unlink=True)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref.name)

    def test_no_unlink_allows_second_reader(self):
        ref = share_array(np.full(8, 7, dtype=np.uint8))
        first = load_array(ref, unlink=False)
        second = load_array(ref, unlink=True)  # second read, then clean up
        assert np.array_equal(first, second)

    def test_ref_dict_round_trip(self):
        ref = ShmArrayRef(name="x", shape=(2, 3), dtype="|u1")
        assert ShmArrayRef.from_dict(ref.to_dict()) == ref


# ---------------------------------------------------------------------------
# recursive transforms
# ---------------------------------------------------------------------------
@needs_shm
class TestTransforms:
    def test_extract_restore_nested(self):
        value = {
            "meta": {"n": 3},
            "images": {"0": np.arange(64, dtype=np.uint8)},
            "list": [np.ones(4, dtype=np.uint8), "text", 7],
        }
        extracted = extract_arrays(value)
        # no ndarray survives extraction; markers stand in
        assert not has_arrays(extracted)
        assert REF_KEY in extracted["images"]["0"]
        restored = restore_arrays(extracted)
        assert np.array_equal(restored["images"]["0"], value["images"]["0"])
        assert np.array_equal(restored["list"][0], value["list"][0])
        assert restored["meta"] == {"n": 3}
        assert restored["list"][1:] == ["text", 7]

    def test_extract_identity_without_arrays(self):
        value = {"a": 1, "b": [2, {"c": "x"}]}
        assert extract_arrays(value) == value

    def test_strip_arrays_is_json_safe_and_fingerprints(self):
        import zlib

        arr = np.arange(32, dtype=np.uint8)
        stripped = strip_arrays({"pages": arr, "n": 1})
        json.dumps(stripped)  # must not raise
        stub = stripped["pages"][STUB_KEY]
        assert stub["shape"] == [32]
        assert stub["crc32"] == zlib.crc32(arr.tobytes())
        assert stripped["n"] == 1

    def test_has_arrays(self):
        assert has_arrays({"x": [np.zeros(1)]})
        assert not has_arrays({"x": [1, "y", {"z": None}]})


# ---------------------------------------------------------------------------
# runner integration: the image_snapshot kind under a worker pool
# ---------------------------------------------------------------------------
def _snapshot_tasks():
    return [
        Task(
            "image_snapshot",
            {"n_nodes": 8, "epochs": 2, "seed": s, "vm_ids": [0, 1]},
        )
        for s in (0, 1)
    ]


@needs_shm
class TestRunnerIntegration:
    def test_worker_extracts_arrays_into_markers(self):
        out = execute_task(_snapshot_tasks()[0].to_dict(), share_arrays=True)
        assert out["ok"], out["error"]
        assert not has_arrays(out["value"])
        restored = restore_arrays(out["value"])
        assert isinstance(restored["images"]["0"], np.ndarray)

    def test_pool_matches_inline_bit_exactly(self):
        from repro.cluster.checksum import block_checksum

        tasks = _snapshot_tasks()
        inline = CampaignRunner(jobs=1).run(tasks)
        pooled = CampaignRunner(jobs=2).run(tasks)
        assert inline.n_failed == pooled.n_failed == 0
        for a, b in zip(inline.values(), pooled.values()):
            assert a["checksums"] == b["checksums"]
            for vm in a["images"]:
                assert isinstance(b["images"][vm], np.ndarray)
                assert np.array_equal(a["images"][vm], b["images"][vm])
                # the checksum computed in the worker matches the bytes
                # that crossed shared memory — zero-copy was lossless
                assert block_checksum(b["images"][vm]) == b["checksums"][vm]

    def test_store_persists_stub_not_bytes(self, tmp_path):
        tasks = _snapshot_tasks()[:1]
        store = ResultStore(tmp_path / "s")
        result = CampaignRunner(store=store, jobs=1).run(tasks)
        assert result.n_failed == 0
        # executed value carries the real array ...
        assert isinstance(result.values()[0]["images"]["0"], np.ndarray)
        # ... but the JSONL record holds only the summary stub
        rec = store.peek(tasks[0].key)
        assert STUB_KEY in rec["value"]["images"]["0"]
        text = (tmp_path / "s" / ResultStore.FILENAME).read_text()
        json.loads(text.strip())  # single valid JSON line

    def test_cached_hit_serves_stub_form(self, tmp_path):
        tasks = _snapshot_tasks()[:1]
        store = ResultStore(tmp_path / "s")
        CampaignRunner(store=store, jobs=1).run(tasks)
        warm = CampaignRunner(store=store, jobs=1).run(tasks)
        assert warm.n_cached == 1
        assert STUB_KEY in warm.values()[0]["images"]["0"]


# ---------------------------------------------------------------------------
# satellite bugfix: atomic write_report
# ---------------------------------------------------------------------------
class TestAtomicWriteReport:
    def test_partial_write_crash_preserves_previous_report(
        self, tmp_path, monkeypatch
    ):
        """A crash mid-write must leave the previous document intact.

        Pre-fix, ``write_report`` wrote the live report in place, so a
        partial write followed by a crash left a truncated JSON document
        — this test fails there.  Post-fix the partial write lands on a
        temp file and ``os.replace`` never runs, so the original bytes
        survive untouched.
        """
        from pathlib import Path

        store = ResultStore(tmp_path / "s")
        report = tmp_path / "report.json"
        store.write_report(report, "a", {"x": 1})
        before = report.read_text()

        def partial_write_text(self, text, *args, **kwargs):
            with open(self, "w", encoding="utf-8") as fh:
                fh.write(text[:7])  # a few bytes land ...
            raise OSError("disk full mid-write")  # ... then the disk fills

        monkeypatch.setattr(Path, "write_text", partial_write_text)
        with pytest.raises(OSError):
            store.write_report(report, "b", {"y": 2})
        monkeypatch.undo()
        assert report.read_text() == before
        assert json.loads(before) == {"a": {"x": 1}}

    def test_no_stale_tmp_after_success(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        report = tmp_path / "report.json"
        store.write_report(report, "a", {"x": 1})
        leftovers = [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []


# ---------------------------------------------------------------------------
# satellite bugfix: compaction dedups superseded keys (last wins)
# ---------------------------------------------------------------------------
class TestCompactionDedup:
    @staticmethod
    def _line(key: str, r: int) -> str:
        return json.dumps(
            {"key": key, "task": {"kind": "k", "params": {}}, "value": {"r": r},
             "elapsed": 0.0},
            sort_keys=True,
        )

    def test_duplicate_keys_compact_to_last_wins(self, tmp_path):
        """Pre-fix, compaction preserved every duplicate line verbatim;
        this asserts the rewritten file holds one line per key with the
        last occurrence's value — it fails on the pre-fix code."""
        root = tmp_path / "s"
        root.mkdir()
        path = root / ResultStore.FILENAME
        path.write_text(
            self._line("a", 1) + "\n"
            + self._line("b", 10) + "\n"
            + self._line("a", 2) + "\n",
            encoding="utf-8",
        )
        store = ResultStore(root)
        assert store.peek("a")["value"] == {"r": 2}  # last wins in memory
        lines = [ln for ln in path.read_text().splitlines() if ln.strip()]
        assert len(lines) == 2  # compacted: one line per key
        by_key = {json.loads(ln)["key"]: json.loads(ln) for ln in lines}
        assert by_key["a"]["value"] == {"r": 2}
        assert by_key["b"]["value"] == {"r": 10}
        # a reopened store agrees with the compacted file
        reopened = ResultStore(root)
        assert reopened.peek("a")["value"] == {"r": 2}
        assert len(reopened) == 2

    def test_corrupt_line_still_skipped_and_compacted(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        path = root / ResultStore.FILENAME
        path.write_text(
            self._line("a", 1) + "\n" + '{"key": "bro' + "\n"
            + self._line("a", 3) + "\n",
            encoding="utf-8",
        )
        with pytest.warns(RuntimeWarning):
            store = ResultStore(root)
        assert store.skipped_lines == 1
        assert store.peek("a")["value"] == {"r": 3}
        lines = [ln for ln in path.read_text().splitlines() if ln.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["value"] == {"r": 3}

    def test_clean_unique_file_left_untouched(self, tmp_path):
        root = tmp_path / "s"
        root.mkdir()
        path = root / ResultStore.FILENAME
        original = self._line("a", 1) + "\n" + self._line("b", 2) + "\n"
        path.write_text(original, encoding="utf-8")
        ResultStore(root)
        assert path.read_text() == original  # no dirt → no rewrite
