"""Edge-case tests: RAM-constrained nodes, cold restart, background
heal, CSV export, and network conservation properties."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, NodeError, VirtualCluster
from repro.core import dvdc
from repro.failures import FailureEvent, FailureInjector, FailureSchedule
from repro.model import fig5
from repro.sim import Simulator
from repro.workloads import CheckpointedJob, paper_scenario

from conftest import run_process


class TestRamConstrainedNodes:
    """The paper's memory-overhead story has teeth: diskless state must
    actually fit in node RAM (see repro.model.memory)."""

    def test_dvdc_fits_with_model_predicted_ram(self):
        # model says DVDC peak ~ 2.77x protected memory; give 3x -> fits
        sim = Simulator()
        cluster = VirtualCluster(
            sim, ClusterSpec(n_nodes=4, node_ram=3.0 * 3e9)
        )
        cluster.create_vms_balanced(12, 1e9)
        ck = dvdc(cluster)

        def proc():
            yield from ck.run_cycle()

        run_process(sim, proc())  # no NodeError
        for node in cluster.nodes:
            assert node.used_bytes <= node.ram_bytes

    def test_dvdc_overflows_tight_ram(self):
        # 1.5x is below the committed-checkpoint requirement -> NodeError
        sim = Simulator()
        cluster = VirtualCluster(
            sim, ClusterSpec(n_nodes=4, node_ram=1.5 * 3e9)
        )
        cluster.create_vms_balanced(12, 1e9)
        ck = dvdc(cluster)

        def proc():
            yield from ck.run_cycle()

        with pytest.raises(NodeError):
            run_process(sim, proc())

    def test_hosting_respects_ram(self):
        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=2, node_ram=2e9))
        cluster.create_vm(0, 1.5e9)
        with pytest.raises(NodeError):
            cluster.create_vm(0, 1e9)


class TestColdRestart:
    def test_failure_before_first_commit_restarts(self):
        """A crash during the very first checkpoint must not kill the
        job — there is nothing to lose yet; it restarts from zero."""
        sc = paper_scenario(seed=20)
        # diskful's initial cycle takes ~230 s; strike at t=50
        from repro.checkpoint import DiskfulCheckpointer

        inj = FailureInjector(
            sc.sim, 4, schedule=FailureSchedule(events=[FailureEvent(50.0, 1, 0)])
        )
        ck = DiskfulCheckpointer(sc.cluster)
        job = CheckpointedJob(sc.cluster, ck, work=1800.0, interval=600.0,
                              injector=inj, repair_time=30.0)
        inj.start()
        proc = job.start()
        sc.sim.run()
        if proc.ok is False:
            raise proc.value
        assert job.result.completed
        assert job.result.n_failures == 1
        # all VMs alive and hosted
        assert all(vm.node_id is not None for vm in sc.cluster.all_vms)

    def test_dvdc_cold_restart(self):
        sc = paper_scenario(seed=21)
        inj = FailureInjector(
            sc.sim, 4, schedule=FailureSchedule(events=[FailureEvent(5.0, 0, 0)])
        )
        ck = dvdc(sc.cluster)
        job = CheckpointedJob(sc.cluster, ck, work=900.0, interval=300.0,
                              injector=inj, repair_time=30.0)
        inj.start()
        proc = job.start()
        sc.sim.run()
        if proc.ok is False:
            raise proc.value
        assert job.result.completed


class TestBackgroundHeal:
    def test_heal_runs_after_recovery_without_waiting_for_checkpoint(self):
        from repro.core import validate_layout

        sc = paper_scenario(seed=22)
        inj = FailureInjector(
            sc.sim, 4,
            schedule=FailureSchedule(events=[FailureEvent(700.0, 2, 0)]),
        )
        ck = dvdc(sc.cluster)
        # long interval: without background heal the layout would stay
        # degraded for ~3600 s after the recovery
        job = CheckpointedJob(sc.cluster, ck, work=4 * 3600.0, interval=3600.0,
                              injector=inj, repair_time=30.0)
        inj.start()
        job.start()
        # run to shortly after recovery + repair + heal traffic
        sc.sim.run(until=1200.0)
        report = validate_layout(ck.layout, sc.cluster)
        assert report.ok, report.errors
        # parity blocks actually live where the layout says
        for g in ck.layout.groups:
            assert g.group_id in sc.cluster.node(g.parity_node).parity_store
        sc.sim.run()

    def test_heal_waits_out_active_cycle(self):
        """A repair landing mid-cycle defers healing (no concurrent
        mutation); the checkpoint phase picks it up."""
        sc = paper_scenario(seed=23)
        ck = dvdc(sc.cluster)

        def proc():
            yield from ck.run_cycle()
            sc.cluster.kill_node(1)
            yield from ck.recover(1)
            sc.cluster.repair_node(1)
            # direct heal here stands in for the runner's deferred path
            healed = yield from ck.heal()
            return healed

        healed = run_process(sc.sim, proc())
        assert healed


class TestFig5Csv:
    def test_csv_roundtrip(self, tmp_path):
        result = fig5()
        path = tmp_path / "fig5.csv"
        result.save_csv(path)
        lines = path.read_text().splitlines()
        assert lines[0] == "interval_seconds,diskless_ratio,diskful_ratio"
        # data rows parse as floats and dominate the file
        data = [ln for ln in lines[1:] if ln and not ln.startswith(("optimum", "diskless", "diskful"))]
        xs = [float(ln.split(",")[0]) for ln in data]
        assert xs == sorted(xs)
        assert any(ln.startswith("diskless") for ln in lines)

    def test_to_rows(self):
        s = fig5().diskless
        rows = s.to_rows()
        assert len(rows) == len(s.intervals)
        assert rows[0][0] == pytest.approx(float(s.intervals[0]))


class TestNetworkConservation:
    def test_bytes_delivered_equal_flow_sizes(self):
        """Property: completed flows deliver exactly their size —
        rate reallocations must not create or destroy bytes."""
        from repro.network import Network

        rng = np.random.default_rng(3)
        sim = Simulator()
        net = Network(sim)
        for i in range(4):
            net.add_link(f"l{i}", bandwidth=float(rng.integers(50, 200)))
        flows = []

        def starter():
            for k in range(30):
                yield sim.timeout(float(rng.random() * 2))
                path = [f"l{i}" for i in
                        rng.choice(4, size=rng.integers(1, 3), replace=False)]
                flows.append(net.start_flow(path, float(rng.integers(1, 500))))

        sim.process(starter())
        sim.run()
        for f in flows:
            assert f.ok
            assert f.transferred == pytest.approx(f.size, abs=1e-6)

    def test_flow_attributes(self):
        from repro.network import Network

        sim = Simulator()
        net = Network(sim)
        net.add_link("l", 100.0)
        f = net.start_flow(["l"], 100.0, label="x")
        assert f.active
        assert len(net.active_flows) in (0, 1)  # latency phase or active
        sim.run()
        assert not f.active
        assert net.active_flows == ()


class TestHeterogeneousVMs:
    """Mixed VM sizes within parity groups (padded XOR)."""

    def _mixed_cluster(self):
        from repro.cluster import xor_reduce_padded  # noqa: F401

        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=4))
        rng = np.random.default_rng(31)
        sizes = [(16, 1e9), (32, 2e9), (8, 0.5e9)]  # pages, logical bytes
        for node in range(4):
            for pages, mem in sizes:
                vm = cluster.create_vm(node, mem, image_pages=pages, page_size=64)
                vm.image.write(0, rng.integers(0, 256, vm.image.nbytes // 2,
                                               dtype=np.uint8))
                vm.image.clear_dirty()
        return sim, cluster, rng

    def test_padded_xor_roundtrip(self, rng):
        from repro.cluster import reconstruct_missing_padded, xor_reduce_padded

        members = [
            rng.integers(0, 256, n, dtype=np.uint8) for n in (100, 250, 40)
        ]
        parity = xor_reduce_padded(members)
        assert parity.shape[0] == 250
        for lost in range(3):
            survivors = [m for i, m in enumerate(members) if i != lost]
            got = reconstruct_missing_padded(
                survivors, parity, members[lost].shape[0]
            )
            assert np.array_equal(got, members[lost])

    def test_padded_validation(self, rng):
        from repro.cluster import reconstruct_missing_padded, xor_reduce_padded

        with pytest.raises(ValueError):
            xor_reduce_padded([])
        parity = xor_reduce_padded([np.zeros(10, np.uint8)])
        with pytest.raises(ValueError):
            reconstruct_missing_padded([np.zeros(20, np.uint8)], parity, 5)
        with pytest.raises(ValueError):
            reconstruct_missing_padded([], parity, 99)

    def test_mixed_size_cycle_and_recovery_bit_exact(self):
        sim, cluster, rng = self._mixed_cluster()
        ck = dvdc(cluster)

        def proc():
            yield from ck.run_cycle()
            committed = {
                vm.vm_id: cluster.hypervisor(vm.node_id).committed(vm.vm_id)
                .payload_flat().copy()
                for vm in cluster.all_vms
            }
            for vm in cluster.all_vms:
                vm.image.touch_pages(
                    rng.integers(0, vm.image.n_pages, 3), rng
                )
            cluster.kill_node(2)
            yield from ck.recover(2)
            return committed

        committed = run_process(sim, proc())
        for vm in cluster.all_vms:
            assert vm.state.value == "running"
            assert np.array_equal(vm.image.flat, committed[vm.vm_id]), (
                f"vm{vm.vm_id} ({vm.image.nbytes}B) not bit-exact"
            )

    def test_parity_sized_to_largest_member(self):
        sim, cluster, rng = self._mixed_cluster()
        ck = dvdc(cluster)

        def proc():
            yield from ck.run_cycle()

        run_process(sim, proc())
        for g in ck.layout.groups:
            block = cluster.node(g.parity_node).parity_store[g.group_id]
            largest = max(
                cluster.vm(v).image.nbytes for v in g.member_vm_ids
            )
            assert block.data.shape[0] == largest

    def test_incremental_heterogeneous_rejected_clearly(self):
        from repro.checkpoint import IncrementalCapture

        sim, cluster, rng = self._mixed_cluster()
        ck = dvdc(cluster, strategy=IncrementalCapture())

        def proc():
            yield from ck.run_cycle()  # epoch 0 full: fine
            for vm in cluster.all_vms:
                vm.image.touch_pages(np.array([0, 1]), rng)
            yield from ck.run_cycle()  # incremental: must fail clearly

        with pytest.raises(RuntimeError, match="homogeneous"):
            run_process(sim, proc())
