"""Tests for the Remus comparator and the adaptive interval policy."""

import math

import pytest

from repro.checkpoint import AdaptivePolicy, RemusModel, RemusPair
from repro.cluster import ClusterSpec, VirtualCluster
from repro.sim import Simulator


class TestRemusModel:
    def test_40hz_rate(self):
        assert RemusModel(epoch_length=25e-3).checkpoint_rate_hz == pytest.approx(40.0)

    def test_epoch_dirty_saturates(self):
        m = RemusModel(epoch_length=1.0)
        assert m.epoch_dirty_bytes(2e9, 1e9) == 1e9

    def test_overhead_fraction_grows_with_dirty_rate(self):
        m = RemusModel(epoch_length=25e-3, pause_fixed=5e-3, bandwidth=125e6)
        low = m.overhead_fraction(1e6, 1e9)
        high = m.overhead_fraction(500e6, 1e9)
        assert high > low
        # low rate: just the pause fraction
        assert low == pytest.approx(0.2)

    def test_backpressure_kicks_in_beyond_bandwidth(self):
        m = RemusModel(epoch_length=1.0, pause_fixed=0.0, bandwidth=100.0)
        assert m.overhead_fraction(50.0, 1e9) == 0.0
        assert m.overhead_fraction(200.0, 1e9) == pytest.approx(1.0)

    def test_speculation_loss(self):
        m = RemusModel(epoch_length=0.02)
        assert m.speculation_loss() == pytest.approx(0.03)

    def test_standby_memory_full_image(self):
        assert RemusModel().standby_memory_bytes(4e9) == 4e9

    def test_validation(self):
        with pytest.raises(ValueError):
            RemusModel(epoch_length=0.0)
        with pytest.raises(ValueError):
            RemusModel(pause_fixed=-1.0)
        with pytest.raises(ValueError):
            RemusModel(bandwidth=0.0)


class TestRemusPair:
    def _setup(self, dirty_rate=1e6):
        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=2))
        vm = cluster.create_vm(0, 1e9, dirty_rate=dirty_rate)
        pair = RemusPair(cluster, vm, standby_node_id=1,
                         model=RemusModel(epoch_length=0.1, pause_fixed=0.01))
        return sim, cluster, vm, pair

    def test_epochs_accumulate(self):
        sim, cluster, vm, pair = self._setup()
        proc = sim.process(pair.protect())
        sim.run(until=1.05)
        proc.interrupt()
        sim.run()
        assert pair.stats.epochs >= 8
        assert pair.stats.replicated_bytes > 0

    def test_failover_restores_on_standby(self):
        sim, cluster, vm, pair = self._setup()
        proc = sim.process(pair.protect())
        sim.run(until=0.55)
        cluster.kill_node(0)
        proc.interrupt()
        sim.run()
        lost = pair.failover()
        assert vm.node_id == 1
        assert vm.state.value == "running"
        assert lost >= 0.0
        assert pair.stats.failovers == 1

    def test_failover_requires_dead_active(self):
        sim, cluster, vm, pair = self._setup()
        with pytest.raises(RuntimeError):
            pair.failover()

    def test_standby_must_differ(self):
        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=2))
        vm = cluster.create_vm(0, 1e9)
        with pytest.raises(ValueError):
            RemusPair(cluster, vm, standby_node_id=0)


class TestAdaptivePolicy:
    def test_degenerates_to_young_with_constant_cost(self):
        lam = 1e-4
        cost = 10.0
        pol = AdaptivePolicy(lam, lambda dirty: cost, min_interval=0.0)
        t_star = pol.young_equivalent(cost)
        assert t_star == pytest.approx(math.sqrt(2 * cost / lam))
        # rule flips exactly at Young's interval
        assert not pol.should_checkpoint(t_star * 0.9, 0.0)
        assert pol.should_checkpoint(t_star * 1.1, 0.0)

    def test_growing_cost_delays_checkpoint(self):
        lam = 1e-4
        flat = AdaptivePolicy(lam, lambda d: 10.0, min_interval=0.0)
        rising = AdaptivePolicy(lam, lambda d: 10.0 + d / 1e6, min_interval=0.0)
        t_flat = flat.next_check_time(dirty_rate=1e6, resolution=1.0)
        t_rising = rising.next_check_time(dirty_rate=1e6, resolution=1.0)
        assert t_rising > t_flat

    def test_min_interval_floor(self):
        pol = AdaptivePolicy(1.0, lambda d: 0.0, min_interval=5.0)
        assert not pol.should_checkpoint(4.0, 0.0)
        assert pol.should_checkpoint(5.0, 0.0)

    def test_evaluate_decision_fields(self):
        pol = AdaptivePolicy(2e-4, lambda d: 7.0)
        d = pol.evaluate(100.0, 123.0)
        assert d.risk == pytest.approx(2e-4 * 100.0 * 100.0 / 2)
        assert d.cost == 7.0
        assert d.take == (d.risk >= d.cost)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptivePolicy(0.0, lambda d: 1.0)
        with pytest.raises(ValueError):
            AdaptivePolicy(1.0, lambda d: 1.0, min_interval=-1.0)
