"""Tests for the XOR and RDP erasure codecs — exhaustive erasure patterns."""

from itertools import combinations

import numpy as np
import pytest

from repro.core import ParityCodeError, RDPCode, XorCode, smallest_prime_at_least


def _members(rng, k, nbytes):
    return [rng.integers(0, 256, nbytes, dtype=np.uint8) for _ in range(k)]


class TestXorCode:
    def test_encode_is_xor(self, rng):
        members = _members(rng, 3, 100)
        [parity] = XorCode().encode(members)
        expected = members[0] ^ members[1] ^ members[2]
        assert np.array_equal(parity, expected)

    def test_any_single_member_recoverable(self, rng):
        members = _members(rng, 4, 257)
        code = XorCode()
        [parity] = code.encode(members)
        for lost in range(4):
            shards = [m if i != lost else None for i, m in enumerate(members)]
            out = code.reconstruct(shards, [parity])
            for got, want in zip(out, members):
                assert np.array_equal(got, want)

    def test_no_loss_passthrough_copies(self, rng):
        members = _members(rng, 2, 64)
        code = XorCode()
        [parity] = code.encode(members)
        out = code.reconstruct(members, [parity])
        assert np.array_equal(out[0], members[0])
        out[0][0] ^= 0xFF
        assert out[0][0] != members[0][0]  # copy, not view

    def test_two_missing_rejected(self, rng):
        members = _members(rng, 3, 64)
        code = XorCode()
        [parity] = code.encode(members)
        with pytest.raises(ParityCodeError):
            code.reconstruct([None, None, members[2]], [parity])

    def test_member_and_parity_missing_rejected(self, rng):
        members = _members(rng, 3, 64)
        code = XorCode()
        with pytest.raises(ParityCodeError):
            code.reconstruct([None, members[1], members[2]], [None])

    def test_unequal_lengths_rejected(self, rng):
        with pytest.raises(ParityCodeError):
            XorCode().encode([np.zeros(4, np.uint8), np.zeros(6, np.uint8)])

    def test_empty_rejected(self):
        with pytest.raises(ParityCodeError):
            XorCode().encode([])


class TestPrimes:
    @pytest.mark.parametrize(
        "n,expected", [(1, 2), (2, 2), (3, 3), (4, 5), (6, 7), (8, 11), (14, 17)]
    )
    def test_smallest_prime(self, n, expected):
        assert smallest_prime_at_least(n) == expected


class TestRDPCode:
    @pytest.mark.parametrize("k", [2, 3, 4, 6])
    @pytest.mark.parametrize("nbytes", [17, 96, 500])
    def test_all_single_and_double_erasures(self, rng, k, nbytes):
        code = RDPCode(k)
        members = _members(rng, k, nbytes)
        rp, dp = code.encode(members)
        shard_ids = list(range(k)) + ["rp", "dp"]
        patterns = [()] + [
            c for r in (1, 2) for c in combinations(shard_ids, r)
        ]
        for lost in patterns:
            ms = [None if i in lost else members[i] for i in range(k)]
            ps = [
                None if "rp" in lost else rp,
                None if "dp" in lost else dp,
            ]
            out = code.reconstruct(ms, ps, nbytes=nbytes)
            for got, want in zip(out, members):
                assert np.array_equal(got, want), f"k={k} lost={lost}"

    def test_triple_erasure_rejected(self, rng):
        code = RDPCode(4)
        members = _members(rng, 4, 64)
        rp, dp = code.encode(members)
        with pytest.raises(ParityCodeError):
            code.reconstruct([None, None, None, members[3]], [rp, dp])
        with pytest.raises(ParityCodeError):
            code.reconstruct([None, None] + members[2:], [rp, None])

    def test_explicit_prime(self, rng):
        code = RDPCode(3, p=7)
        members = _members(rng, 3, 100)
        rp, dp = code.encode(members)
        out = code.reconstruct([None, members[1], members[2]], [rp, dp])
        assert np.array_equal(out[0], members[0])

    def test_prime_too_small_rejected(self):
        with pytest.raises(ParityCodeError):
            RDPCode(4, p=3)

    def test_k_validation(self):
        with pytest.raises(ParityCodeError):
            RDPCode(0)

    def test_wrong_member_count_rejected(self, rng):
        code = RDPCode(3)
        with pytest.raises(ParityCodeError):
            code.encode(_members(rng, 2, 64))

    def test_parity_sizes_padded_stripe(self, rng):
        code = RDPCode(3)  # p=5, rows=4
        members = _members(rng, 3, 10)  # rowbytes=3 -> 12 padded
        rp, dp = code.encode(members)
        assert rp.shape[0] == 12
        assert dp.shape[0] == 12

    def test_nbytes_needed_when_no_survivor(self, rng):
        code = RDPCode(1)
        members = _members(rng, 1, 50)
        rp, dp = code.encode(members)
        with pytest.raises(ParityCodeError):
            code.reconstruct([None], [rp, dp])
        out = code.reconstruct([None], [rp, dp], nbytes=50)
        assert np.array_equal(out[0], members[0])

    def test_space_overhead_is_two_shards(self, rng):
        """RDP stores k data + 2 parity — the m=2 diskless configuration."""
        code = RDPCode(4)
        members = _members(rng, 4, 1000)
        parities = code.encode(members)
        assert len(parities) == 2

    def test_rdp_vs_xor_row_parity_identical(self, rng):
        """RDP's row parity equals plain XOR parity (same data layout)."""
        k, nbytes = 3, 96  # divisible by rows (p=5 -> rows=4): no padding
        members = _members(rng, k, nbytes)
        rp, _ = RDPCode(k).encode(members)
        [xp] = XorCode().encode(members)
        assert np.array_equal(rp[:nbytes], xp)
