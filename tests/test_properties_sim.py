"""Property-based tests for the simulation engine and network substrate.

These guard the foundations everything else stands on: event ordering,
process determinism, max-min allocation feasibility, and byte
conservation under randomized workloads.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import Network
from repro.sim import Simulator


class TestEngineOrdering:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=200,
        )
    )
    def test_execution_is_time_sorted(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.integers(min_value=0, max_value=2),
            ),
            min_size=1,
            max_size=100,
        )
    )
    def test_priority_within_timestamp(self, entries):
        sim = Simulator()
        fired = []
        for i, (t, prio) in enumerate(entries):
            sim.schedule(t, lambda t=t, p=prio, i=i: fired.append((sim.now, p, i)),
                         priority=prio)
        sim.run()
        # within equal time, priority nondecreasing; within equal
        # (time, priority), insertion order preserved
        for a, b in zip(fired, fired[1:]):
            assert a[0] <= b[0]
            if a[0] == b[0]:
                assert a[1] <= b[1]
                if a[1] == b[1]:
                    assert a[2] < b[2]

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=0, max_value=29),
    )
    def test_cancellation_removes_exactly_one(self, delays, cancel_idx):
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule(d, lambda k=k: fired.append(k))
            for k, d in enumerate(delays)
        ]
        cancel_idx = cancel_idx % len(handles)
        handles[cancel_idx].cancel()
        sim.run()
        assert cancel_idx not in fired
        assert len(fired) == len(delays) - 1


class TestProcessDeterminism:
    @given(st.integers(min_value=0, max_value=2**31), st.integers(2, 12))
    @settings(max_examples=25, deadline=None)
    def test_identical_runs_for_identical_seeds(self, seed, n_workers):
        def build():
            rng = np.random.default_rng(seed)
            sim = Simulator()
            log = []

            def worker(name):
                for _ in range(5):
                    yield sim.timeout(float(rng.random()))
                    log.append((round(sim.now, 9), name))

            for w in range(n_workers):
                sim.process(worker(w))
            sim.run()
            return log

        assert build() == build()


class TestNetworkProperties:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_allocation_never_oversubscribes_links(self, data):
        """At every reallocation instant, Σ flow rates on a link ≤ its
        bandwidth (progressive filling feasibility)."""
        sim = Simulator()
        net = Network(sim)
        n_links = data.draw(st.integers(1, 4))
        for i in range(n_links):
            net.add_link(f"l{i}", bandwidth=float(data.draw(st.integers(10, 500))))
        n_flows = data.draw(st.integers(1, 12))
        links = list(net.links.values())
        for k in range(n_flows):
            path_len = data.draw(st.integers(1, n_links))
            idx = data.draw(
                st.lists(st.integers(0, n_links - 1), min_size=path_len,
                         max_size=path_len, unique=True)
            )
            net.start_flow([links[i] for i in idx],
                           float(data.draw(st.integers(1, 1000))))
        # step through the run, checking feasibility after every event
        while sim.peek() != float("inf"):
            sim.step()
            for link in links:
                total = sum(f.rate for f in link.flows)
                assert total <= link.bandwidth * (1 + 1e-9)

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_all_flows_complete_and_conserve_bytes(self, data):
        sim = Simulator()
        net = Network(sim)
        for i in range(3):
            net.add_link(f"l{i}", bandwidth=float(data.draw(st.integers(10, 200))))
        flows = []
        sizes = data.draw(
            st.lists(st.integers(1, 500), min_size=1, max_size=10)
        )
        links = list(net.links.values())
        for s in sizes:
            k = data.draw(st.integers(0, 2))
            flows.append(net.start_flow([links[k]], float(s)))
        sim.run()
        for f, s in zip(flows, sizes):
            assert f.ok
            assert abs(f.transferred - s) < 1e-6
