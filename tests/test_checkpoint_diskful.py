"""Tests for the disk-full NAS baseline."""

import numpy as np
import pytest

from repro.checkpoint import DiskfulCheckpointer
from repro.cluster import VMState

from conftest import run_process


class TestCycle:
    def test_cycle_accounting(self, paper_cluster, sim):
        ck = DiskfulCheckpointer(paper_cluster)

        def proc():
            r = yield from ck.run_cycle()
            return r

        r = run_process(sim, proc())
        assert r.committed
        # 12 x 1 GB through 100 MB/s NAS ingress >= 120 s
        assert r.latency > 120.0
        assert r.network_bytes == pytest.approx(12e9)
        assert r.disk_bytes == pytest.approx(12e9)
        # overhead is only the barrier pause: 3 VMs/node x 40 ms
        assert r.overhead == pytest.approx(0.12)
        assert ck.committed_epoch == 0

    def test_nas_catalog_after_cycle(self, paper_cluster, sim):
        ck = DiskfulCheckpointer(paper_cluster)

        def proc():
            yield from ck.run_cycle()

        run_process(sim, proc())
        assert len(paper_cluster.nas) == 12
        assert paper_cluster.nas.contains("vm0/epoch0")

    def test_two_phase_keeps_previous_until_commit(self, paper_cluster, sim):
        ck = DiskfulCheckpointer(paper_cluster)

        def proc():
            yield from ck.run_cycle()
            yield from ck.run_cycle()

        run_process(sim, proc())
        # old generation dropped only after the new one committed
        assert not paper_cluster.nas.contains("vm0/epoch0")
        assert paper_cluster.nas.contains("vm0/epoch1")
        assert len(paper_cluster.nas) == 12

    def test_compression_reduces_traffic(self, paper_cluster, sim):
        from repro.checkpoint import CompressionModel

        ck = DiskfulCheckpointer(
            paper_cluster, compression=CompressionModel(ratio=0.5)
        )

        def proc():
            r = yield from ck.run_cycle()
            return r

        r = run_process(sim, proc())
        assert r.network_bytes == pytest.approx(6e9)


class TestRecovery:
    def test_recovery_restores_bit_exact(self, paper_cluster, sim):
        ck = DiskfulCheckpointer(paper_cluster)
        snapshots = {}

        def proc():
            yield from ck.run_cycle()
            for vm in paper_cluster.all_vms:
                snapshots[vm.vm_id] = vm.image.snapshot()
                vm.image.write(0, b"work after the checkpoint")
            paper_cluster.kill_node(1)
            rep = yield from ck.recover(1)
            return rep

        rep = run_process(sim, proc())
        assert sorted(rep.restored_vms) == [1, 5, 9]
        assert len(rep.rolled_back_vms) == 9
        assert rep.bytes_read == pytest.approx(12e9)
        for vm in paper_cluster.all_vms:
            assert vm.state == VMState.RUNNING
            assert np.array_equal(vm.image.flat, snapshots[vm.vm_id])

    def test_recover_without_checkpoint_raises(self, paper_cluster, sim):
        ck = DiskfulCheckpointer(paper_cluster)
        paper_cluster.kill_node(0)

        def proc():
            yield from ck.recover(0)

        with pytest.raises(RuntimeError):
            run_process(sim, proc())

    def test_failed_vms_spread_across_survivors(self, paper_cluster, sim):
        ck = DiskfulCheckpointer(paper_cluster)

        def proc():
            yield from ck.run_cycle()
            paper_cluster.kill_node(0)
            rep = yield from ck.recover(0)
            return rep

        run_process(sim, proc())
        placements = [
            paper_cluster.vm(v).node_id for v in (0, 4, 8)
        ]
        assert all(p != 0 for p in placements)
        assert len(set(placements)) == 3  # round-robin spread

    def test_heal_is_noop(self, paper_cluster, sim):
        ck = DiskfulCheckpointer(paper_cluster)

        def proc():
            r = yield from ck.heal()
            return r

        assert run_process(sim, proc()) == []
