"""Serving determinism: chunking is a batch-size knob, nothing more.

The ISSUE's hard contract: arrival generation and the full serving
sweep are *bit-identical* under any ``chunk_requests``, across repeated
runs, and across campaign worker fan-out.  A golden file
(``tests/golden/serving.json``) pins the digests of a fixed crashy
checkpoint-protected cell so any engine change that moves a single
completion byte fails here with the digest that moved.

Regenerate after an *intentional* behavior change with::

    PYTHONPATH=src python tests/test_serving_determinism.py --regen
"""

from __future__ import annotations

import json
import sys
from dataclasses import asdict
from pathlib import Path

import numpy as np
import pytest

from repro.serving import (
    ArrivalConfig,
    OpenLoopArrivals,
    ServingLoad,
    ServingPolicy,
    run_serving_cell,
)
from repro.serving.arrivals import stream_digest
from repro.sim import RngRegistry

GOLDEN_PATH = Path(__file__).parent / "golden" / "serving.json"

#: The pinned cell: crash injection ON, checkpoint pauses ON — the
#: digest covers sheds, redirects, stalls, and recovery reroutes.
GOLDEN_LOAD = ServingLoad(n_requests=6000, node_mtbf=60.0)
GOLDEN_POLICIES = (
    ServingPolicy("baseline"),
    ServingPolicy("checkpoint", checkpoint=True, interval=1.0),
    ServingPolicy("clone2", clone=2),
)
GOLDEN_SEED = 0

_CELL_KEYS = ("digest", "offered", "completed", "lost", "lost_unrouted")


def _golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


def _cell_pin(policy: ServingPolicy) -> dict:
    rep = run_serving_cell(policy, GOLDEN_LOAD, GOLDEN_SEED)
    pin = {k: rep[k] for k in _CELL_KEYS}
    pin["p50"] = rep["latency"]["p50"]
    pin["p99"] = rep["latency"]["p99"]
    return pin


def _generate_golden() -> dict:
    cfg = ArrivalConfig(n_requests=100_000)
    return {
        "_regen": "PYTHONPATH=src python tests/test_serving_determinism.py --regen",
        "load": asdict(GOLDEN_LOAD),
        "seed": GOLDEN_SEED,
        "stream_digest": stream_digest(
            OpenLoopArrivals(cfg, RngRegistry(GOLDEN_SEED))
        ),
        "cells": {p.name: _cell_pin(p) for p in GOLDEN_POLICIES},
    }


# ---------------------------------------------------------------------------
# arrival-stream chunk invariance
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("chunk", [1, 7, 256, 4096, 100_000])
def test_stream_digest_is_chunk_invariant(chunk):
    cfg = ArrivalConfig(n_requests=10_000, chunk_requests=chunk)
    mono = ArrivalConfig(n_requests=10_000, chunk_requests=10_000)
    assert stream_digest(
        OpenLoopArrivals(cfg, RngRegistry(42))
    ) == stream_digest(OpenLoopArrivals(mono, RngRegistry(42)))


def test_stream_values_are_chunk_invariant_not_just_digests():
    """The arrays themselves match element-wise, including the carry
    across every chunk boundary (IEEE-754 partial sums)."""
    def arrays(chunk):
        cfg = ArrivalConfig(n_requests=10_000, chunk_requests=chunk)
        chunks = list(OpenLoopArrivals(cfg, RngRegistry(9)).chunks())
        return (
            np.concatenate([c.times for c in chunks]),
            np.concatenate([c.service for c in chunks]),
        )

    t_small, s_small = arrays(113)
    t_mono, s_mono = arrays(10_000)
    np.testing.assert_array_equal(t_small, t_mono)
    np.testing.assert_array_equal(s_small, s_mono)


def test_stream_replay_is_exact():
    """Same registry seed + prefix => the identical trace, which is how
    paired-study policies share one arrival stream."""
    cfg = ArrivalConfig(n_requests=5000)
    a = stream_digest(OpenLoopArrivals(cfg, RngRegistry(3)))
    b = stream_digest(OpenLoopArrivals(cfg, RngRegistry(3)))
    assert a == b


# ---------------------------------------------------------------------------
# full-cell chunk invariance (the engine sweep contract)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("policy", GOLDEN_POLICIES, ids=lambda p: p.name)
def test_cell_report_is_chunk_invariant(policy):
    """The *entire report* — digest, counts, exact quantiles, degraded
    attribution — is identical under wildly different chunkings."""
    def run(chunk):
        load = ServingLoad(
            n_requests=6000, node_mtbf=60.0, chunk_requests=chunk
        )
        return run_serving_cell(policy, load, GOLDEN_SEED)

    reports = [run(c) for c in (251, 2048, 6000)]
    assert reports[0] == reports[1] == reports[2]


# ---------------------------------------------------------------------------
# pinned golden digests
# ---------------------------------------------------------------------------
def test_golden_file_matches_config():
    assert _golden()["load"] == asdict(GOLDEN_LOAD)
    assert _golden()["seed"] == GOLDEN_SEED


def test_stream_digest_matches_golden():
    cfg = ArrivalConfig(n_requests=100_000)
    assert stream_digest(
        OpenLoopArrivals(cfg, RngRegistry(GOLDEN_SEED))
    ) == _golden()["stream_digest"]


@pytest.mark.parametrize("policy", GOLDEN_POLICIES, ids=lambda p: p.name)
def test_cell_matches_golden(policy):
    assert _cell_pin(policy) == _golden()["cells"][policy.name]


# ---------------------------------------------------------------------------
# campaign --jobs byte-stability
# ---------------------------------------------------------------------------
def _campaign_values(jobs: int) -> list[dict]:
    from repro.campaign import CampaignRunner, Task

    tasks = [
        Task(
            kind="serving_cell",
            params={
                "policy": asdict(p),
                "load": asdict(ServingLoad(n_requests=3000, node_mtbf=60.0)),
                "trace_seed": seed,
            },
        )
        for p in GOLDEN_POLICIES
        for seed in (0, 1)
    ]
    result = CampaignRunner(jobs=jobs).run(tasks)
    assert result.n_failed == 0, [r.error for r in result.failures()]
    return [run.value for run in result.runs]


def test_campaign_jobs_1_vs_4_byte_stable():
    """Worker fan-out must not perturb a single serving byte."""
    assert _campaign_values(jobs=1) == _campaign_values(jobs=4)


if __name__ == "__main__":
    if "--regen" not in sys.argv:
        sys.exit("usage: python tests/test_serving_determinism.py --regen")
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(_generate_golden(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}")
