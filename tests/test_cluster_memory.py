"""Tests for page-granular memory images and deltas."""

import numpy as np
import pytest

from repro.cluster import DEFAULT_PAGE_SIZE, MemoryImage, PageDelta


class TestGeometry:
    def test_default_page_size(self):
        img = MemoryImage(4)
        assert img.page_size == DEFAULT_PAGE_SIZE
        assert img.nbytes == 4 * DEFAULT_PAGE_SIZE

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryImage(0)
        with pytest.raises(ValueError):
            MemoryImage(4, page_size=0)

    def test_views_share_storage(self):
        img = MemoryImage(4, page_size=16)
        img.pages[2, 3] = 99
        assert img.flat[2 * 16 + 3] == 99

    def test_fill(self):
        img = MemoryImage(2, page_size=8, fill=0xAB)
        assert (img.flat == 0xAB).all()


class TestWrites:
    def test_write_marks_touched_pages_only(self):
        img = MemoryImage(8, page_size=16)
        img.write(20, b"hello")  # bytes 20..24, page 1 only
        assert list(img.dirty_page_indices) == [1]

    def test_write_spanning_pages(self):
        img = MemoryImage(8, page_size=16)
        img.write(14, b"spanning!")  # pages 0 and 1
        assert list(img.dirty_page_indices) == [0, 1]

    def test_write_bounds_checked(self):
        img = MemoryImage(2, page_size=16)
        with pytest.raises(IndexError):
            img.write(30, b"toolongfortheimg")
        with pytest.raises(IndexError):
            img.write(-1, b"x")

    def test_read_back(self):
        img = MemoryImage(2, page_size=16)
        img.write(5, b"abc")
        assert bytes(img.read(5, 3)) == b"abc"
        with pytest.raises(IndexError):
            img.read(30, 10)

    def test_fill_page(self):
        img = MemoryImage(4, page_size=8)
        img.fill_page(2, 7)
        assert (img.pages[2] == 7).all()
        assert list(img.dirty_page_indices) == [2]

    def test_touch_pages(self, rng):
        img = MemoryImage(16, page_size=32)
        img.touch_pages(np.array([3, 7, 3]), rng)
        assert set(img.dirty_page_indices) == {3, 7}
        with pytest.raises(IndexError):
            img.touch_pages(np.array([99]))

    def test_touch_empty_noop(self, rng):
        img = MemoryImage(4, page_size=8)
        img.touch_pages(np.array([], dtype=np.int64))
        assert img.dirty_page_count == 0


class TestDirtyTracking:
    def test_counters(self):
        img = MemoryImage(8, page_size=16)
        img.write(0, b"x")
        img.write(100, b"y")
        assert img.dirty_page_count == 2
        assert img.dirty_bytes == 32

    def test_clear(self):
        img = MemoryImage(4, page_size=8)
        img.write(0, b"x")
        img.clear_dirty()
        assert img.dirty_page_count == 0

    def test_mark_all(self):
        img = MemoryImage(4, page_size=8)
        img.mark_all_dirty()
        assert img.dirty_page_count == 4


class TestCapture:
    def test_snapshot_is_copy(self):
        img = MemoryImage(2, page_size=8)
        snap = img.snapshot()
        img.write(0, b"zz")
        assert snap[0] == 0

    def test_capture_delta_roundtrip(self):
        img = MemoryImage(8, page_size=16)
        base = img.snapshot()
        img.write(17, b"delta-bytes")
        img.write(100, b"more")
        delta = img.capture_delta()
        assert img.dirty_page_count == 0  # cleared
        # apply delta onto the base -> equals current state
        restored = base.copy()
        delta.apply_to(restored)
        assert np.array_equal(restored, img.flat)

    def test_capture_delta_no_clear(self):
        img = MemoryImage(4, page_size=8)
        img.write(0, b"x")
        img.capture_delta(clear=False)
        assert img.dirty_page_count == 1

    def test_delta_nbytes(self):
        img = MemoryImage(8, page_size=16)
        img.write(0, b"a")
        img.write(33, b"b")
        delta = img.capture_delta()
        assert delta.n_pages == 2
        assert delta.nbytes == 32

    def test_delta_geometry_validation(self):
        with pytest.raises(ValueError):
            PageDelta(
                page_size=8,
                n_pages_total=4,
                indices=np.array([0, 1]),
                pages=np.zeros((3, 8), dtype=np.uint8),
            )

    def test_restore(self):
        img = MemoryImage(4, page_size=8)
        img.write(0, b"original")
        snap = img.snapshot()
        img.write(0, b"mutated!")
        img.restore(snap)
        assert bytes(img.read(0, 8)) == b"original"
        assert img.dirty_page_count == 0

    def test_restore_wrong_size_rejected(self):
        img = MemoryImage(4, page_size=8)
        with pytest.raises(ValueError):
            img.restore(np.zeros(10, dtype=np.uint8))

    def test_apply_delta_mismatched_geometry(self):
        img = MemoryImage(4, page_size=8)
        other = MemoryImage(8, page_size=8)
        other.write(0, b"x")
        delta = other.capture_delta()
        with pytest.raises(ValueError):
            img.apply_delta(delta)

    def test_apply_delta_clears_those_dirty_bits(self):
        a = MemoryImage(4, page_size=8)
        a.write(0, b"x")
        delta = a.capture_delta()
        b = MemoryImage(4, page_size=8)
        b.write(0, b"y")
        b.write(17, b"z")
        b.apply_delta(delta)
        assert list(b.dirty_page_indices) == [2]

    def test_equals(self):
        a = MemoryImage(2, page_size=8)
        b = MemoryImage(2, page_size=8)
        assert a.equals(b)
        a.write(0, b"x")
        assert not a.equals(b)
        assert not a.equals(MemoryImage(3, page_size=8))
