"""Retry/backoff transfer policies: budgets, jitter, classification."""

import numpy as np
import pytest

from repro.network import Network, NetworkError
from repro.network.link import TransientNetworkError
from repro.resilience import DEFAULT_RETRY, RetryExhausted, RetryPolicy, retrying_transfer
from repro.telemetry import Probe

from conftest import run_process


def _counter(probe, name):
    snap = probe.metrics.snapshot()
    fam = snap.get(name)
    if fam is None:
        return 0.0
    return sum(s["value"] for s in fam["series"])


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(attempt_timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=-1.0)

    def test_backoff_grows_geometrically_to_cap(self):
        p = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
        assert p.backoff_delay(1) == pytest.approx(0.1)
        assert p.backoff_delay(2) == pytest.approx(0.2)
        assert p.backoff_delay(3) == pytest.approx(0.4)
        assert p.backoff_delay(4) == pytest.approx(0.5)  # capped
        assert p.backoff_delay(10) == pytest.approx(0.5)

    def test_jitter_spreads_within_band_and_is_seeded(self):
        p = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0, jitter=0.5)
        rng = np.random.default_rng(7)
        draws = [p.backoff_delay(1, rng) for _ in range(50)]
        assert all(0.5 <= d <= 1.5 for d in draws)
        assert len(set(draws)) > 1  # actually jittered
        rng2 = np.random.default_rng(7)
        again = [p.backoff_delay(1, rng2) for _ in range(50)]
        assert draws == again  # deterministic in the rng

    def test_no_rng_means_midpoint(self):
        p = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0, jitter=0.5)
        assert p.backoff_delay(1) == pytest.approx(1.0)

    def test_exhausted_is_network_error_but_not_transient(self):
        exc = RetryExhausted("x", 3, None)
        assert isinstance(exc, NetworkError)
        assert not isinstance(exc, TransientNetworkError)


class TestRetryingTransfer:
    def _net(self, sim):
        net = Network(sim)
        net.add_link("l", bandwidth=100.0)
        return net

    def test_clean_transfer_is_single_attempt(self, sim):
        net = self._net(sim)
        calls = []

        def make_flow():
            calls.append(sim.now)
            return net.start_flow(["l"], 100.0)

        def driver():
            flow = yield from retrying_transfer(sim, make_flow, DEFAULT_RETRY)
            return flow

        flow = run_process(sim, driver())
        assert flow.ok and len(calls) == 1

    def test_recovers_after_transient_aborts(self, sim):
        net = self._net(sim)
        probe = Probe()
        flows = []

        def make_flow():
            flow = net.start_flow(["l"], 100.0)
            flows.append(flow)
            if len(flows) <= 2:  # first two attempts are doomed
                sim.schedule(0.1, flow.abort, "blip", True)
            return flow

        policy = RetryPolicy(max_attempts=5, base_delay=0.05, jitter=0.0)

        def driver():
            return (yield from retrying_transfer(
                sim, make_flow, policy, probe=probe
            ))

        flow = run_process(sim, driver())
        assert flow is flows[2] and flow.ok
        assert _counter(probe, "repro_resilience_retries_total") == 2
        assert _counter(probe, "repro_resilience_recovered_transfers_total") == 1

    def test_budget_exhaustion_raises_classified_error(self, sim):
        net = self._net(sim)
        probe = Probe()

        def make_flow():
            flow = net.start_flow(["l"], 100.0)
            sim.schedule(0.05, flow.abort, "blip", True)
            return flow

        policy = RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0)

        def driver():
            yield from retrying_transfer(sim, make_flow, policy, label="doomed")

        with pytest.raises(RetryExhausted) as err:
            run_process(sim, driver())
        assert err.value.attempts == 3
        assert "doomed" in str(err.value)
        assert _counter(probe, "repro_resilience_retry_exhausted_total") == 0
        # (probe wasn't passed above; now verify the counter fires when it is)
        sim2 = type(sim)()
        net2 = Network(sim2)
        net2.add_link("l", bandwidth=100.0)

        def make_flow2():
            flow = net2.start_flow(["l"], 100.0)
            sim2.schedule(0.05, flow.abort, "blip", True)
            return flow

        def driver2():
            yield from retrying_transfer(sim2, make_flow2, policy, probe=probe)

        proc = sim2.process(driver2())
        sim2.run()
        assert proc.ok is False and isinstance(proc.value, RetryExhausted)
        assert _counter(probe, "repro_resilience_retry_exhausted_total") == 1

    def test_fatal_abort_passes_straight_through(self, sim):
        net = self._net(sim)
        attempts = []

        def make_flow():
            flow = net.start_flow(["l"], 100.0)
            attempts.append(flow)
            sim.schedule(0.05, flow.abort, "node crashed", False)
            return flow

        def driver():
            yield from retrying_transfer(sim, make_flow, DEFAULT_RETRY)

        with pytest.raises(NetworkError, match="node crashed"):
            run_process(sim, driver())
        assert len(attempts) == 1  # no retry of a fatal failure

    def test_deadline_stops_before_attempt_budget(self, sim):
        net = self._net(sim)

        def make_flow():
            flow = net.start_flow(["l"], 100.0)
            sim.schedule(0.5, flow.abort, "blip", True)
            return flow

        policy = RetryPolicy(
            max_attempts=100, base_delay=1.0, multiplier=1.0,
            max_delay=1.0, jitter=0.0, deadline=2.0,
        )

        def driver():
            yield from retrying_transfer(sim, make_flow, policy)

        with pytest.raises(RetryExhausted):
            run_process(sim, driver())
        assert sim.now < 3.0  # gave up near the deadline, not after 100 tries

    def test_attempt_timeout_escapes_stragglers(self, sim):
        net = self._net(sim)
        net.add_link("slow", bandwidth=1.0)
        probe = Probe()
        attempts = []

        def make_flow():
            # first attempt crawls on the slow link; the retry takes the
            # fast one (the straggling path recovered)
            link = "slow" if not attempts else "l"
            flow = net.start_flow([link], 100.0)
            attempts.append(flow)
            return flow

        policy = RetryPolicy(
            max_attempts=3, base_delay=0.01, jitter=0.0, attempt_timeout=5.0
        )

        def driver():
            return (yield from retrying_transfer(
                sim, make_flow, policy, probe=probe
            ))

        flow = run_process(sim, driver())
        assert flow is attempts[1] and flow.ok
        assert sim.now < 100.0  # did not wait out the straggler
        assert _counter(probe, "repro_resilience_attempt_timeouts_total") == 1

    def test_timeout_guard_cancelled_on_success(self, sim):
        net = self._net(sim)
        policy = RetryPolicy(attempt_timeout=100.0)

        def driver():
            return (yield from retrying_transfer(
                sim, lambda: net.start_flow(["l"], 100.0), policy
            ))

        flow = run_process(sim, driver())
        assert flow.ok
        assert sim.now == pytest.approx(1.0)  # no stray 100 s event ran
