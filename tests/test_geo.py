"""Multi-site georedundancy: topology, placement policies, correlated
failures, the cordon-composition fix, and the survival-matrix acceptance
criterion (geo-spread and remus-async outlive a full-site outage that
local-parity loses)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, VirtualCluster
from repro.core import validate_layout
from repro.core.architectures import dvdc
from repro.failures import FailureDomainMap
from repro.geo import (
    GeoConfig,
    GeoSpec,
    GeoTopology,
    RemusAsyncReplicator,
    geo_cluster_spec,
    run_geo_point,
    run_geo_study,
)
from repro.model import (
    estimate_geo_window_loss,
    geo_window_loss_probability,
    window_loss_probability,
    worst_domain_cost,
)
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# hierarchy + topology
# ---------------------------------------------------------------------------
class TestGeoSpec:
    def test_levels_nest(self):
        geo = GeoSpec(n_nodes=12, n_sites=3, racks_per_site=2)
        for n in range(12):
            assert geo.site_of(n) == n // 4
            assert geo.rack_of(n) // 2 == geo.site_of(n)
        assert geo.n_racks == 6
        assert geo.domain_map("site").n_domains == 3
        assert geo.domain_map("node").n_domains == 12

    def test_uneven_partition_covers_all_nodes(self):
        geo = GeoSpec(n_nodes=10, n_sites=3)
        sizes = [len(geo.nodes_in_site(s)) for s in range(3)]
        assert sum(sizes) == 10 and max(sizes) - min(sizes) <= 1

    def test_cross_site_path_rides_wan(self):
        sim = Simulator()
        geo = GeoSpec(n_nodes=8, n_sites=2)
        topo = GeoTopology(sim, geo)
        names = [l.name for l in topo.node_to_node(0, 5)]
        assert names == ["node0.tx", "site0.wan.tx", "site1.wan.rx", "node5.rx"]
        local = [l.name for l in topo.node_to_node(0, 1)]
        assert local == ["node0.tx", "node1.rx"]

    def test_wan_bytes_accounting(self):
        sim = Simulator()
        geo = GeoSpec(n_nodes=8, n_sites=2, wan_latency=0.0)
        topo = GeoTopology(sim, geo, node_bandwidth=1e12, latency=0.0)

        def go():
            yield topo.transfer(0, 5, 1e6, label="x")
            yield topo.transfer(0, 1, 1e6, label="local")

        sim.process(go())
        sim.run()
        assert topo.wan_bytes == 1e6  # local transfer never counted


# ---------------------------------------------------------------------------
# domain-constrained placement
# ---------------------------------------------------------------------------
class TestGeoSpreadLayout:
    def test_groups_are_site_orthogonal(self):
        from repro.geo.study import build_geo_scenario

        cfg = GeoConfig(n_nodes=12, n_sites=3, policy="geo-spread")
        _sim, cluster, ck, _r, geo, _rng, _t = build_geo_scenario(cfg)
        domains = geo.domain_map("site")
        assert worst_domain_cost(ck.layout, cluster, domains) == 1
        report = validate_layout(
            ck.layout, cluster, tolerance=ck.scheme.tolerance, domains=domains
        )
        assert report.errors == []

    def test_local_parity_stacks_domains(self):
        from repro.geo.study import build_geo_scenario

        cfg = GeoConfig(n_nodes=12, n_sites=3, policy="local-parity")
        _sim, cluster, ck, _r, geo, _rng, _t = build_geo_scenario(cfg)
        assert worst_domain_cost(
            ck.layout, cluster, geo.domain_map("site")
        ) > ck.scheme.tolerance


# ---------------------------------------------------------------------------
# the survival matrix (acceptance criterion)
# ---------------------------------------------------------------------------
class TestSurvivalMatrix:
    def test_policy_matrix_under_full_site_outage(self):
        cfg = GeoConfig(n_nodes=12, n_sites=3, epochs=2, kill_site=-1)
        study = run_geo_study(cfg, seeds=(0, 1))
        s = study["summary"]
        # local-parity loses the site outage every time
        assert s["local-parity"]["survived"] == 0
        assert s["local-parity"]["data_lost"] == 2
        # geo-spread absorbs it within coding tolerance
        assert s["geo-spread"]["survived"] == 2
        assert s["geo-spread"]["beyond_tolerance"] == 0
        # remus-async is beyond local tolerance but salvages remotely,
        # paying exactly its replication lag window
        assert s["remus-async"]["survived"] == 2
        assert s["remus-async"]["beyond_tolerance"] == 2
        assert s["remus-async"]["mean_rollback_epochs"] == 1.0

    def test_remus_lag_window_scales_rollback(self):
        r = run_geo_point(GeoConfig(
            n_nodes=12, n_sites=3, policy="remus-async", epochs=3,
            kill_site=-1, lag_epochs=2,
        ))
        assert r["survived"] and r["rollback_epochs"] == 2

    def test_remus_fully_caught_up_loses_nothing(self):
        r = run_geo_point(GeoConfig(
            n_nodes=12, n_sites=3, policy="remus-async", epochs=2,
            kill_site=-1, lag_epochs=0,
        ))
        assert r["survived"] and r["rollback_epochs"] == 0

    def test_post_disaster_strict_audit_is_domain_aware(self):
        r = run_geo_point(GeoConfig(
            n_nodes=12, n_sites=3, policy="geo-spread", epochs=2, kill_site=0,
        ))
        assert r["strict_audit_ok"], r["audit_violations"]


# ---------------------------------------------------------------------------
# cordon composition (the bug fix): recovery placement must honor
# control-plane cordons when the candidate pool is domain-constrained
# ---------------------------------------------------------------------------
def _cordon_cluster():
    """6 nodes in 3 two-node sites; one group: members on nodes 0 and 2,
    parity forced into site 2 by the domain constraint."""
    sim = Simulator()
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=6))
    rng = np.random.default_rng(7)
    for node in (0, 2):
        vm = cluster.create_vm(node, 64e6, image_pages=8, page_size=64)
        vm.image.write(0, rng.integers(0, 256, 256, dtype=np.uint8))
        vm.image.clear_dirty()
    domains = FailureDomainMap([0, 0, 1, 1, 2, 2])
    ck = dvdc(cluster, group_size=2, domains=domains)
    return sim, cluster, ck, domains


class TestCordonComposition:
    def test_parity_rehome_respects_cordons(self):
        """Regression: with both site-2 nodes cordoned (rolling drain),
        the domain-preferred parity chooser must NOT place parity on the
        cordoned buddy — pre-fix it did, because recovery exclusion sets
        ignored the control plane's cordon callable."""
        sim, cluster, ck, domains = _cordon_cluster()
        proc = sim.process(ck.run_cycle())
        sim.run()
        assert proc.ok and proc.value.committed
        group = ck.layout.groups[0]
        p = group.parity_nodes[0]
        assert domains.domain_of(p) == 2  # the only member-free site
        buddy = 4 if p == 5 else 5
        cordoned = {p, buddy}
        ck.cordons = lambda: cordoned
        cluster.kill_node(p)
        rec = sim.process(ck.recover(p))
        sim.run()
        assert rec.ok, rec.value
        new_p = ck.layout.groups[0].parity_nodes[0]
        assert new_p not in cordoned, (
            f"parity re-homed onto cordoned node {new_p}"
        )

    def test_without_cordons_buddy_is_preferred(self):
        """The pre-fix behavior, pinned: absent cordons the domain tier
        rightly prefers the dead parity's site buddy."""
        sim, cluster, ck, domains = _cordon_cluster()
        proc = sim.process(ck.run_cycle())
        sim.run()
        assert proc.ok
        group = ck.layout.groups[0]
        p = group.parity_nodes[0]
        buddy = 4 if p == 5 else 5
        cluster.kill_node(p)
        rec = sim.process(ck.recover(p))
        sim.run()
        assert rec.ok, rec.value
        assert ck.layout.groups[0].parity_nodes[0] == buddy

    def test_controlplane_wires_cordons(self):
        from repro.controlplane import ControlPlane, ControlPlaneConfig

        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=6))
        rng = np.random.default_rng(1)
        for node in range(6):
            vm = cluster.create_vm(node, 64e6, image_pages=8, page_size=64)
            vm.image.write(0, rng.integers(0, 256, 256, dtype=np.uint8))
            vm.image.clear_dirty()
        ck = dvdc(cluster, group_size=3)
        cp = ControlPlane(cluster, ck, config=ControlPlaneConfig())
        assert ck.cordons is not None and ck.cordons() == set()
        cp.maintenance.add(4)
        cp.fenced.add(1)
        assert ck.cordons() == {1, 4}
        cp.maintenance.clear()
        assert ck.cordons() == {1}


# ---------------------------------------------------------------------------
# geo fuzzing: site kills + tolerance-aware classification
# ---------------------------------------------------------------------------
class TestGeoFuzz:
    def _config(self, policy: str, **kw):
        from repro.audit.fuzzer import FuzzConfig

        return FuzzConfig(
            layout="fig4", n_nodes=6, vms_per_node=2, n_cycles=2,
            geo_sites=3, geo_policy=policy, **kw,
        )

    def test_site_fault_kills_the_whole_site(self):
        from repro.audit.fuzzer import FaultSpec, run_trial

        schedule = (FaultSpec(cycle=0, phase="idle", node=0, frac=0.5,
                              kind="site"),)
        trial = run_trial(self._config("geo-spread"), schedule, seed=0)
        assert not trial.failed, [str(v) for v in trial.violations]
        killed = {e.node_id for e in trial.faults_fired}
        assert killed == {0, 1}  # both nodes of site 0, nothing else

    def test_geo_schedules_draw_site_faults(self):
        from repro.audit.fuzzer import draw_schedule

        cfg = self._config("geo-spread", max_faults=3)
        kinds = set()
        for seed in range(30):
            for f in draw_schedule(np.random.default_rng([seed, 0x5C]), cfg):
                kinds.add(f.kind)
        assert "site" in kinds and "kill" in kinds

    def test_double_site_loss_is_fate_not_bug(self):
        """Two whole sites gone exceeds every policy's cover — the trial
        must classify it unrecoverable, never as a protocol bug."""
        from repro.audit.fuzzer import FaultSpec, run_trial

        schedule = (
            FaultSpec(cycle=0, phase="post_commit", node=0, frac=0.5,
                      kind="site"),
            FaultSpec(cycle=0, phase="post_commit", node=2, frac=0.6,
                      kind="site"),
        )
        for policy in ("geo-spread", "remus-async"):
            trial = run_trial(self._config(policy), schedule, seed=1)
            assert trial.unrecoverable, policy
            assert not trial.failed, [str(v) for v in trial.violations]

    def test_remus_salvages_single_site_loss(self):
        from repro.audit.fuzzer import FaultSpec, run_trial

        schedule = (FaultSpec(cycle=0, phase="post_commit", node=0, frac=0.5,
                              kind="site"),)
        trial = run_trial(self._config("remus-async"), schedule, seed=2)
        assert not trial.failed, [str(v) for v in trial.violations]
        assert not trial.unrecoverable
        assert trial.recoveries >= 1

    @pytest.mark.parametrize("policy", ["geo-spread", "remus-async"])
    def test_fuzz_batch_clean(self, policy):
        from repro.audit.fuzzer import fuzz

        result = fuzz(self._config(policy), seeds=6)
        assert result.ok, [
            [str(v) for v in t.violations[:2]] for t in result.failures
        ]


# ---------------------------------------------------------------------------
# the domain-correlated window-loss model
# ---------------------------------------------------------------------------
class TestGeoWindowLossModel:
    def test_reduces_to_base_without_site_terms(self):
        base = window_loss_probability(1e-4, 16, 300.0, tolerance=1)
        assert geo_window_loss_probability(
            1e-4, 16, 300.0, tolerance=1, site_rate=0.0, n_sites=3
        ) == base
        assert geo_window_loss_probability(
            1e-4, 16, 300.0, tolerance=1, site_rate=1e-5, n_sites=0
        ) == base

    def test_site_terms_only_raise_risk(self):
        kw = dict(tolerance=2, n_sites=3, site_cost=3)
        lo = geo_window_loss_probability(1e-4, 16, 300.0, site_rate=1e-6, **kw)
        hi = geo_window_loss_probability(1e-4, 16, 300.0, site_rate=1e-4, **kw)
        base = window_loss_probability(1e-4, 16, 300.0, tolerance=2)
        assert base <= lo < hi <= 1.0

    def test_site_cost_differentiates_above_tolerance(self):
        """With tolerance 2, a stacked layout (cost 3) dies to one site
        event while a spread layout (cost 1) needs a coincidence."""
        kw = dict(tolerance=2, site_rate=1e-4, n_sites=3)
        spread = geo_window_loss_probability(1e-5, 16, 300.0, site_cost=1, **kw)
        stacked = geo_window_loss_probability(1e-5, 16, 300.0, site_cost=3, **kw)
        assert stacked > spread

    def test_monte_carlo_corroborates_closed_form(self):
        rng = np.random.default_rng([11, 0x6E0])
        kw = dict(tolerance=2, site_rate=1e-4, n_sites=3, site_cost=3)
        closed = geo_window_loss_probability(1e-4, 16, 300.0, **kw)
        mc = estimate_geo_window_loss(
            rng, 1e-4, 16, 300.0, n_runs=20_000, **kw
        )
        assert abs(mc.mean - closed) <= max(4 * mc.std_error, 1e-3)


# ---------------------------------------------------------------------------
# remus unit behavior
# ---------------------------------------------------------------------------
class TestRemusReplicator:
    def test_standby_lives_in_next_site(self):
        sim = Simulator()
        geo = GeoSpec(n_nodes=9, n_sites=3)
        cluster = VirtualCluster(sim, geo_cluster_spec(geo))
        rng = np.random.default_rng(5)
        for node in range(9):
            vm = cluster.create_vm(node, 64e6, image_pages=8, page_size=64)
            vm.image.write(0, rng.integers(0, 256, 256, dtype=np.uint8))
            vm.image.clear_dirty()
        ck = dvdc(cluster, group_size=2)
        rep = RemusAsyncReplicator(cluster, geo, ck)
        for vm in cluster.all_vms:
            home_site = geo.site_of(vm.node_id)
            standby = rep.standby_node(vm.vm_id)
            assert geo.site_of(standby) == (home_site + 1) % 3

    def test_single_site_rejected(self):
        sim = Simulator()
        geo = GeoSpec(n_nodes=4, n_sites=1)
        cluster = VirtualCluster(sim, geo_cluster_spec(geo))
        for node in (0, 1):
            cluster.create_vm(node, 64e6, image_pages=8, page_size=64)
        ck = dvdc(cluster, group_size=2)
        with pytest.raises(ValueError):
            RemusAsyncReplicator(cluster, geo, ck)
