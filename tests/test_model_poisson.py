"""Tests for the Section V equations, pinned against Monte-Carlo."""

import math

import numpy as np
import pytest

from repro.model import (
    estimate_expected_time,
    estimate_window_loss,
    expected_failures,
    expected_time_checkpointed,
    expected_time_no_checkpoint,
    expected_time_ratio,
    expected_time_with_overhead,
    paper_literal_eq1,
    paper_literal_eq3,
    paper_literal_overhead,
    simulate_completion_times,
    truncated_mean_failure_time,
    window_loss_probability,
)


class TestBuildingBlocks:
    def test_expected_failures_geometric(self):
        # success prob e^{-1} -> mean failures e - 1
        assert expected_failures(1.0, 1.0) == pytest.approx(math.e - 1.0)

    def test_expected_failures_small_rate(self):
        assert expected_failures(1e-9, 1.0) == pytest.approx(1e-9, rel=1e-6)

    def test_truncated_mean_below_span_and_mean(self):
        lam, span = 1e-3, 500.0
        m = truncated_mean_failure_time(lam, span)
        assert 0.0 < m < span
        assert m < 1.0 / lam

    def test_truncated_mean_limit_small_span(self):
        # for span << 1/lam, conditional mean ~ span/2 (near-uniform)
        lam, span = 1e-6, 10.0
        assert truncated_mean_failure_time(lam, span) == pytest.approx(
            span / 2.0, rel=1e-3
        )

    def test_truncated_mean_monte_carlo(self, rng):
        lam, span = 1.0 / 300.0, 200.0
        draws = rng.exponential(1.0 / lam, 200000)
        cond = draws[draws < span]
        assert truncated_mean_failure_time(lam, span) == pytest.approx(
            cond.mean(), rel=0.02
        )


class TestNoCheckpoint:
    def test_reduces_to_T_when_reliable(self):
        assert expected_time_no_checkpoint(1e-12, 100.0) == pytest.approx(100.0)

    def test_blows_up_with_failures(self):
        # lam*T = 5: e^5 - 1 retries
        e = expected_time_no_checkpoint(5e-2, 100.0)
        assert e > 100.0 * 10

    def test_matches_monte_carlo(self, rng):
        lam, T = 1 / 3600.0, 2 * 3600.0
        analytic = expected_time_no_checkpoint(lam, T)
        mc = estimate_expected_time(rng, lam, T, None, n_runs=30000)
        assert mc.within(analytic)

    def test_paper_literal_eq1_is_algebraically_identical(self):
        for lam, T in [(1e-4, 1e4), (1e-3, 5e3), (0.5, 10.0)]:
            assert paper_literal_eq1(lam, T) == pytest.approx(
                expected_time_no_checkpoint(lam, T), rel=1e-12
            )


class TestCheckpointed:
    def test_checkpointing_always_helps_zero_cost(self):
        lam, T = 1e-4, 1e5
        no_ck = expected_time_no_checkpoint(lam, T)
        with_ck = expected_time_checkpointed(lam, T, N=1000.0)
        assert with_ck < no_ck

    def test_finer_intervals_monotone_with_zero_cost(self):
        lam, T = 1e-4, 1e5
        e_coarse = expected_time_checkpointed(lam, T, N=10000.0)
        e_fine = expected_time_checkpointed(lam, T, N=100.0)
        assert e_fine < e_coarse

    def test_matches_monte_carlo(self, rng):
        lam, T, N = 1 / 1800.0, 4 * 3600.0, 900.0
        analytic = expected_time_checkpointed(lam, T, N)
        mc = estimate_expected_time(rng, lam, T, N, n_runs=30000)
        assert mc.within(analytic)

    def test_paper_literal_eq3_overestimates(self):
        """The printed Eq. 3 keeps λT in the per-segment failure terms,
        so it grossly overestimates for N << T — the errata check."""
        lam, T, N = 1e-4, 1e5, 100.0
        corrected = expected_time_checkpointed(lam, T, N)
        literal = paper_literal_eq3(lam, T, N)
        assert literal > corrected * 10


class TestOverheadModel:
    def test_zero_overhead_reduces_to_eq2(self):
        lam, T, N = 1e-4, 1e5, 1000.0
        assert expected_time_with_overhead(lam, T, N, 0.0) == pytest.approx(
            expected_time_checkpointed(lam, T, N)
        )

    def test_overhead_increases_cost(self):
        lam, T, N = 1e-4, 1e5, 1000.0
        assert expected_time_with_overhead(lam, T, N, 50.0) > (
            expected_time_with_overhead(lam, T, N, 1.0)
        )

    def test_repair_time_increases_cost(self):
        lam, T, N = 1e-3, 1e4, 500.0
        assert expected_time_with_overhead(lam, T, N, 10.0, T_r=100.0) > (
            expected_time_with_overhead(lam, T, N, 10.0, T_r=0.0)
        )

    def test_matches_monte_carlo(self, rng):
        lam, T, N, Tov, Tr = 1 / 3600.0, 8 * 3600.0, 1800.0, 120.0, 60.0
        analytic = expected_time_with_overhead(lam, T, N, Tov, Tr)
        mc = estimate_expected_time(rng, lam, T, N, Tov, Tr, n_runs=30000)
        assert mc.within(analytic)

    def test_ratio(self):
        lam, T, N, Tov = 1e-4, 1e5, 1000.0, 10.0
        assert expected_time_ratio(lam, T, N, Tov) == pytest.approx(
            expected_time_with_overhead(lam, T, N, Tov) / T
        )
        assert expected_time_ratio(1e-12, 1e5, 1000.0, 0.0) == pytest.approx(1.0)

    def test_paper_literal_overhead_dimensionally_wrong(self):
        """The printed multiplier T_ov/N (instead of T/N) makes the
        formula shrink with job-independent scale — the errata check."""
        lam, T, N, Tov = 1e-4, 1e5, 1000.0, 10.0
        literal = paper_literal_overhead(lam, T, N, Tov)
        corrected = expected_time_with_overhead(lam, T, N, Tov)
        assert literal < corrected / 100  # wildly off
        # and its E[F] is negative:
        assert math.exp(-lam * (N + Tov)) - 1.0 < 0

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_time_with_overhead(0.0, 1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            expected_time_with_overhead(1.0, 1.0, -1.0, 0.0)
        with pytest.raises(ValueError):
            expected_time_with_overhead(1.0, 1.0, 1.0, -1.0)


class TestMonteCarloHarness:
    def test_reliable_run_exact(self, rng):
        times = simulate_completion_times(rng, 1e-15, 100.0, None, n_runs=10)
        assert np.allclose(times, 100.0)

    def test_segment_count_with_final_checkpoint(self, rng):
        times = simulate_completion_times(
            rng, 1e-15, 100.0, 10.0, T_ov=1.0, n_runs=4, final_checkpoint=True
        )
        assert np.allclose(times, 110.0)

    def test_segment_count_without_final_checkpoint(self, rng):
        times = simulate_completion_times(
            rng, 1e-15, 100.0, 10.0, T_ov=1.0, n_runs=4, final_checkpoint=False
        )
        assert np.allclose(times, 109.0)

    def test_remainder_segment(self, rng):
        times = simulate_completion_times(
            rng, 1e-15, 25.0, 10.0, T_ov=1.0, n_runs=2, final_checkpoint=False
        )
        # segments 10+1, 10+1, 5 -> 27
        assert np.allclose(times, 27.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_completion_times(rng, 0.0, 1.0, None)
        with pytest.raises(ValueError):
            simulate_completion_times(rng, 1.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            simulate_completion_times(rng, 1.0, 1.0, None, n_runs=0)

    def test_ci_helpers(self, rng):
        est = estimate_expected_time(rng, 1e-3, 100.0, None, n_runs=500)
        lo, hi = est.ci()
        assert lo < est.mean < hi


class TestWindowLoss:
    """The window-of-vulnerability loss model behind SelfHealer telemetry."""

    def test_closed_form(self):
        lam, n, w = 1 / 10800.0, 4, 120.0
        p = window_loss_probability(lam, n, w)
        assert p == pytest.approx(1.0 - math.exp(-lam * (n - 1) * w))

    def test_edges_and_monotonicity(self):
        assert window_loss_probability(1e-3, 4, 0.0) == 0.0
        short = window_loss_probability(1e-3, 4, 10.0)
        long = window_loss_probability(1e-3, 4, 100.0)
        assert 0.0 < short < long < 1.0
        # more survivor nodes -> more ways a second failure lands
        assert window_loss_probability(1e-3, 8, 10.0) > short

    def test_validation(self):
        with pytest.raises(ValueError):
            window_loss_probability(0.0, 4, 10.0)
        with pytest.raises(ValueError):
            window_loss_probability(1e-3, 1, 10.0)
        with pytest.raises(ValueError):
            window_loss_probability(1e-3, 4, -1.0)

    def test_monte_carlo_corroborates(self, rng):
        lam, n, w = 1 / 3600.0, 4, 300.0
        est = estimate_window_loss(rng, lam, n, w, n_runs=20000)
        exact = window_loss_probability(lam, n, w)
        assert abs(est.mean - exact) < 4 * est.std_error + 1e-9

    def test_estimate_deterministic_in_seed(self):
        a = estimate_window_loss(np.random.default_rng(5), 1e-3, 4, 60.0)
        b = estimate_window_loss(np.random.default_rng(5), 1e-3, 4, 60.0)
        assert a.mean == b.mean


class TestWindowLossTolerance:
    """m-failure generalization of the window-of-vulnerability model.

    With an m-erasure scheme the window is only lost when at least
    ``tolerance`` of the n−1 survivors fail before reprotection — a
    binomial tail over per-node window-failure probability q."""

    def test_tolerance_one_matches_legacy_closed_form(self):
        lam, n, w = 1 / 7200.0, 6, 200.0
        assert window_loss_probability(lam, n, w, tolerance=1) == pytest.approx(
            1.0 - math.exp(-lam * (n - 1) * w)
        )

    def test_binomial_tail_matches_direct_sum(self):
        lam, n, w, t = 1 / 3600.0, 5, 300.0, 2
        q = 1.0 - math.exp(-lam * w)
        survivors = n - 1
        expect = sum(
            math.comb(survivors, i) * q**i * (1 - q) ** (survivors - i)
            for i in range(t, survivors + 1)
        )
        assert window_loss_probability(lam, n, w, tolerance=t) == pytest.approx(expect)

    def test_higher_tolerance_strictly_safer(self):
        lam, n, w = 1 / 3600.0, 8, 300.0
        probs = [window_loss_probability(lam, n, w, tolerance=t) for t in (1, 2, 3)]
        assert probs[0] > probs[1] > probs[2] > 0.0

    def test_tolerance_beyond_survivors_is_certain_safety(self):
        assert window_loss_probability(1e-3, 4, 100.0, tolerance=3) > 0.0
        assert window_loss_probability(1e-3, 4, 100.0, tolerance=4) == 0.0
        est = estimate_window_loss(
            np.random.default_rng(1), 1e-3, 4, 100.0, tolerance=4
        )
        assert est.mean == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            window_loss_probability(1e-3, 4, 10.0, tolerance=0)
        with pytest.raises(ValueError):
            estimate_window_loss(np.random.default_rng(0), 1e-3, 4, 10.0, tolerance=0)

    @pytest.mark.parametrize("tolerance", [2, 3])
    def test_monte_carlo_corroborates(self, rng, tolerance):
        lam, n, w = 1 / 900.0, 8, 400.0  # hot enough for nonzero tail mass
        est = estimate_window_loss(rng, lam, n, w, n_runs=40000, tolerance=tolerance)
        exact = window_loss_probability(lam, n, w, tolerance=tolerance)
        assert exact > 0.0
        assert abs(est.mean - exact) < 5 * est.std_error + 1e-9
