"""Tests for pre-copy live migration, downtime, and page-hash dedup."""

import math

import numpy as np
import pytest

from repro.cluster import ClusterSpec, MemoryImage, VirtualCluster
from repro.migration import (
    DowntimeModel,
    PAPER_BASE_OVERHEAD,
    PageHashIndex,
    PrecopyModel,
    hash_pages,
    live_migrate,
    migration_time_estimate,
    plan_dedup_transfer,
)
from repro.sim import Simulator

from conftest import run_process


class TestDowntimeModel:
    def test_paper_base_overhead_is_40ms(self):
        assert DowntimeModel().fixed_cost() == pytest.approx(PAPER_BASE_OVERHEAD)

    def test_downtime_includes_residual(self):
        m = DowntimeModel(pause_cost=0.01, activation_cost=0.02)
        assert m.downtime(100.0, 100.0) == pytest.approx(1.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            DowntimeModel(pause_cost=-1.0)
        with pytest.raises(ValueError):
            DowntimeModel().downtime(-1.0, 100.0)
        with pytest.raises(ValueError):
            DowntimeModel().downtime(1.0, 0.0)


class TestPrecopyModel:
    def test_idle_vm_single_round(self):
        m = PrecopyModel(bandwidth=100e6, downtime_target_bytes=1e6)
        r = m.estimate(1e9, dirty_rate=0.0)
        assert r.rounds == 1
        assert r.total_bytes == pytest.approx(1e9)
        assert r.converged

    def test_rounds_geometric_decay(self):
        m = PrecopyModel(bandwidth=100.0, downtime_target_bytes=1.0)
        r = m.estimate(1000.0, dirty_rate=10.0)  # rho = 0.1
        # round sizes 1000, 100, 10, 1(stop at <=1)
        assert r.rounds == 3
        assert r.total_bytes == pytest.approx(1000.0 + 100.0 + 10.0 + 1.0)
        assert r.converged

    def test_divergent_dirty_rate_detected(self):
        m = PrecopyModel(bandwidth=100.0, downtime_target_bytes=1.0)
        r = m.estimate(1000.0, dirty_rate=200.0)  # rho = 2
        assert not r.converged
        assert r.rounds <= m.max_rounds

    def test_downtime_scales_with_residual(self):
        m = PrecopyModel(bandwidth=100.0, downtime_target_bytes=50.0)
        r = m.estimate(1000.0, dirty_rate=10.0)
        assert r.downtime >= m.downtime_model.fixed_cost()

    def test_estimate_validation(self):
        m = PrecopyModel(bandwidth=100.0)
        with pytest.raises(ValueError):
            m.estimate(-1.0, 0.0)
        with pytest.raises(ValueError):
            m.estimate(1.0, -1.0)
        with pytest.raises(ValueError):
            PrecopyModel(bandwidth=0.0)

    def test_time_estimate_inf_when_divergent(self):
        assert math.isinf(migration_time_estimate(1e9, 200e6, 100e6))
        assert migration_time_estimate(1e9, 0.0, 100e6) > 0


class TestLiveMigrateSim:
    def test_moves_registration_and_times(self):
        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=2, node_bandwidth=100e6))
        vm = cluster.create_vm(0, 1e9, dirty_rate=5e6)

        def proc():
            r = yield from live_migrate(cluster, vm, 1)
            return r

        result = run_process(sim, proc())
        assert vm.node_id == 1
        assert vm.state.value == "running"
        assert result.total_bytes >= 1e9
        assert result.rounds >= 1
        # ~10s for the bulk round plus small iterative rounds
        assert 10.0 <= result.total_time < 15.0
        assert result.downtime < 1.0

    def test_same_node_noop(self):
        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=2))
        vm = cluster.create_vm(0, 1e9)

        def proc():
            r = yield from live_migrate(cluster, vm, 0)
            return r

        result = run_process(sim, proc())
        assert result.total_bytes == 0.0

    def test_unhosted_vm_rejected(self):
        sim = Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=2))
        vm = cluster.create_vm(0, 1e9)
        cluster.node(0).evict(vm)

        def proc():
            yield from live_migrate(cluster, vm, 1)

        with pytest.raises(ValueError):
            run_process(sim, proc())


class TestPageHash:
    def test_hash_pages_shape_check(self):
        with pytest.raises(ValueError):
            hash_pages(np.zeros(16, dtype=np.uint8))

    def test_identical_pages_same_digest(self, rng):
        pages = np.repeat(
            rng.integers(0, 256, (1, 64), dtype=np.uint8), 3, axis=0
        )
        digests = hash_pages(pages)
        assert digests[0] == digests[1] == digests[2]

    def test_index_membership(self, rng):
        idx = PageHashIndex()
        pages = rng.integers(0, 256, (4, 32), dtype=np.uint8)
        idx.add_pages(pages)
        assert len(idx) == 4
        assert hash_pages(pages)[0] in idx

    def test_dedup_against_destination(self, rng):
        dst_img = MemoryImage(8, page_size=32)
        dst_img.write(0, rng.integers(0, 256, 256, dtype=np.uint8))
        idx = PageHashIndex()
        idx.add_image(dst_img)
        # source shares 4 pages with destination, 4 unique
        src = np.zeros((8, 32), dtype=np.uint8)
        src[:4] = dst_img.pages[:4]
        src[4:] = rng.integers(1, 256, (4, 32), dtype=np.uint8)
        plan = plan_dedup_transfer(src, idx)
        assert len(plan.dedup_indices) == 4
        assert len(plan.send_indices) == 4
        assert plan.send_bytes == 4 * 32
        assert plan.dedup_fraction == pytest.approx(0.5)
        assert plan.total_bytes == plan.send_bytes + 8 * 16

    def test_intra_source_dup_collapse(self, rng):
        idx = PageHashIndex()
        page = rng.integers(0, 256, (1, 32), dtype=np.uint8)
        src = np.repeat(page, 5, axis=0)
        plan = plan_dedup_transfer(src, idx)
        assert len(plan.send_indices) == 1
        assert len(plan.dedup_indices) == 4

    def test_all_unique_cold_index(self, rng):
        plan = plan_dedup_transfer(
            rng.integers(0, 256, (6, 16), dtype=np.uint8), PageHashIndex()
        )
        assert len(plan.send_indices) == 6
        assert plan.dedup_fraction == 0.0
