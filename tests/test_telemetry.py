"""Tests for repro.telemetry — metrics, spans, exporters, and the Probe.

Covers the ISSUE acceptance list: histogram quantile estimates within
tolerance on known distributions, Chrome traces that validate (sorted
timestamps, matched B/E pairs), Prometheus text that parses back, the
NULL_PROBE/NULL_TRACER inertness contracts, and an instrumented
end-to-end simulation run.
"""

import json
import math

import numpy as np
import pytest

from repro.sim import NULL_TRACER, Simulator, Tracer
from repro.telemetry import (
    NULL_PROBE,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    P2Quantile,
    Probe,
    SpanError,
    SpanRecorder,
    chrome_trace,
    jsonl_events,
    parse_prometheus_text,
    probe_of,
    prometheus_text,
    summary_table,
    write_chrome_trace,
    write_jsonl,
)


# ---------------------------------------------------------------------------
# streaming quantiles


class TestP2Quantile:
    def test_exact_below_marker_count(self):
        q = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            q.add(v)
        assert q.value == 3.0

    @pytest.mark.parametrize("target", [0.5, 0.9, 0.99])
    def test_uniform_within_tolerance(self, target):
        rng = np.random.default_rng(42)
        q = P2Quantile(target)
        for v in rng.uniform(0.0, 1.0, 5000):
            q.add(float(v))
        assert abs(q.value - target) < 0.03

    def test_exponential_median(self):
        rng = np.random.default_rng(7)
        q = P2Quantile(0.5)
        samples = rng.exponential(1.0, 4000)
        for v in samples:
            q.add(float(v))
        true_median = math.log(2.0)
        assert abs(q.value - true_median) < 0.08

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)


# ---------------------------------------------------------------------------
# metric primitives


class TestMetrics:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(MetricError):
            c.inc(-1.0)

    def test_gauge_tracks_peak(self):
        g = Gauge()
        g.set(5.0)
        g.set(2.0)
        g.inc(1.0)
        assert g.value == 3.0
        assert g.max_value == 5.0

    def test_histogram_buckets_cumulative(self):
        h = Histogram(buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 50.0):
            h.observe(v)
        cum = h.cumulative_buckets()
        assert cum == [(1.0, 2), (10.0, 3), (math.inf, 4)]
        assert h.count == 4
        assert h.sum == pytest.approx(56.2)
        assert h.min == 0.5 and h.max == 50.0

    def test_histogram_quantile_on_known_distribution(self):
        rng = np.random.default_rng(3)
        h = Histogram()
        for v in rng.uniform(0.0, 1.0, 5000):
            h.observe(float(v))
        assert abs(h.quantile(0.5) - 0.5) < 0.03
        assert abs(h.quantile(0.99) - 0.99) < 0.03

    def test_registry_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", "x")
        with pytest.raises(MetricError):
            reg.gauge("repro_x_total", "x")

    def test_registry_idempotent_and_labeled(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_ops_total", "ops")
        b = reg.counter("repro_ops_total")
        assert a is b
        a.labels(op="read").inc()
        a.labels(op="write").inc(2)
        values = {labels["op"]: s.value for labels, s in a.series()}
        assert values == {"read": 1.0, "write": 2.0}

    def test_invalid_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricError):
            reg.counter("bad name!", "nope")

    def test_snapshot_is_json_able(self):
        reg = MetricsRegistry()
        reg.counter("repro_a_total", "a").labels(k="v").inc()
        reg.histogram("repro_b_seconds", "b").labels().observe(0.1)
        json.dumps(reg.snapshot())  # must not raise


# ---------------------------------------------------------------------------
# Prometheus exposition round-trip


class TestPrometheus:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("repro_flows_total", "flows").labels(link="nas.rx").inc(7)
        reg.gauge("repro_depth", "queue depth").labels().set(3)
        h = reg.histogram("repro_io_seconds", "io", buckets=(0.1, 1.0))
        h.labels(op="read").observe(0.05)
        h.labels(op="read").observe(0.5)
        h.labels(op="read").observe(5.0)
        return reg

    def test_text_parses_back(self):
        reg = self._registry()
        text = prometheus_text(reg)
        parsed = parse_prometheus_text(text)
        assert parsed["repro_flows_total"]["type"] == "counter"
        assert parsed["repro_depth"]["type"] == "gauge"
        assert parsed["repro_io_seconds"]["type"] == "histogram"
        name, labels, value = parsed["repro_flows_total"]["samples"][0]
        assert labels == {"link": "nas.rx"} and value == 7.0

    def test_histogram_samples_complete(self):
        text = prometheus_text(self._registry())
        parsed = parse_prometheus_text(text)
        samples = parsed["repro_io_seconds"]["samples"]
        buckets = [(lb["le"], v) for n, lb, v in samples
                   if n == "repro_io_seconds_bucket"]
        # cumulative and ending at +Inf == count
        assert buckets == [("0.1", 1.0), ("1", 2.0), ("+Inf", 3.0)]
        count = [v for n, _, v in samples if n == "repro_io_seconds_count"]
        total = [v for n, _, v in samples if n == "repro_io_seconds_sum"]
        assert count == [3.0]
        assert total[0] == pytest.approx(5.55)

    def test_label_escaping_round_trips(self):
        reg = MetricsRegistry()
        reg.counter("repro_esc_total", "esc").labels(
            path='a"b\\c', note="line1\nline2"
        ).inc()
        parsed = parse_prometheus_text(prometheus_text(reg))
        _, labels, _ = parsed["repro_esc_total"]["samples"][0]
        assert labels == {"path": 'a"b\\c', "note": "line1\nline2"}

    def test_summary_table_renders(self):
        text = summary_table(self._registry())
        assert "repro_flows_total" in text
        assert "repro_io_seconds" in text


# ---------------------------------------------------------------------------
# spans and Chrome traces


def _validate_chrome(events):
    """The Perfetto loadability invariants the ISSUE names."""
    dur = [e for e in events if e["ph"] in "BE"]
    ts = [e["ts"] for e in dur]
    assert ts == sorted(ts), "timestamps must be sorted"
    stacks: dict[int, list[str]] = {}
    for e in dur:
        stack = stacks.setdefault(e["tid"], [])
        if e["ph"] == "B":
            stack.append(e["name"])
        else:
            assert stack and stack[-1] == e["name"], "mismatched B/E pair"
            stack.pop()
    assert all(not s for s in stacks.values()), "unclosed span exported"


class TestSpans:
    def _clock(self):
        t = [0.0]

        def tick():
            t[0] += 0.25
            return t[0]

        return tick

    def test_nesting_and_durations(self):
        rec = SpanRecorder(wall_clock=self._clock())
        outer = rec.begin("cycle", 0.0, track="checkpoint", epoch=1)
        inner = rec.begin("ship", 1.0, track="checkpoint")
        rec.end(inner, 4.0)
        rec.end(outer, 5.0, committed=True)
        assert inner.parent_id == outer.span_id
        assert outer.duration_sim == 5.0
        assert outer.args["committed"] is True

    def test_lifo_enforced(self):
        rec = SpanRecorder(wall_clock=self._clock())
        a = rec.begin("a", 0.0)
        rec.begin("b", 1.0)
        with pytest.raises(SpanError):
            rec.end(a, 2.0)

    def test_chrome_events_validate(self):
        rec = SpanRecorder(wall_clock=self._clock())
        a = rec.begin("cycle", 0.0, track="checkpoint")
        b = rec.begin("ship", 1.0, track="checkpoint")
        c = rec.begin("recover", 1.5, track="recovery")
        rec.end(b, 2.0)
        rec.end(c, 2.5)
        rec.end(a, 3.0)
        for clock in ("sim", "wall"):
            events = rec.chrome_events(clock=clock)
            _validate_chrome(events)
        # metadata names the process and each track
        meta = [e for e in rec.chrome_events() if e["ph"] == "M"]
        assert meta[0]["name"] == "process_name"
        tracks = {e["args"]["name"] for e in meta[1:]}
        assert tracks == {"checkpoint", "recovery"}

    def test_unfinished_spans_not_exported(self):
        rec = SpanRecorder(wall_clock=self._clock())
        rec.begin("never_ends", 0.0)
        assert [e for e in rec.chrome_events() if e["ph"] in "BE"] == []

    def test_chrome_trace_document(self, tmp_path):
        rec = SpanRecorder(wall_clock=self._clock())
        s = rec.begin("x", 0.0)
        rec.end(s, 1.0)
        doc = chrome_trace(rec)
        assert doc["displayTimeUnit"] == "ms"
        path = write_chrome_trace(tmp_path / "t.json", rec)
        _validate_chrome(json.loads(path.read_text())["traceEvents"])

    def test_bad_clock_rejected(self):
        with pytest.raises(ValueError):
            SpanRecorder().chrome_events(clock="tai")


# ---------------------------------------------------------------------------
# the Probe facade


class TestProbe:
    def test_is_a_tracer_and_counts_emits(self):
        p = Probe()
        p.emit(1.0, "checkpoint.commit", epoch=0)
        p.emit(2.0, "checkpoint.commit", epoch=1)
        assert len(p.records) == 2  # Tracer surface intact
        parsed = parse_prometheus_text(prometheus_text(p.metrics))
        samples = parsed["repro_trace_events_total"]["samples"]
        assert samples[0][1] == {"kind": "checkpoint.commit"}
        assert samples[0][2] == 2.0

    def test_sink_receives_copies(self):
        sink = Tracer()
        p = Probe(sink=sink)
        p.emit(1.0, "x")
        assert len(sink.records) == 1

    def test_disabled_probe_is_silent(self):
        p = Probe(enabled=False)
        p.emit(1.0, "x")
        p.count("repro_c_total")
        p.observe("repro_h_seconds", 1.0)
        span = p.span_begin("s", 0.0)
        p.span_end(span, 1.0)  # tolerates None
        assert span is None
        assert len(p.records) == 0
        snap = p.metrics.snapshot()
        # nothing beyond the pre-registered hot-loop families, all at zero
        assert "repro_c_total" not in snap
        assert "repro_h_seconds" not in snap
        assert snap["repro_sim_events_total"]["series"][0]["value"] == 0
        assert len(p.spans) == 0

    def test_probe_of_identity_and_fallback(self):
        p = Probe()
        assert probe_of(p) is p
        assert probe_of(Tracer()) is NULL_PROBE
        assert probe_of(NULL_TRACER) is NULL_PROBE
        assert probe_of(None) is NULL_PROBE
        assert probe_of(NULL_PROBE) is NULL_PROBE

    def test_null_probe_truly_inert(self):
        NULL_PROBE.emit(1.0, "junk")
        NULL_PROBE.count("repro_junk_total")
        NULL_PROBE.observe("repro_junk_seconds", 1.0)
        NULL_PROBE.sim_event(5)
        s = NULL_PROBE.span_begin("junk", 0.0)
        NULL_PROBE.span_end(s, 1.0)
        assert s is None
        assert not NULL_PROBE.enabled
        NULL_PROBE.enabled = True  # silently refused
        assert not NULL_PROBE.enabled
        assert NULL_PROBE.records == ()
        assert NULL_PROBE.metrics.snapshot() == {}
        assert len(NULL_PROBE.spans) == 0
        # accessors hand out throwaways, not shared state
        NULL_PROBE.metrics.counter("repro_leak_total", "leak").labels().inc()
        assert NULL_PROBE.metrics.snapshot() == {}


# ---------------------------------------------------------------------------
# NULL_TRACER hardening regression (satellite: sim.trace)


class TestNullTracerRegression:
    def test_emit_accumulates_nothing(self):
        NULL_TRACER.emit(1.0, "anything", junk=True)
        assert NULL_TRACER.records == ()
        assert len(NULL_TRACER) == 0

    def test_enabled_cannot_be_flipped(self):
        NULL_TRACER.enabled = True
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit(1.0, "still.dropped")
        assert len(NULL_TRACER) == 0

    def test_clear_and_select_inert(self):
        NULL_TRACER.clear()  # must not raise
        assert NULL_TRACER.select() == []
        assert NULL_TRACER.select(kind="x", prefix="y") == []

    def test_records_not_shared_with_real_tracers(self):
        # the original bug shape: a records list reachable through the
        # singleton aliasing a live tracer's storage
        t = Tracer()
        t.emit(1.0, "real.event")
        assert len(t.records) == 1
        assert NULL_TRACER.records == ()


# ---------------------------------------------------------------------------
# instrumented end-to-end run


class TestInstrumentedRun:
    @pytest.fixture(scope="class")
    def probe(self):
        from repro.checkpoint import DiskfulCheckpointer
        from repro.workloads import scaled_scenario

        probe = Probe()
        sc = scaled_scenario(3, 2, seed=0, functional=False, tracer=probe)
        sc.sim.attach_probe(probe)
        ck = DiskfulCheckpointer(sc.cluster, tracer=probe)
        sc.sim.run_processes(ck.run_cycle())
        return probe

    def test_sim_layer_metrics(self, probe):
        snap = probe.metrics.snapshot()
        assert snap["repro_sim_events_total"]["series"][0]["value"] > 0
        assert snap["repro_checkpoint_captures_total"]["series"][0]["value"] == 6
        cycles = snap["repro_checkpoint_cycles_total"]["series"]
        assert cycles[0]["labels"] == {"arch": "diskful", "committed": "true"}

    def test_network_and_storage_metrics(self, probe):
        snap = probe.metrics.snapshot()
        flows = sum(s["value"]
                    for s in snap["repro_net_flows_total"]["series"])
        assert flows == 6  # one ship flow per VM
        disk = snap["repro_disk_io_seconds"]["series"]
        assert any(s["labels"]["op"] == "write" for s in disk)
        assert snap["repro_nas_objects"]["series"][0]["value"] == 6

    def test_spans_export_as_valid_chrome_trace(self, probe):
        names = {s.name for s in probe.spans.completed}
        assert {"diskful.cycle", "diskful.ship", "checkpoint.capture"} <= names
        _validate_chrome(probe.spans.chrome_events(clock="sim"))
        _validate_chrome(probe.spans.chrome_events(clock="wall"))

    def test_prometheus_export_parses(self, probe):
        parsed = parse_prometheus_text(prometheus_text(probe.metrics))
        assert "repro_checkpoint_pause_seconds" in parsed
        assert parsed["repro_checkpoint_pause_seconds"]["type"] == "histogram"

    def test_jsonl_stream_well_formed(self, probe, tmp_path):
        lines = list(jsonl_events(probe))
        docs = [json.loads(line) for line in lines]
        types = [d["type"] for d in docs]
        assert types[-1] == "metrics_snapshot"
        assert "trace" in types and "span" in types
        path = write_jsonl(tmp_path / "events.jsonl", probe)
        assert len(path.read_text().splitlines()) == len(lines)

    def test_simulator_probe_attachment(self):
        p = Probe()
        sim = Simulator(probe=p)
        assert sim.probe is p
        fired = []
        sim.at(1.0, lambda: fired.append(1))
        sim.run()
        assert fired == [1]
        snap = p.metrics.snapshot()
        assert snap["repro_sim_events_total"]["series"][0]["value"] >= 1


# ---------------------------------------------------------------------------
# vectorized observation + P² export (serving satellites)
class TestObserveBatch:
    def test_batch_equals_sequential_exactly(self):
        """observe_batch must leave *identical* state to a sequential
        observe loop: buckets, count, min/max, and every P² marker."""
        rng = np.random.default_rng(4)
        values = rng.exponential(0.1, 5000)
        a = Histogram(buckets=(0.05, 0.1, 0.5, 1.0))
        b = Histogram(buckets=(0.05, 0.1, 0.5, 1.0))
        for v in values:
            a.observe(float(v))
        b.observe_batch(values)
        assert a.counts == b.counts
        assert a.count == b.count
        assert a.min == b.min and a.max == b.max
        assert a.quantiles() == b.quantiles()  # P² state bit-equal

    def test_batch_empty_is_noop(self):
        h = Histogram()
        h.observe_batch(np.empty(0))
        assert h.count == 0

    def test_batch_rejects_nan(self):
        h = Histogram()
        with pytest.raises(MetricError, match="NaN"):
            h.observe_batch(np.array([0.1, math.nan]))
        assert h.count == 0  # rejected atomically, nothing recorded

    def test_probe_observe_batch_routes_labels_and_quantiles(self):
        p = Probe()
        p.observe_batch(
            "repro_req_seconds", np.array([0.01, 0.2, 0.9]),
            quantiles=(0.5, 0.99), policy="baseline",
        )
        snap = p.metrics.snapshot()
        series = snap["repro_req_seconds"]["series"][0]
        assert series["labels"] == {"policy": "baseline"}
        assert series["count"] == 3
        assert set(series["quantiles"]) == {"0.5", "0.99"}

    def test_null_probe_observe_batch_inert(self):
        NULL_PROBE.observe_batch("repro_x_seconds", np.array([1.0]))
        assert NULL_PROBE.metrics.snapshot() == {}


class TestQuantileExport:
    def _registry(self):
        reg = MetricsRegistry()
        h = reg.histogram(
            "repro_lat_seconds", "latency", buckets=(0.1, 1.0),
            quantiles=(0.5, 0.99),
        )
        s = h.labels(policy="ck")
        s.observe_batch(np.linspace(0.01, 2.0, 500))
        return reg

    def test_prometheus_text_carries_quantile_samples(self):
        text = prometheus_text(self._registry())
        parsed = parse_prometheus_text(text)
        samples = parsed["repro_lat_seconds"]["samples"]
        q = {
            lb["quantile"]: v for n, lb, v in samples
            if n == "repro_lat_seconds" and "quantile" in lb
        }
        assert set(q) == {"0.5", "0.99"}
        # P² estimates of a uniform ramp on (0.01, 2.0)
        assert q["0.5"] == pytest.approx(1.0, rel=0.1)
        assert q["0.99"] == pytest.approx(1.98, rel=0.05)
        # the quantile samples keep the series labels too
        labels = [lb for n, lb, _ in samples
                  if n == "repro_lat_seconds" and "quantile" in lb]
        assert all(lb["policy"] == "ck" for lb in labels)

    def test_nan_quantiles_are_skipped(self):
        reg = MetricsRegistry()
        reg.histogram("repro_empty_seconds", "e").labels()  # no samples
        text = prometheus_text(reg)
        assert "quantile" not in text
        assert "NaN" not in text

    def test_summary_table_has_quantile_columns(self):
        table = summary_table(self._registry())
        header = table.splitlines()[0] if "metric" in table.splitlines()[0] \
            else table.splitlines()[1]
        for col in ("q50", "q95", "q99", "q999"):
            assert col in header
        # the estimated median shows up as a rendered number
        assert any("1.0" in line for line in table.splitlines())
