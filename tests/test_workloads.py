"""Tests for dirty-page processes, scenarios, and the job runner."""

import numpy as np
import pytest

from repro.checkpoint import DiskfulCheckpointer, IncrementalCapture
from repro.core import dvdc
from repro.failures import FailureEvent, FailureInjector, FailureSchedule
from repro.workloads import (
    CheckpointedJob,
    HotColdDirty,
    PhasedDirty,
    UniformDirty,
    cluster_model_for,
    drive_vm,
    paper_scenario,
    scaled_scenario,
)


class TestDirtyPatterns:
    def test_uniform_bounds(self, rng):
        p = UniformDirty(100)
        idx = p.sample(rng, 1000)
        assert idx.min() >= 0 and idx.max() < 100

    def test_hotcold_skew(self, rng):
        p = HotColdDirty(1000, hot_fraction=0.1, hot_weight=0.9)
        idx = p.sample(rng, 20000)
        hot = (idx < p.hot_pages).mean()
        assert 0.85 < hot < 0.95

    def test_hotcold_expected_unique(self, rng):
        p = HotColdDirty(1000, hot_fraction=0.1, hot_weight=0.9)
        touches = 500
        uniq = len(np.unique(p.sample(rng, touches)))
        expected = p.expected_unique_pages(touches)
        assert abs(uniq - expected) / expected < 0.25

    def test_phased_window_moves(self, rng):
        p = PhasedDirty(1000, phase_len=1, window=0.1)
        first = set(p.sample(rng, 50))
        for _ in range(4):
            last = set(p.sample(rng, 50))
        assert first != last

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformDirty(0)
        with pytest.raises(ValueError):
            HotColdDirty(10, hot_fraction=1.5)
        with pytest.raises(ValueError):
            PhasedDirty(10, phase_len=0)

    def test_drive_vm_dirties_only_while_running(self):
        sc = paper_scenario(seed=1)
        vm = sc.vms[0]
        rng = sc.rngs.stream("w")
        sc.sim.process(
            drive_vm(sc.sim, vm, UniformDirty(vm.image.n_pages), rng, 10.0)
        )
        sc.sim.run(until=5.0)
        dirty_running = vm.image.dirty_page_count
        assert dirty_running > 0
        vm.image.clear_dirty()
        vm.pause()
        sc.sim.run(until=10.0)
        assert vm.image.dirty_page_count == 0

    def test_drive_requires_functional(self):
        sc = scaled_scenario(2, 1, functional=False)
        with pytest.raises(ValueError):
            list(drive_vm(sc.sim, sc.vms[0], UniformDirty(4), None, 1.0))


class TestScenarios:
    def test_paper_scenario_shape(self):
        sc = paper_scenario(seed=0)
        assert sc.cluster.n_nodes == 4
        assert len(sc.vms) == 12
        assert all(vm.functional for vm in sc.vms)
        assert all(vm.image.dirty_page_count == 0 for vm in sc.vms)

    def test_scenario_seed_reproducible(self):
        a = paper_scenario(seed=9)
        b = paper_scenario(seed=9)
        assert np.array_equal(a.vms[0].image.flat, b.vms[0].image.flat)
        c = paper_scenario(seed=10)
        assert not np.array_equal(a.vms[0].image.flat, c.vms[0].image.flat)

    def test_cluster_model_for_mirror(self):
        sc = paper_scenario()
        m = cluster_model_for(sc)
        assert m.n_nodes == 4
        assert m.vms_per_node == 3
        assert m.node_bandwidth == sc.cluster.spec.node_bandwidth


class TestJobRunner:
    def _job(self, kind="dvdc", schedule_events=(), work=3600.0, interval=600.0):
        sc = paper_scenario(seed=2)
        sched = FailureSchedule(events=list(schedule_events))
        inj = FailureInjector(sc.sim, 4, schedule=sched)
        if kind == "dvdc":
            ck = dvdc(sc.cluster, strategy=IncrementalCapture())
        else:
            ck = DiskfulCheckpointer(sc.cluster)
        job = CheckpointedJob(
            sc.cluster, ck, work=work, interval=interval,
            injector=inj, repair_time=30.0,
        )
        inj.start()
        proc = job.start()
        sc.sim.run()
        if proc.ok is False:
            raise proc.value
        return job.result

    def test_failure_free_run(self):
        r = self._job()
        assert r.completed
        assert r.n_failures == 0
        # 6 interval boundaries + initial checkpoint, minus the final one
        assert r.n_checkpoints == 6
        assert r.time_ratio > 1.0  # checkpoint overhead still counts

    def test_one_failure_rolls_back_and_completes(self):
        r = self._job(schedule_events=[FailureEvent(1000.0, 2, 0)])
        assert r.completed
        assert r.n_failures == 1
        assert r.n_recoveries == 1
        assert r.lost_work > 0
        assert r.recovery_time > 0

    def test_diskful_job_with_failure(self):
        r = self._job(kind="diskful", schedule_events=[FailureEvent(1000.0, 1, 0)])
        assert r.completed
        assert r.n_recoveries == 1

    def test_dvdc_cheaper_than_diskful(self):
        events = [FailureEvent(1500.0, 0, 0), FailureEvent(2500.0, 3, 0)]
        r_d = self._job("dvdc", events)
        r_f = self._job("diskful", events)
        assert r_d.completed and r_f.completed
        assert r_d.wall_time < r_f.wall_time

    def test_failure_during_checkpoint_cycle(self):
        # diskful cycle takes ~230 s; strike in the middle of the second
        r = self._job(
            kind="diskful",
            schedule_events=[FailureEvent(700.0, 1, 0)],
            work=3600.0, interval=600.0,
        )
        assert r.completed
        assert r.n_recoveries == 1

    def test_validation(self):
        sc = paper_scenario()
        ck = dvdc(sc.cluster)
        with pytest.raises(ValueError):
            CheckpointedJob(sc.cluster, ck, work=0.0, interval=1.0)
        with pytest.raises(ValueError):
            CheckpointedJob(sc.cluster, ck, work=1.0, interval=0.0)

    def test_time_ratio_nan_for_zero_work(self):
        from repro.workloads import JobResult

        r = JobResult(completed=False, work_seconds=0.0)
        assert np.isnan(r.time_ratio)


class TestAdaptiveJob:
    def _policy(self, min_interval=5.0):
        from repro.checkpoint import AdaptivePolicy
        from repro.failures import PAPER_LAMBDA
        from repro.model import ClusterModel, diskless_costs

        m = ClusterModel()

        def cost_of(dirty_bytes):
            interval_equiv = dirty_bytes / max(m.vm_dirty_rate * m.n_vms, 1.0)
            return diskless_costs(m, interval_equiv).overhead

        return AdaptivePolicy(PAPER_LAMBDA, cost_of, min_interval=min_interval)

    def test_adaptive_job_completes(self):
        from repro.core import dvdc as dvdc_factory

        sc = paper_scenario(seed=6)
        inj = FailureInjector(sc.sim, 4, schedule=FailureSchedule())
        ck = dvdc_factory(sc.cluster, strategy=IncrementalCapture())
        job = CheckpointedJob(
            sc.cluster, ck, work=1800.0, interval=self._policy(),
            injector=inj, repair_time=30.0,
        )
        inj.start()
        proc = job.start()
        sc.sim.run()
        if proc.ok is False:
            raise proc.value
        r = job.result
        assert r.completed
        assert r.n_checkpoints >= 3  # the policy fires repeatedly

    def test_adaptive_interval_near_young_optimum(self):
        """The realized mean interval lands within ~3x of the static
        optimum (the adaptive rule is first-order equivalent)."""
        from repro.core import dvdc as dvdc_factory
        from repro.model import fig5

        sc = paper_scenario(seed=7)
        ck = dvdc_factory(sc.cluster, strategy=IncrementalCapture())
        job = CheckpointedJob(
            sc.cluster, ck, work=3600.0, interval=self._policy(),
        )
        proc = job.start()
        sc.sim.run()
        if proc.ok is False:
            raise proc.value
        mean_interval = 3600.0 / max(job.result.n_checkpoints - 1, 1)
        static = fig5().diskless.optimum.interval
        assert static / 3 < mean_interval < static * 3

    def test_adaptive_with_failures(self):
        from repro.core import dvdc as dvdc_factory

        sc = paper_scenario(seed=8)
        inj = FailureInjector(
            sc.sim, 4,
            schedule=FailureSchedule(events=[FailureEvent(700.0, 1, 0)]),
        )
        ck = dvdc_factory(sc.cluster, strategy=IncrementalCapture())
        job = CheckpointedJob(
            sc.cluster, ck, work=1800.0, interval=self._policy(),
            injector=inj, repair_time=30.0,
        )
        inj.start()
        proc = job.start()
        sc.sim.run()
        if proc.ok is False:
            raise proc.value
        assert job.result.completed
        assert job.result.n_recoveries == 1
