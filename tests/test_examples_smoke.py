"""Smoke tests: every example script runs to completion.

Examples are part of the public surface; this keeps them green.  Each
runs in-process via runpy with a small argv where the script accepts
one, capturing stdout.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, argv: list[str], capsys) -> str:
    old_argv = sys.argv
    sys.argv = [script] + argv
    try:
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", [], capsys)
        assert "PASS" in out
        assert "18" in out  # the headline reduction

    def test_interval_tuning(self, capsys):
        out = _run("interval_tuning.py", [], capsys)
        assert "Fig. 5" in out
        assert "Young" in out
        assert "Adaptive" in out

    def test_architecture_tour(self, capsys):
        out = _run("architecture_tour.py", [], capsys)
        assert "Fig.4 DVDC" in out
        assert "Remus" in out

    def test_migration_pagehash(self, capsys):
        out = _run("migration_pagehash.py", [], capsys)
        assert "Pre-copy" in out
        assert "dedup" in out

    def test_double_failure_protection(self, capsys):
        out = _run("double_failure_protection.py", [], capsys)
        assert "PASS" in out
        assert "RDP" in out

    def test_campaign_sweep(self, capsys):
        out = _run("campaign_sweep.py", ["--points", "8", "--jobs", "2"], capsys)
        assert "PASS: parallel series bit-identical to serial" in out
        assert "PASS: resume served 16/16 tasks" in out
        assert "rebuilt from the result store" in out

    @pytest.mark.slow
    def test_hpc_job_survival_small(self, capsys):
        out = _run(
            "hpc_job_survival.py",
            ["--work", "0.5", "--seeds", "1", "--node-mtbf", "12"],
            capsys,
        )
        assert "shared failure traces" in out
        assert "Timeline" in out
