"""Campaign subsystem: specs, store, runner, and aggregation semantics."""

import json

import numpy as np
import pytest

from repro.campaign import (
    execute_task_batch,
    CampaignRunner,
    ResultStore,
    Sweep,
    Task,
    execute_task,
    get_kind,
    run_fig5_campaign,
    run_study_campaign,
    run_validate_campaign,
    task_key,
    task_kinds,
)
from repro.model import fig5


class TestTaskKeys:
    def test_key_is_stable(self):
        a = Task("fig5_point", {"x": 1.5}, seed=7)
        b = Task("fig5_point", {"x": 1.5}, seed=7)
        assert a.key == b.key

    def test_key_depends_on_params_seed_version(self):
        base = Task("fig5_point", {"x": 1.5}, seed=7, version="1")
        assert base.key != Task("fig5_point", {"x": 2.5}, seed=7).key
        assert base.key != Task("fig5_point", {"x": 1.5}, seed=8).key
        assert base.key != Task("fig5_point", {"x": 1.5}, seed=7,
                                version="2").key

    def test_key_insensitive_to_dict_order(self):
        assert (task_key("k", {"a": 1, "b": 2}, None, "1")
                == task_key("k", {"b": 2, "a": 1}, None, "1"))

    def test_roundtrip(self):
        t = Task("mc_chunk", {"n": 3}, seed=11, version="2")
        assert Task.from_dict(t.to_dict()) == t


class TestSweep:
    def test_expansion_counts_and_order(self):
        sw = Sweep(name="s", kind="fig5_point",
                   grid={"b": [10, 20], "a": [1, 2, 3]})
        tasks = sw.expand(version="1")
        assert len(tasks) == sw.n_tasks() == 6
        # axes cross in sorted-axis order: a-major, then b
        assert [t.params["a"] for t in tasks] == [1, 1, 2, 2, 3, 3]
        assert [t.params["b"] for t in tasks] == [10, 20] * 3

    def test_replication_seeds_distinct_and_stable(self):
        sw = Sweep(name="s", kind="mc_chunk", grid={"a": [1]},
                   replications=3, master_seed=5)
        seeds = [t.seed for t in sw.expand(version="1")]
        assert len(set(seeds)) == 3
        again = [t.seed for t in sw.expand(version="1")]
        assert seeds == again

    def test_seed_depends_on_point_values_not_order(self):
        # permuting a grid axis permutes tasks but not any task's seed
        fwd = Sweep(name="s", kind="mc_chunk", grid={"a": [1, 2]},
                    master_seed=9)
        rev = Sweep(name="s", kind="mc_chunk", grid={"a": [2, 1]},
                    master_seed=9)
        by_a_fwd = {t.params["a"]: t.seed for t in fwd.expand(version="1")}
        by_a_rev = {t.params["a"]: t.seed for t in rev.expand(version="1")}
        assert by_a_fwd == by_a_rev

    def test_unseeded_sweep(self):
        sw = Sweep(name="s", kind="fig5_point", grid={"a": [1]},
                   seeded=False)
        assert sw.expand(version="1")[0].seed is None

    def test_base_grid_shadow_rejected(self):
        with pytest.raises(ValueError):
            Sweep(name="s", kind="k", base={"a": 1}, grid={"a": [1]})

    def test_json_roundtrip(self):
        sw = Sweep(name="s", kind="mc_chunk", base={"T": 1.0},
                   grid={"a": [1, 2]}, replications=2, master_seed=3)
        assert Sweep.from_dict(json.loads(json.dumps(sw.to_dict()))) == sw


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        t = Task("fig5_point", {"x": 1})
        store.put(t, {"ratio": 1.5}, elapsed=0.25)
        rec = store.get(t.key)
        assert rec["value"] == {"ratio": 1.5}
        assert rec["task"]["kind"] == "fig5_point"

    def test_persistence_across_reopen(self, tmp_path):
        t = Task("fig5_point", {"x": 1})
        ResultStore(tmp_path / "s").put(t, {"ratio": 1.5})
        reopened = ResultStore(tmp_path / "s")
        assert len(reopened) == 1
        assert t.key in reopened

    def test_hit_and_miss_counters(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        t = Task("fig5_point", {"x": 1})
        assert store.get(t.key) is None
        store.put(t, {"ratio": 1.0})
        store.get(t.key)
        store.get(t.key)
        assert store.hits == 2
        assert store.misses == 1

    def test_records_filter_by_kind(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put(Task("fig5_point", {"x": 1}), {"r": 1})
        store.put(Task("mc_chunk", {"x": 1}), {"r": 2})
        assert len(store.records()) == 2
        assert len(store.records(kind="mc_chunk")) == 1

    def test_write_report_merges(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        path = tmp_path / "report.json"
        store.write_report(path, "a", {"x": 1})
        doc = store.write_report(path, "b", {"y": 2})
        assert doc == {"a": {"x": 1}, "b": {"y": 2}}
        assert json.loads(path.read_text()) == doc


def _tiny_fig5_tasks(n_points=4):
    from repro.campaign import fig5_sweep

    return fig5_sweep(points=n_points).expand()


class TestRunner:
    def test_registry_has_builtin_kinds(self):
        assert {"fig5_point", "mc_chunk", "study_cell"} <= set(task_kinds())
        assert get_kind("fig5_point").version

    def test_execute_task_never_raises(self):
        bad = Task("fig5_point", {"method": "diskful"})  # missing params
        out = execute_task(bad.to_dict())
        assert out["ok"] is False
        assert "KeyError" in out["error"]

    def test_inline_and_parallel_identical(self):
        tasks = _tiny_fig5_tasks()
        r1 = CampaignRunner(jobs=1).run(tasks)
        r4 = CampaignRunner(jobs=4).run(tasks)
        assert r1.values() == r4.values()
        assert r1.n_failed == r4.n_failed == 0

    def test_resume_skips_completed_tasks(self, tmp_path):
        tasks = _tiny_fig5_tasks()
        store = ResultStore(tmp_path / "s")
        cold = CampaignRunner(store=store, jobs=1).run(tasks)
        assert cold.n_executed == len(tasks)
        assert store.hits == 0

        hits_before = store.hits
        warm = CampaignRunner(store=store, jobs=1).run(tasks)
        assert warm.n_executed == 0
        assert warm.n_cached == len(tasks)
        # every task was served by a store hit, none recomputed
        assert store.hits == hits_before + len(tasks)
        assert warm.values() == cold.values()

    def test_partial_store_executes_only_missing(self, tmp_path):
        tasks = _tiny_fig5_tasks()
        store = ResultStore(tmp_path / "s")
        CampaignRunner(store=store, jobs=1).run(tasks[:3])
        result = CampaignRunner(store=store, jobs=1).run(tasks)
        assert result.n_cached == 3
        assert result.n_executed == len(tasks) - 3

    def test_no_resume_recomputes(self, tmp_path):
        tasks = _tiny_fig5_tasks()
        store = ResultStore(tmp_path / "s")
        CampaignRunner(store=store, jobs=1).run(tasks)
        result = CampaignRunner(store=store, jobs=1, resume=False).run(tasks)
        assert result.n_cached == 0
        assert result.n_executed == len(tasks)

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_failed_task_isolated(self, jobs):
        # an out-of-range chunk raises inside its worker; siblings finish
        ok_params = {
            "lam": 1e-4, "T": 3600.0, "N": 600.0, "n_runs": 64,
            "chunk_runs": 32, "final_checkpoint": True, "master_seed": 1,
        }
        tasks = [
            Task("mc_chunk", {**ok_params, "chunk_index": 0}),
            Task("mc_chunk", {**ok_params, "chunk_index": 99}),
            Task("mc_chunk", {**ok_params, "chunk_index": 1}),
        ]
        result = CampaignRunner(jobs=jobs).run(tasks)
        assert result.n_failed == 1
        assert [r.ok for r in result.runs] == [True, False, True]
        assert "ValueError" in result.failures()[0].error

    def test_failed_task_not_stored(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        bad = Task("fig5_point", {"method": "diskful"})
        CampaignRunner(store=store, jobs=1).run([bad])
        assert len(store) == 0  # a rerun retries it

    def test_jobs_validation(self):
        with pytest.raises(ValueError):
            CampaignRunner(jobs=0)

    def test_summary_table(self):
        result = CampaignRunner(jobs=1).run(_tiny_fig5_tasks())
        table = result.summary_table("t")
        assert "executed" in table and "cached" in table


class TestCampaignArtifacts:
    def test_fig5_parallel_bit_identical_to_serial_model(self):
        grid = np.logspace(0, np.log10(2 * 24 * 3600.0 / 2.0), 16)
        campaign_fig, run = run_fig5_campaign(jobs=3, intervals=grid)
        serial_fig = fig5(intervals=grid)
        assert run.n_failed == 0
        assert np.array_equal(campaign_fig.diskless.ratios,
                              serial_fig.diskless.ratios)
        assert np.array_equal(campaign_fig.diskful.ratios,
                              serial_fig.diskful.ratios)
        assert (campaign_fig.diskless.optimum.interval
                == serial_fig.diskless.optimum.interval)
        assert campaign_fig.reduction == serial_fig.reduction

    def test_validate_campaign_matches_serial_chunked(self):
        from repro.model import estimate_expected_time_chunked

        rows, run = run_validate_campaign(
            jobs=2, runs=512, chunk_runs=128, mtbf_hours=(1.0, 2.0),
        )
        assert run.n_failed == 0
        for row in rows:
            serial = estimate_expected_time_chunked(
                row["master_seed"], row["lam"], 8 * 3600.0, row["N"],
                120.0, 60.0, n_runs=512, chunk_runs=128,
            )
            assert row["estimate"].mean == serial.mean
            assert row["estimate"].std_error == serial.std_error

    def test_study_jobs1_vs_jobs4_identical_tables(self):
        kwargs = dict(
            methods=[{"name": "dvdc"}, {"name": "diskful"}],
            work=0.2 * 3600.0,
            seeds=2,
            node_mtbf=12 * 3600.0,
        )
        out1, run1 = run_study_campaign(jobs=1, **kwargs)
        out4, run4 = run_study_campaign(jobs=4, **kwargs)
        assert run1.n_failed == run4.n_failed == 0
        assert out1.summary_table() == out4.summary_table()

    def test_study_campaign_resume(self, tmp_path):
        kwargs = dict(
            methods=[{"name": "dvdc"}],
            work=0.1 * 3600.0,
            seeds=1,
            store=ResultStore(tmp_path / "s"),
        )
        _, cold = run_study_campaign(jobs=1, **kwargs)
        _, warm = run_study_campaign(jobs=1, **kwargs)
        assert cold.n_executed == 1
        assert warm.n_executed == 0 and warm.n_cached == 1


class TestStoreCorruptTail:
    """A crash mid-append must not brick resume (satellite fix)."""

    def _warm_store(self, tmp_path, n=4):
        tasks = _tiny_fig5_tasks(n)
        store = ResultStore(tmp_path / "s")
        result = CampaignRunner(store=store, jobs=1).run(tasks)
        assert result.n_executed == len(tasks)
        return store, tasks

    def test_truncated_trailing_record_skipped_with_warning(self, tmp_path):
        store, tasks = self._warm_store(tmp_path)
        # simulate a crash mid-append: cut the last record in half
        text = store.path.read_text(encoding="utf-8")
        cut = text.rstrip("\n")
        store.path.write_text(cut[: len(cut) - len(cut.splitlines()[-1]) // 2],
                              encoding="utf-8")
        with pytest.warns(RuntimeWarning, match="corrupt record"):
            reopened = ResultStore(store.root)
        assert reopened.skipped_lines == 1
        assert len(reopened) == len(tasks) - 1

    def test_resume_after_truncation_reexecutes_only_lost_task(self, tmp_path):
        store, tasks = self._warm_store(tmp_path)
        text = store.path.read_text(encoding="utf-8")
        store.path.write_text(text[:-20], encoding="utf-8")
        with pytest.warns(RuntimeWarning):
            reopened = ResultStore(store.root)
        result = CampaignRunner(store=reopened, jobs=1).run(tasks)
        assert result.n_failed == 0
        assert result.n_executed == 1  # only the damaged record's task
        assert result.n_cached == len(tasks) - 1

    def test_file_compacted_so_appends_are_safe(self, tmp_path):
        store, tasks = self._warm_store(tmp_path)
        text = store.path.read_text(encoding="utf-8")
        store.path.write_text(text[:-20], encoding="utf-8")
        with pytest.warns(RuntimeWarning):
            reopened = ResultStore(store.root)
        # the partial line is gone and the file ends on a line boundary
        healed = store.path.read_text(encoding="utf-8")
        assert healed.endswith("\n")
        for line in healed.splitlines():
            json.loads(line)
        # a post-heal append produces a loadable store with all records
        CampaignRunner(store=reopened, jobs=1).run(tasks)
        final = ResultStore(store.root)
        assert final.skipped_lines == 0
        assert len(final) == len(tasks)

    def test_interior_garbage_line_skipped(self, tmp_path):
        store, tasks = self._warm_store(tmp_path)
        lines = store.path.read_text(encoding="utf-8").splitlines()
        lines.insert(1, "not json at all {{{")
        lines.insert(3, '{"no_key_field": 1}')
        store.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.warns(RuntimeWarning):
            reopened = ResultStore(store.root)
        assert reopened.skipped_lines == 2
        assert len(reopened) == len(tasks)

    def test_clean_store_untouched(self, tmp_path):
        store, _ = self._warm_store(tmp_path)
        before = store.path.read_text(encoding="utf-8")
        reopened = ResultStore(store.root)
        assert reopened.skipped_lines == 0
        assert store.path.read_text(encoding="utf-8") == before


class TestRunnerBatching:
    """Chunked pool submissions (satellite fix for the 9x slowdown)."""

    def test_chunk_contiguous_and_complete(self):
        pending = list(range(23))
        batches = CampaignRunner._chunk(pending, jobs=4)
        assert [i for b in batches for i in b] == pending  # order preserved
        assert len(batches) <= 4 * 4 + 1
        assert all(b == list(range(b[0], b[0] + len(b))) for b in batches)

    def test_chunk_small_workloads(self):
        assert CampaignRunner._chunk([0], jobs=8) == [[0]]
        assert CampaignRunner._chunk([0, 1, 2], jobs=2) == [[0], [1], [2]]

    def test_execute_task_batch_matches_singles(self):
        tasks = _tiny_fig5_tasks(3)
        dicts = [t.to_dict() for t in tasks]
        batched = execute_task_batch(dicts)
        singles = [execute_task(d) for d in dicts]
        # identical outcomes and values; elapsed is wall time, so skip it
        for a, b in zip(batched, singles):
            assert (a["ok"], a["value"], a["error"]) == (
                b["ok"], b["value"], b["error"]
            )

    def test_jobs4_bit_identical_to_jobs1(self):
        tasks = _tiny_fig5_tasks(8)
        r1 = CampaignRunner(jobs=1).run(tasks)
        r4 = CampaignRunner(jobs=4).run(tasks)
        assert r1.n_failed == r4.n_failed == 0
        # bit-for-bit: every value, in task order
        for a, b in zip(r1.runs, r4.runs):
            assert a.task.key == b.task.key
            assert a.value == b.value

    def test_batched_failures_stay_isolated_and_ordered(self):
        good = _tiny_fig5_tasks(4)
        bad = Task("fig5_point", {"method": "diskful"})  # missing params
        tasks = [good[0], bad, good[1], good[2], bad, good[3]]
        result = CampaignRunner(jobs=3).run(tasks)
        assert [r.ok for r in result.runs] == [
            True, False, True, True, False, True
        ]


class TestRunnerProbe:
    def test_probe_records_tasks_and_span(self):
        from repro.telemetry import Probe

        probe = Probe()
        tasks = _tiny_fig5_tasks(4)
        CampaignRunner(jobs=1, probe=probe).run(tasks)
        snap = probe.metrics.snapshot()
        executed = [
            s for s in snap["repro_campaign_tasks_total"]["series"]
            if s["labels"]["state"] == "executed"
        ]
        assert sum(s["value"] for s in executed) == len(tasks)
        hist = snap["repro_campaign_task_seconds"]["series"][0]
        assert hist["count"] == len(tasks)
        assert snap["repro_campaign_workers"]["series"][0]["value"] == 1
        spans = probe.spans.select(name="campaign.run")
        assert len(spans) == 1 and spans[0].finished

    def test_probe_counts_cached_separately(self, tmp_path):
        from repro.telemetry import Probe

        store = ResultStore(tmp_path / "s")
        tasks = _tiny_fig5_tasks(4)
        CampaignRunner(store=store, jobs=1).run(tasks)
        probe = Probe()
        CampaignRunner(store=store, jobs=1, probe=probe).run(tasks)
        snap = probe.metrics.snapshot()
        states = {
            s["labels"]["state"]: s["value"]
            for s in snap["repro_campaign_tasks_total"]["series"]
        }
        assert states == {"cached": float(len(tasks))}

    def test_no_probe_is_default_and_inert(self):
        runner = CampaignRunner(jobs=1)
        from repro.telemetry import NULL_PROBE

        assert runner.probe is NULL_PROBE
        runner.run(_tiny_fig5_tasks(2))  # must not record or raise
        assert len(NULL_PROBE.spans) == 0
