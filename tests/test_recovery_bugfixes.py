"""Regression tests for the recovery-path bugs the audit work flushed out.

Each test documents a failure mode that existed before the fix:

* a VM killed *inside* the barrier pause window had its capture outcome
  returned anyway (the capture list is built before the pause timeout),
  crashing the group cycle on the dead VM;
* ``report.network_bytes`` was charged before transfers that can die
  with ``NetworkError``, inflating recovery accounting on aborted
  rebuild/re-encode passes;
* ``_rebuild_member`` hand-rolled the survivor XOR fold instead of using
  ``reconstruct_missing_padded`` (covered via heterogeneous groups).
"""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, VirtualCluster, VMState
from repro.core import dvdc

from conftest import run_process


class TestMidPauseFailure:
    """A node crash during the barrier window must not leak stale captures."""

    def _run(self, paper_cluster, sim):
        ck = dvdc(paper_cluster)

        def proc():
            yield from ck.run_cycle()  # epoch 0 commits cleanly
            yield sim.timeout(10.0)
            # pause window is 0.12 s (3 VMs x 40 ms serialized per node);
            # kill node 2 squarely inside it
            sim.schedule(0.06, paper_cluster.kill_node, 2)
            r = yield from ck.run_cycle()
            return r

        return ck, run_process(sim, proc())

    def test_cycle_aborts_instead_of_crashing(self, paper_cluster, sim):
        # pre-fix: AssertionError in _group_cycle on the dead VM's node
        ck, r = self._run(paper_cluster, sim)
        assert r.committed is False
        assert ck.committed_epoch == 0  # previous epoch remains the anchor

    def test_dead_vm_outcomes_dropped(self, paper_cluster, sim):
        ck, r = self._run(paper_cluster, sim)
        dead = {vm.vm_id for vm in paper_cluster.all_vms
                if vm.state == VMState.FAILED}
        assert dead == {2, 6, 10}
        assert not dead & set(r.per_vm_pause)

    def test_survivors_resume_and_recovery_succeeds(self, paper_cluster, sim, rng):
        ck, _ = self._run(paper_cluster, sim)
        for vm in paper_cluster.all_vms:
            if vm.node_id is not None:
                assert vm.state == VMState.RUNNING

        def recover():
            rep = yield from ck.recover(2)
            return rep

        rep = run_process(sim, recover())
        assert sorted(rep.reconstructed) == [2, 6, 10]
        for vm in paper_cluster.all_vms:
            hv = paper_cluster.hypervisor(vm.node_id)
            img = hv.committed(vm.vm_id)
            assert img is not None and img.epoch == 0

    def test_no_uncommitted_epoch_artifacts_leak(self, paper_cluster, sim):
        ck, _ = self._run(paper_cluster, sim)
        for node in paper_cluster.alive_nodes:
            for img in node.checkpoint_store.values():
                assert img.epoch <= ck.committed_epoch
            for block in node.parity_store.values():
                assert block.epoch <= ck.committed_epoch


class TestHeterogeneousRebuild:
    """Unequal image sizes within a group: padded reconstruction must be
    bit-exact for every member length (satellite: unify the survivor fold
    on reconstruct_missing_padded)."""

    def _build(self):
        sim = __import__("repro.sim", fromlist=["Simulator"]).Simulator()
        cluster = VirtualCluster(sim, ClusterSpec(n_nodes=4))
        rng = np.random.default_rng(99)
        # three VMs per node with 1x / 2x / 4x memory footprints
        for node in range(4):
            for factor in (1, 2, 4):
                vm = cluster.create_vm(
                    node, 1e8 * factor, image_pages=8 * factor, page_size=64
                )
                vm.image.write(
                    0, rng.integers(0, 256, vm.image.nbytes, dtype=np.uint8)
                )
                vm.image.clear_dirty()
        return sim, cluster

    @pytest.mark.parametrize("node", [0, 3])
    def test_rebuild_bit_exact_all_sizes(self, node):
        sim, cluster = self._build()
        ck = dvdc(cluster)
        committed = {}

        def proc():
            yield from ck.run_cycle()
            for vm in cluster.all_vms:
                committed[vm.vm_id] = (
                    cluster.hypervisor(vm.node_id).committed(vm.vm_id)
                    .payload_flat().copy()
                )
            cluster.kill_node(node)
            rep = yield from ck.recover(node)
            return rep

        rep = run_process(sim, proc())
        assert len(rep.reconstructed) == 3
        sizes = set()
        for vm in cluster.all_vms:
            assert np.array_equal(vm.image.flat, committed[vm.vm_id])
            sizes.add(vm.image.nbytes)
        assert len(sizes) == 3  # the group really was heterogeneous


class TestRecoveryNetworkAccounting:
    """Bytes are charged only for transfers that actually completed."""

    def test_mid_rebuild_failure_counts_zero_bytes(self, paper_cluster, sim, rng):
        ck = dvdc(paper_cluster)

        def proc():
            yield from ck.run_cycle()
            paper_cluster.kill_node(0)
            # every rebuild flow is ~1 GB over a shared 125 MB/s NIC, so
            # nothing can have completed 1 s into the recovery — killing a
            # second node then tears every in-flight transfer
            sim.schedule(1.0, paper_cluster.kill_node, 1)
            rep = yield from ck.recover(0)
            return rep

        rep = run_process(sim, proc())
        # pre-fix: ~6 GB of never-completed survivor transfers were charged
        assert rep.network_bytes == 0
        assert rep.reconstructed == {}

    def test_successful_recovery_still_accounts_transfers(
        self, paper_cluster, sim, rng
    ):
        ck = dvdc(paper_cluster)

        def proc():
            yield from ck.run_cycle()
            paper_cluster.kill_node(0)
            rep = yield from ck.recover(0)
            return rep

        rep = run_process(sim, proc())
        assert sorted(rep.reconstructed) == [0, 4, 8]
        # three groups x two remote survivors x 1 GB, plus restore
        # shipments for members rebuilt away from their parity node
        assert rep.network_bytes >= 6e9
