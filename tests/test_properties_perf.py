"""Property tests for the perf-critical primitives.

Seeded (RngRegistry-driven) randomized laws for the pieces the scale
work leans on hardest:

* xorsum algebra — associativity/commutativity, self-inverse, padded
  round-trips, and ``out=``-buffer equivalence;
* fluid-flow conservation — under random flap/abort/degrade schedules,
  delivered bytes match flow sizes, links never leak flows, and the
  incremental allocator's per-flow trajectory is bit-identical to the
  reference allocator's;
* ``MemoryImage.touch_pages`` accounting — ``dirty_bytes`` counts
  *unique* pages (the double-count regression) while RNG consumption
  stays keyed to the raw index list;
* BufferPool lifetime rules — refcount gate, view/dtype rejection, caps;
* event-heap lazy-deletion compaction — bounded heap, preserved
  execution order, counter hygiene across peek/drain;
* COW snapshots — bit-identical to plain copies, and recycling can never
  corrupt a buffer the caller still holds.
"""

from __future__ import annotations

import sys

import numpy as np
import pytest

from repro.cluster.bufpool import BufferPool
from repro.cluster.memory import MemoryImage
from repro.cluster.xorsum import (
    reconstruct_missing_padded,
    xor_into,
    xor_reduce,
    xor_reduce_padded,
)
from repro.network.topology import SwitchedTopology
from repro.sim import RngRegistry, Simulator


# ---------------------------------------------------------------------------
# xorsum algebra
# ---------------------------------------------------------------------------
def _buffers(rng, k: int, n: int) -> list[np.ndarray]:
    return [rng.integers(0, 256, size=n, dtype=np.uint8) for _ in range(k)]


@pytest.mark.parametrize("seed", range(5))
def test_xor_reduce_order_independent(rngs: RngRegistry, seed: int):
    rng = rngs.stream(f"assoc/{seed}")
    bufs = _buffers(rng, k=int(rng.integers(2, 7)), n=int(rng.integers(1, 512)))
    expected = xor_reduce(bufs)
    perm = rng.permutation(len(bufs))
    assert np.array_equal(xor_reduce([bufs[i] for i in perm]), expected)
    # fold pairwise via xor_into: same result as one-shot reduce
    acc = bufs[0].copy()
    for b in bufs[1:]:
        xor_into(acc, b)
    assert np.array_equal(acc, expected)


@pytest.mark.parametrize("seed", range(5))
def test_xor_self_inverse(rngs: RngRegistry, seed: int):
    rng = rngs.stream(f"inverse/{seed}")
    n = int(rng.integers(1, 1024))
    a = rng.integers(0, 256, size=n, dtype=np.uint8)
    b = rng.integers(0, 256, size=n, dtype=np.uint8)
    x = a.copy()
    xor_into(x, b)
    xor_into(x, b)
    assert np.array_equal(x, a)


@pytest.mark.parametrize("seed", range(5))
def test_padded_round_trip(rngs: RngRegistry, seed: int):
    """Any member of a heterogeneous padded group is recoverable, and the
    zero-padding semantics are exactly pad-then-truncate."""
    rng = rngs.stream(f"padded/{seed}")
    k = int(rng.integers(2, 6))
    lengths = [int(rng.integers(1, 300)) for _ in range(k)]
    bufs = [rng.integers(0, 256, size=n, dtype=np.uint8) for n in lengths]
    parity = xor_reduce_padded(bufs)
    longest = max(lengths)
    # parity equals the equal-length reduce over zero-padded members
    padded = [np.pad(b, (0, longest - len(b))) for b in bufs]
    assert np.array_equal(parity, xor_reduce(padded))
    for missing in range(k):
        survivors = [b for i, b in enumerate(bufs) if i != missing]
        got = reconstruct_missing_padded(survivors, parity, lengths[missing])
        assert np.array_equal(got, bufs[missing])


@pytest.mark.parametrize("seed", range(3))
def test_xor_reduce_padded_out_buffer_equivalence(rngs: RngRegistry, seed: int):
    """``out=`` lands the same bytes; an exact-length out is returned
    as-is (identity) so pooled callers can recycle it afterwards."""
    rng = rngs.stream(f"outbuf/{seed}")
    bufs = [rng.integers(0, 256, size=int(n), dtype=np.uint8)
            for n in rng.integers(1, 200, size=4)]
    longest = max(b.shape[0] for b in bufs)
    expected = xor_reduce_padded(bufs)
    exact = np.full(longest, 0xAA, dtype=np.uint8)
    got = xor_reduce_padded(bufs, out=exact)
    assert got is exact
    assert np.array_equal(got, expected)
    oversized = np.full(longest + 17, 0xAA, dtype=np.uint8)
    got = xor_reduce_padded(bufs, out=oversized)
    assert np.array_equal(got, expected)
    assert np.all(oversized[longest:] == 0xAA), "bytes past the result untouched"
    with pytest.raises(ValueError):
        xor_reduce_padded(bufs, out=np.zeros(longest - 1, dtype=np.uint8))
    with pytest.raises(ValueError):
        xor_reduce_padded(bufs, out=np.zeros(longest, dtype=np.uint16))


# ---------------------------------------------------------------------------
# flow conservation under random fault schedules
# ---------------------------------------------------------------------------
def _run_flow_schedule(allocator: str, seed: int):
    """Drive a random flow + fault schedule; returns per-flow records.

    The schedule (flows, flaps, drops, degradations) is derived from the
    seed *before* running, so both allocators see the same stimulus.
    """
    registry = RngRegistry(seed)
    rng = registry.stream("flow-schedule")
    sim = Simulator()
    n_nodes = 6
    topo = SwitchedTopology(sim, n_nodes, allocator=allocator)
    flows = []

    def start(src, dst, size, label):
        flows.append(topo.transfer(src, dst, size, label=label))

    def start_nas(src, size, label):
        flows.append(topo.transfer_to_nas(src, size, label=label))

    n_flows = 40
    for i in range(n_flows):
        t = float(rng.uniform(0.0, 2.0))
        size = float(rng.integers(1, 50)) * 1e6
        src = int(rng.integers(0, n_nodes))
        if rng.random() < 0.3:
            sim.at(t, start_nas, src, size, f"nas{i}")
        else:
            dst = int(rng.integers(0, n_nodes))
            sim.at(t, start, src, dst, size, f"f{i}")
    for j in range(10):
        t = float(rng.uniform(0.1, 2.5))
        node = int(rng.integers(0, n_nodes))
        kind = rng.random()
        if kind < 0.4:  # flap down, back up shortly after
            sim.at(t, topo.set_node_links_up, node, False)
            sim.at(t + float(rng.uniform(0.05, 0.5)),
                   topo.set_node_links_up, node, True)
        elif kind < 0.7:  # lossy blip
            sim.at(t, topo.drop_node_flows, node)
        else:  # straggler NIC, later restored
            factor = float(rng.uniform(0.25, 0.9))
            sim.at(t, topo.scale_node_bandwidth, node, factor)
            sim.at(t + float(rng.uniform(0.2, 1.0)),
                   topo.scale_node_bandwidth, node, 1.0)
    sim.run()
    records = [
        (f.label, f.ok, float(f.started_at), float(f.finished_at),
         float(f.size), float(f.transferred))
        for f in flows
    ]
    leaked = [lk.name for lk in topo.network.links.values() if lk.flows]
    return records, leaked, sim.event_count


@pytest.mark.parametrize("seed", range(4))
def test_flow_conservation_under_faults(seed: int):
    records, leaked, _ = _run_flow_schedule("incremental", seed)
    assert not leaked, f"links leaked flows: {leaked}"
    assert len(records) == 40 and all(r[3] is not None for r in records)
    delivered = sum(1 for r in records if r[1])
    assert delivered > 0, "schedule should deliver at least some flows"
    for label, ok, started, finished, size, transferred in records:
        assert finished >= started
        if ok:
            assert transferred == size, f"{label} delivered {transferred}/{size}"
        else:
            assert 0.0 <= transferred <= size + 1e-6


@pytest.mark.parametrize("seed", range(4))
def test_incremental_allocator_bit_identical_to_reference(seed: int):
    """Same schedule, both allocators: every flow's outcome, timestamps,
    and delivered-byte trajectory must match exactly (not approximately)."""
    inc, inc_leaked, inc_events = _run_flow_schedule("incremental", seed)
    ref, ref_leaked, ref_events = _run_flow_schedule("reference", seed)
    assert inc == ref
    assert inc_leaked == ref_leaked == []
    assert inc_events == ref_events


# ---------------------------------------------------------------------------
# touch_pages accounting (the double-count regression)
# ---------------------------------------------------------------------------
def test_touch_pages_duplicates_count_once(rng):
    img = MemoryImage(n_pages=16, page_size=64)
    img.touch_pages(np.array([3, 3, 3, 7]))
    assert img.dirty_page_count == 2
    assert img.dirty_bytes == 2 * 64
    # re-touching already-dirty pages within the interval adds nothing
    img.touch_pages(np.array([7, 7, 9]), rng)
    assert img.dirty_page_count == 3
    assert img.dirty_bytes == 3 * 64
    assert sorted(img.dirty_page_indices) == [3, 7, 9]


@pytest.mark.parametrize("seed", range(3))
def test_touch_pages_accounting_invariant(rngs: RngRegistry, seed: int):
    """After any touch/clear/delta sequence, the cached dirty count equals
    the bitmap's ground truth — dirty_bytes == unique dirty pages x page
    size, never the double-counted sum."""
    rng = rngs.stream(f"touch/{seed}")
    img = MemoryImage(n_pages=32, page_size=128)
    for _ in range(30):
        op = rng.random()
        if op < 0.6:
            k = int(rng.integers(1, 12))
            idx = rng.integers(0, 32, size=k)  # duplicates likely
            img.touch_pages(idx, rng)
        elif op < 0.8 and img.dirty_page_count:
            img.apply_delta(img.capture_delta(clear=True))
        else:
            img.clear_dirty()
        truth = len(img.dirty_page_indices)
        assert img.dirty_page_count == truth
        assert img.dirty_bytes == truth * img.page_size


def test_touch_pages_rng_consumption_unchanged_by_duplicates():
    """The accounting fix must not shift RNG streams: consumption is
    keyed to len(indices) including duplicates, so traces recorded before
    the fix still replay."""
    img_a = MemoryImage(n_pages=8, page_size=32)
    rng_a = np.random.default_rng(7)
    img_a.touch_pages(np.array([1, 1, 2]), rng_a)
    rng_b = np.random.default_rng(7)
    expected = rng_b.integers(0, 256, size=(3, 8), dtype=np.uint8)
    # duplicate index 1: the *later* stamp row wins, as direct fancy
    # assignment does
    assert np.array_equal(img_a.pages[1, :8], expected[1])
    assert np.array_equal(img_a.pages[2, :8], expected[2])
    # both rngs are now at the same stream position
    assert rng_a.integers(0, 1 << 30) == rng_b.integers(0, 1 << 30)


# ---------------------------------------------------------------------------
# BufferPool lifetime rules
# ---------------------------------------------------------------------------
def test_pool_roundtrip_and_refcount_gate():
    pool = BufferPool()
    buf = pool.acquire(256)
    ident = id(buf)
    alias = buf  # second reference: recycle must refuse
    assert pool.recycle(buf) is False
    assert pool.stats()["rejected"] == 1
    del alias
    assert pool.recycle(buf) is True
    del buf
    again = pool.acquire(256)
    assert id(again) == ident, "freed buffer is reissued"
    assert pool.hits == 1


def test_pool_rejects_unsafe_buffers():
    pool = BufferPool()
    base = np.zeros(128, dtype=np.uint8)
    assert pool.recycle(base[:64]) is False  # view
    assert pool.recycle(np.zeros(16, dtype=np.uint16)) is False  # dtype
    assert pool.recycle(np.zeros((4, 4), dtype=np.uint8)) is False  # ndim
    assert pool.recycle(None) is False
    assert pool.held_buffers == 0


def test_pool_caps():
    pool = BufferPool(max_buffers_per_size=2, max_total_bytes=1024)
    kept = [pool.recycle(np.zeros(100, dtype=np.uint8)) for _ in range(3)]
    assert kept == [True, True, False]
    assert pool.held_buffers == 2
    assert pool.recycle(np.zeros(1000, dtype=np.uint8)) is False  # total cap
    pool.clear()
    assert pool.held_bytes == 0 and pool.held_buffers == 0


def test_pool_disabled_is_passthrough():
    pool = BufferPool()
    pool.enabled = False
    assert pool.recycle(np.zeros(64, dtype=np.uint8)) is False
    a = pool.acquire(64)
    b = pool.acquire(64)
    assert a is not b


# ---------------------------------------------------------------------------
# event-heap compaction
# ---------------------------------------------------------------------------
def _noop():
    pass


def test_heap_stays_bounded_under_cancel_churn():
    sim = Simulator()
    rng = np.random.default_rng(0)
    peak = 0
    for _ in range(5000):
        h = sim.schedule(float(rng.random()), _noop)
        h.cancel()
        peak = max(peak, sim.heap_size)
    assert peak <= 2 * Simulator.COMPACT_MIN_CANCELLED + 2
    assert sim.compactions > 0
    assert sim.cancelled_pending < Simulator.COMPACT_MIN_CANCELLED


@pytest.mark.parametrize("seed", range(3))
def test_compaction_preserves_execution_order(seed: int):
    """A compacting simulator fires the surviving events in exactly the
    order a non-compacting one would."""

    def run(compact: bool):
        sim = Simulator()
        if not compact:
            sim.COMPACT_MIN_CANCELLED = 1 << 60  # instance override: never
        rng = np.random.default_rng(seed)
        fired: list[int] = []
        handles = []
        for i in range(600):
            t = float(rng.choice([0.25, 0.5, 0.75, 1.0]))  # many ties
            handles.append(sim.schedule(t, fired.append, i))
        for i in range(600):
            if rng.random() < 0.8:
                handles[i].cancel()
        sim.run()
        return fired, sim.compactions

    lazy, lazy_compactions = run(compact=True)
    eager, eager_compactions = run(compact=False)
    assert lazy == eager
    assert lazy_compactions > 0 and eager_compactions == 0


def test_peek_and_drain_counter_hygiene():
    sim = Simulator()
    sim.COMPACT_MIN_CANCELLED = 1 << 60
    keep = sim.schedule(2.0, _noop)
    for _ in range(5):
        sim.schedule(1.0, _noop).cancel()
    assert sim.cancelled_pending == 5
    assert sim.peek() == 2.0  # skips + evicts the cancelled prefix
    assert sim.cancelled_pending == 0
    assert sim.heap_size == 1
    sim.schedule(3.0, _noop).cancel()
    assert sim.drain() == 1  # only `keep` was still live
    assert sim.cancelled_pending == 0 and sim.heap_size == 0
    assert keep.cancelled


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    h = sim.schedule(0.0, _noop)
    sim.run()
    h.cancel()
    assert sim.cancelled_pending == 0


# ---------------------------------------------------------------------------
# COW snapshot safety
# ---------------------------------------------------------------------------
def _random_image(rng, cow: bool) -> MemoryImage:
    img = MemoryImage(n_pages=16, page_size=64, cow=cow)
    img.write(0, rng.integers(0, 256, size=img.nbytes, dtype=np.uint8))
    img.clear_dirty()
    return img


@pytest.mark.parametrize("seed", range(3))
def test_cow_snapshot_bit_identical_to_copy(rngs: RngRegistry, seed: int):
    rng = rngs.stream(f"cow/{seed}")
    cow = _random_image(rng, cow=True)
    raw = MemoryImage(n_pages=16, page_size=64, cow=False)
    raw.restore(cow.flat)
    for _ in range(6):
        addr = int(rng.integers(0, cow.nbytes - 32))
        data = rng.integers(0, 256, size=32, dtype=np.uint8)
        cow.write(addr, data)
        raw.write(addr, data)
        snap = cow.snapshot()
        assert np.array_equal(snap, raw.snapshot())
        assert np.array_equal(snap, cow.flat)
        cow.recycle_snapshot(snap)
        del snap


def test_recycle_never_corrupts_held_snapshot(rng):
    """A snapshot the caller still references is refused by the recycle
    gate and its bytes stay frozen while the image keeps mutating."""
    img = _random_image(rng, cow=True)
    snap = img.snapshot()
    frozen = snap.copy()
    holder = snap  # second reference — recycle must refuse
    assert img.recycle_snapshot(snap) is False
    img.write(0, rng.integers(0, 256, size=img.nbytes, dtype=np.uint8))
    later = img.snapshot()
    assert np.array_equal(snap, frozen), "held snapshot was mutated"
    assert np.array_equal(later, img.flat)
    assert holder is snap


def test_cow_reuse_path_recopies_only_stale_pages(rng):
    img = _random_image(rng, cow=True)
    snap = img.snapshot()
    assert img.recycle_snapshot(snap) is True
    ident = id(snap)
    del snap
    img.fill_page(3, 0xEE)
    again = img.snapshot()
    assert id(again) == ident, "retired buffer is reused"
    assert np.array_equal(again, img.flat)
