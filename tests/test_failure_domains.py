"""Tests for failure domains: rack-correlated crashes and domain-aware
placement (Fig. 2's controller argument lifted to racks)."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, VirtualCluster
from repro.core import (
    DisklessCheckpointer,
    build_orthogonal_layout,
    LayoutError,
    validate_layout,
)
from repro.failures import (
    Exponential,
    FailureDomainMap,
    FailureInjector,
    draw_domain_schedule,
    racks,
)
from repro.sim import Simulator
from repro.workloads import CheckpointedJob

from conftest import run_process


def _rack_cluster(n_racks=3, nodes_per_rack=2, vms_per_node=2, seed=50):
    sim = Simulator()
    n_nodes = n_racks * nodes_per_rack
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=n_nodes))
    rng = np.random.default_rng(seed)
    for vm in cluster.create_vms_balanced(
        n_nodes * vms_per_node, 1e9, image_pages=16, page_size=64
    ):
        vm.image.write(0, rng.integers(0, 256, 512, dtype=np.uint8))
        vm.image.clear_dirty()
    return sim, cluster, racks(n_nodes, nodes_per_rack), rng


class TestDomainMap:
    def test_racks_helper(self):
        d = racks(6, 2)
        assert d.n_domains == 3
        assert d.domain_of(0) == d.domain_of(1) == 0
        assert d.nodes_in(2) == [4, 5]
        assert d.domains() == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureDomainMap(())
        with pytest.raises(ValueError):
            FailureDomainMap((0, 2))  # not dense
        with pytest.raises(ValueError):
            racks(0, 1)
        with pytest.raises(ValueError):
            racks(4, 2).domain_of(99)


class TestDomainSchedule:
    def test_whole_domain_fails_together(self, rng):
        d = racks(6, 2)
        sched = draw_domain_schedule(rng, Exponential(1 / 100.0), d, horizon=500.0)
        # group events by timestamp: each burst covers exactly one rack
        by_time: dict[float, list[int]] = {}
        for ev in sched.events:
            by_time.setdefault(ev.time, []).append(ev.node_id)
        for t, nodes in by_time.items():
            doms = {d.domain_of(n) for n in nodes}
            assert len(doms) == 1
            assert sorted(nodes) == d.nodes_in(doms.pop())

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            draw_domain_schedule(rng, Exponential(0.1), racks(4, 2), horizon=0.0)


class TestDomainAwarePlacement:
    def test_members_span_distinct_racks(self):
        sim, cluster, domains, _ = _rack_cluster()
        layout = build_orthogonal_layout(cluster, group_size=2, domains=domains)
        for g in layout.groups:
            member_doms = {
                domains.domain_of(cluster.vm(v).node_id)
                for v in g.member_vm_ids
            }
            assert len(member_doms) == g.size
            assert domains.domain_of(g.parity_node) not in member_doms

    def test_domain_validate(self):
        sim, cluster, domains, _ = _rack_cluster()
        aware = build_orthogonal_layout(cluster, 2, domains=domains)
        assert validate_layout(aware, cluster, domains=domains).ok
        # node-orthogonal-only layout generally violates rack orthogonality
        naive = build_orthogonal_layout(cluster, 3)
        report = validate_layout(naive, cluster, domains=domains)
        assert not report.ok

    def test_group_size_bounded_by_domains(self):
        sim, cluster, domains, _ = _rack_cluster(n_racks=2, nodes_per_rack=3)
        with pytest.raises(LayoutError):
            build_orthogonal_layout(cluster, group_size=3, domains=domains)
        # without domains, 3 distinct nodes exist -> fine
        build_orthogonal_layout(cluster, group_size=3)

    def test_no_parity_domain_available_rejected(self):
        sim, cluster, domains, _ = _rack_cluster(n_racks=2, nodes_per_rack=2)
        # group_size 2 uses both racks as members: nowhere for parity
        with pytest.raises(LayoutError):
            build_orthogonal_layout(cluster, group_size=2, domains=domains)


class TestRackFailureSurvival:
    def test_whole_rack_crash_recovers_bit_exact(self):
        """The payoff: rack-aware placement + single XOR parity survives
        a full-rack (2-node simultaneous) crash."""
        sim, cluster, domains, rng = _rack_cluster()
        layout = build_orthogonal_layout(cluster, group_size=2, domains=domains)
        ck = DisklessCheckpointer(cluster, layout)
        committed = {}

        def proc():
            yield from ck.run_cycle()
            for vm in cluster.all_vms:
                committed[vm.vm_id] = (
                    cluster.hypervisor(vm.node_id).committed(vm.vm_id)
                    .payload_flat().copy()
                )
                vm.image.touch_pages(rng.integers(0, 16, 3), rng)
            # rack 1 = nodes 2 and 3 die together
            cluster.kill_node(2)
            cluster.kill_node(3)
            yield from ck.recover(2)
            yield from ck.recover(3)

        run_process(sim, proc())
        for vm in cluster.all_vms:
            assert vm.state.value == "running"
            assert np.array_equal(vm.image.flat, committed[vm.vm_id]), (
                f"vm{vm.vm_id} not bit-exact after rack loss"
            )

    def test_naive_layout_dies_on_rack_crash(self):
        """Without domain awareness, a rack crash costs some group two
        elements — unrecoverable under XOR."""
        sim, cluster, domains, rng = _rack_cluster()
        layout = build_orthogonal_layout(cluster, group_size=3)  # node-aware only
        # confirm some group straddles rack 0 (nodes 0, 1) twice
        assert not validate_layout(layout, cluster, domains=domains).ok
        ck = DisklessCheckpointer(cluster, layout)

        def proc():
            yield from ck.run_cycle()
            cluster.kill_node(0)
            cluster.kill_node(1)
            yield from ck.recover(0)
            yield from ck.recover(1)

        with pytest.raises(RuntimeError):
            run_process(sim, proc())

    def test_end_to_end_job_under_rack_failures(self):
        sim, cluster, domains, rng = _rack_cluster(seed=51)
        layout = build_orthogonal_layout(cluster, group_size=2, domains=domains)
        ck = DisklessCheckpointer(cluster, layout)
        sched = draw_domain_schedule(
            np.random.default_rng(7), Exponential(1 / (2 * 3600.0)),
            domains, horizon=8 * 3600.0, repair_time=60.0,
        )
        inj = FailureInjector(sim, cluster.n_nodes, schedule=sched)
        job = CheckpointedJob(cluster, ck, work=3600.0, interval=600.0,
                              injector=inj, repair_time=60.0)
        inj.start()
        proc = job.start()
        sim.run()
        if proc.ok is False:
            raise proc.value
        assert job.result.completed
