"""Tests for orthogonal RAID group construction (Figs. 1–4 layouts)."""

import pytest

from repro.core import (
    GroupLayout,
    LayoutError,
    RaidGroup,
    build_orthogonal_layout,
    layout_checkpoint_node,
    layout_dvdc,
    layout_firstshot,
)


class TestGroupLayout:
    def test_duplicate_membership_rejected(self):
        with pytest.raises(LayoutError):
            GroupLayout([
                RaidGroup(0, (1, 2), 0),
                RaidGroup(1, (2, 3), 0),
            ])

    def test_group_of(self):
        layout = GroupLayout([RaidGroup(0, (1, 2), 3)])
        assert layout.group_of(1).group_id == 0
        with pytest.raises(LayoutError):
            layout.group_of(99)

    def test_parity_load(self):
        layout = GroupLayout([
            RaidGroup(0, (0,), 5),
            RaidGroup(1, (1,), 5),
            RaidGroup(2, (2,), 6),
        ])
        assert layout.parity_load() == {5: 2, 6: 1}

    def test_replace_group_updates_index(self):
        layout = GroupLayout([RaidGroup(0, (1, 2), 3)])
        layout.replace_group(0, RaidGroup(0, (1, 2), 7))
        assert layout.group_of(1).parity_node == 7
        with pytest.raises(LayoutError):
            layout.replace_group(42, RaidGroup(42, (9,), 0))

    def test_replace_group_with_new_members(self):
        layout = GroupLayout([RaidGroup(0, (1, 2), 3)])
        layout.replace_group(0, RaidGroup(0, (4, 5), 3))
        assert layout.group_of(4).group_id == 0
        with pytest.raises(LayoutError):
            layout.group_of(1)


class TestOrthogonalBuilder:
    def test_dvdc_figure4_layout(self, cluster4):
        cluster4.create_vms_balanced(12, 1e9)
        layout = layout_dvdc(cluster4)
        assert len(layout) == 4
        for g in layout.groups:
            nodes = {cluster4.vm(v).node_id for v in g.member_vm_ids}
            assert len(nodes) == 3  # members on distinct nodes
            assert g.parity_node not in nodes
        # parity rotates: one group per node (flat histogram)
        assert sorted(layout.parity_load().values()) == [1, 1, 1, 1]

    def test_all_vms_covered_exactly_once(self, cluster4):
        cluster4.create_vms_balanced(12, 1e9)
        layout = layout_dvdc(cluster4)
        assert layout.vm_ids == list(range(12))

    def test_uneven_vm_counts_leave_smaller_last_group(self, cluster4):
        # 4, 3, 2, 1 VMs per node
        for node, count in enumerate((4, 3, 2, 1)):
            for _ in range(count):
                cluster4.create_vm(node, 1e9)
        layout = build_orthogonal_layout(cluster4, group_size=3)
        sizes = sorted(g.size for g in layout.groups)
        assert sum(sizes) == 10
        for g in layout.groups:
            nodes = [cluster4.vm(v).node_id for v in g.member_vm_ids]
            assert len(nodes) == len(set(nodes))

    def test_group_size_exceeding_nodes_rejected(self, cluster4):
        cluster4.create_vms_balanced(4, 1e9)
        with pytest.raises(LayoutError):
            build_orthogonal_layout(cluster4, group_size=5)

    def test_group_size_equal_nodes_has_no_parity_home(self, cluster4):
        cluster4.create_vms_balanced(4, 1e9)
        with pytest.raises(LayoutError):
            build_orthogonal_layout(cluster4, group_size=4, parity="rotate")

    def test_fixed_parity_node(self, cluster4):
        # VMs only on nodes 0..2; node 3 dedicated
        for node in range(3):
            cluster4.create_vm(node, 1e9)
            cluster4.create_vm(node, 1e9)
        layout = build_orthogonal_layout(cluster4, 3, parity=3)
        assert all(g.parity_node == 3 for g in layout.groups)

    def test_fixed_parity_hosting_member_rejected(self, cluster4):
        cluster4.create_vms_balanced(8, 1e9)
        with pytest.raises(LayoutError):
            build_orthogonal_layout(cluster4, 2, parity=0)

    def test_invalid_parity_arg(self, cluster4):
        cluster4.create_vms_balanced(4, 1e9)
        with pytest.raises(LayoutError):
            build_orthogonal_layout(cluster4, 2, parity="magic")
        with pytest.raises(LayoutError):
            build_orthogonal_layout(cluster4, 2, parity=99)
        with pytest.raises(LayoutError):
            build_orthogonal_layout(cluster4, 0)

    def test_homeless_vm_rejected(self, cluster4):
        vm = cluster4.create_vm(0, 1e9)
        cluster4.node(0).evict(vm)
        with pytest.raises(LayoutError):
            build_orthogonal_layout(cluster4, 1, vms=[vm])


class TestFirstShot:
    def test_figure1_layout(self, cluster4):
        for node in range(3):
            cluster4.create_vm(node, 1e9)
        layout = layout_firstshot(cluster4)
        assert len(layout) == 1
        g = layout.groups[0]
        assert g.size == 3
        assert g.parity_node == 3

    def test_requires_one_vm_per_node(self, cluster4):
        cluster4.create_vm(0, 1e9)
        cluster4.create_vm(0, 1e9)
        with pytest.raises(LayoutError):
            layout_firstshot(cluster4)

    def test_requires_free_parity_node(self, cluster4):
        cluster4.create_vms_balanced(4, 1e9)
        with pytest.raises(LayoutError):
            layout_firstshot(cluster4)

    def test_explicit_parity_node_must_be_empty(self, cluster4):
        for node in range(3):
            cluster4.create_vm(node, 1e9)
        with pytest.raises(LayoutError):
            layout_firstshot(cluster4, parity_node=0)


class TestCheckpointNode:
    def test_figure3_layout(self, cluster4):
        # compute nodes 0..2, checkpoint node 3
        for node in range(3):
            for _ in range(3):
                cluster4.create_vm(node, 1e9)
        layout = layout_checkpoint_node(cluster4, checkpoint_node=3)
        assert len(layout) == 3
        assert all(g.parity_node == 3 for g in layout.groups)
        for g in layout.groups:
            nodes = {cluster4.vm(v).node_id for v in g.member_vm_ids}
            assert 3 not in nodes
            assert len(nodes) == g.size

    def test_checkpoint_node_hosting_vms_rejected(self, cluster4):
        cluster4.create_vms_balanced(8, 1e9)
        with pytest.raises(LayoutError):
            layout_checkpoint_node(cluster4, checkpoint_node=0)
