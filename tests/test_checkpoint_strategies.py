"""Tests for capture strategies, compression, and the coordinator."""

import numpy as np
import pytest

from repro.checkpoint import (
    CaptureSpec,
    CompressionModel,
    CoordinatedCheckpoint,
    ForkedCapture,
    FullCapture,
    IncrementalCapture,
    NO_COMPRESSION,
    compress_delta,
    compressed_size,
)
from repro.cluster import CheckpointKind, VMState

from conftest import run_process


def _vm_and_hv(cluster, node=0):
    vm = cluster.create_vm(node, 1e9, dirty_rate=1e6, image_pages=16, page_size=64)
    vm.image.write(0, b"some starting content")
    vm.image.clear_dirty()
    return vm, cluster.hypervisor(node)


class TestCaptureSpec:
    def test_defaults_match_paper(self):
        assert CaptureSpec().pause_fixed == pytest.approx(40e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            CaptureSpec(pause_fixed=-1.0)
        with pytest.raises(ValueError):
            CaptureSpec(copy_bandwidth=0.0)


class TestStrategies:
    def test_full_pause_includes_copy(self, cluster4):
        vm, hv = _vm_and_hv(cluster4)
        spec = CaptureSpec(pause_fixed=0.04, copy_bandwidth=1e9)
        out = FullCapture(spec).capture(hv, vm, 0, 0.0, 0.0)
        assert out.pause_seconds == pytest.approx(0.04 + 1.0)
        assert out.image.kind == CheckpointKind.FULL

    def test_forked_pause_is_fixed(self, cluster4):
        vm, hv = _vm_and_hv(cluster4)
        out = ForkedCapture().capture(hv, vm, 0, 0.0, 0.0)
        assert out.pause_seconds == pytest.approx(40e-3)
        assert out.image.logical_bytes == vm.memory_bytes

    def test_incremental_first_epoch_is_full(self, cluster4):
        vm, hv = _vm_and_hv(cluster4)
        out = IncrementalCapture().capture(hv, vm, 0, 0.0, 0.0)
        assert out.image.kind == CheckpointKind.FULL

    def test_incremental_logical_estimate_nonfunctional(self, cluster4):
        vm = cluster4.create_vm(1, 1e9, dirty_rate=1e6)
        hv = cluster4.hypervisor(1)
        out = IncrementalCapture().capture(hv, vm, 3, 0.0, elapsed=100.0)
        assert out.image.kind == CheckpointKind.INCREMENTAL
        assert out.image.logical_bytes == pytest.approx(1e8)

    def test_incremental_saturates_at_image_size(self, cluster4):
        vm = cluster4.create_vm(1, 1e9, dirty_rate=1e6)
        hv = cluster4.hypervisor(1)
        out = IncrementalCapture().capture(hv, vm, 3, 0.0, elapsed=1e9)
        assert out.image.logical_bytes == vm.memory_bytes

    def test_incremental_functional_uses_dirty_log(self, cluster4):
        vm, hv = _vm_and_hv(cluster4)
        hv.commit_checkpoint(hv.capture_full(vm, 0.0, 0))
        vm.image.write(100, b"dirty")
        out = IncrementalCapture().capture(hv, vm, 1, 0.0, 50.0)
        assert out.image.payload.n_pages == 1


class TestCompressionModel:
    def test_output_and_cpu(self):
        m = CompressionModel(ratio=0.5, throughput=1e9)
        assert m.output_bytes(1e9) == pytest.approx(5e8)
        assert m.cpu_seconds(1e9) == pytest.approx(1.0)

    def test_no_compression_free(self):
        assert NO_COMPRESSION.output_bytes(100.0) == 100.0
        assert NO_COMPRESSION.cpu_seconds(1e12) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CompressionModel(ratio=0.0)
        with pytest.raises(ValueError):
            CompressionModel(ratio=1.5)
        with pytest.raises(ValueError):
            CompressionModel(ratio=0.5, throughput=0.0)


class TestFunctionalCompression:
    def test_delta_roundtrip_bit_exact(self, rng):
        from repro.cluster import MemoryImage

        img = MemoryImage(16, page_size=64)
        img.write(0, rng.integers(0, 256, 200, dtype=np.uint8))
        img.write(640, b"\x00" * 64)  # a zero page
        delta = img.capture_delta()
        comp = compress_delta(delta)
        assert len(comp.zero_indices) >= 1
        back = comp.decompress()
        assert np.array_equal(back.indices, delta.indices)
        assert np.array_equal(back.pages, delta.pages)

    def test_zero_pages_compress_away(self):
        from repro.cluster import MemoryImage

        img = MemoryImage(8, page_size=128)
        img.touch_pages(np.arange(8))  # dirty but still zero content
        comp = compress_delta(img.capture_delta())
        assert len(comp.blobs) == 0
        assert comp.compressed_bytes < comp.raw_bytes

    def test_random_data_compresses_poorly(self, rng):
        buf = rng.integers(0, 256, 4096, dtype=np.uint8)
        assert compressed_size(buf) > 3000

    def test_repetitive_data_compresses_well(self):
        assert compressed_size(b"A" * 4096) < 200


class TestCoordinator:
    def test_barrier_pause_is_max_over_nodes(self, cluster4, sim):
        vms = cluster4.create_vms_balanced(8, 1e9)  # 2 per node
        coord = CoordinatedCheckpoint(cluster4, ForkedCapture())

        def proc():
            outcomes, pause = yield from coord.capture_all(vms, 0, 0.0)
            return outcomes, pause, sim.now

        outcomes, pause, t = run_process(sim, proc())
        # 2 VMs per node, 40ms each, serialized per node = 80ms
        assert pause == pytest.approx(0.08)
        assert t == pytest.approx(0.08)
        assert len(outcomes) == 8

    def test_vms_resumed_after_barrier(self, cluster4, sim):
        vms = cluster4.create_vms_balanced(4, 1e9)
        coord = CoordinatedCheckpoint(cluster4, ForkedCapture())

        def proc():
            yield from coord.capture_all(vms, 0, 0.0)

        run_process(sim, proc())
        assert all(vm.state == VMState.RUNNING for vm in vms)

    def test_failed_vms_skipped(self, cluster4, sim):
        vms = cluster4.create_vms_balanced(4, 1e9)
        vms[2].mark_failed()
        coord = CoordinatedCheckpoint(cluster4, ForkedCapture())

        def proc():
            outcomes, _ = yield from coord.capture_all(vms, 0, 0.0)
            return outcomes

        outcomes = run_process(sim, proc())
        assert len(outcomes) == 3
        assert all(o.image.vm_id != 2 for o in outcomes)
