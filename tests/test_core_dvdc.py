"""Tests for the diskless checkpoint protocol across all three
architectures (Figs. 1, 3, 4): cycles, parity invariants, recovery."""

import numpy as np
import pytest

from repro.checkpoint import IncrementalCapture
from repro.cluster import ClusterSpec, VirtualCluster, VMState, xor_reduce
from repro.core import checkpoint_node, dvdc, first_shot, validate_layout

from conftest import run_process


def _parity_matches_committed(cluster, ck):
    """The diskless safety invariant: every group's stored parity equals
    the XOR of its members' committed checkpoint payloads."""
    for g in ck.layout.groups:
        block = cluster.node(g.parity_node).parity_store[g.group_id]
        payloads = []
        for v in g.member_vm_ids:
            vm = cluster.vm(v)
            payloads.append(
                cluster.hypervisor(vm.node_id).committed(v).payload_flat()
            )
        if not np.array_equal(block.data, xor_reduce(payloads)):
            return False
    return True


class TestDVDCCycle:
    def test_full_epoch_commits_parity_everywhere(self, paper_cluster, sim):
        ck = dvdc(paper_cluster)

        def proc():
            r = yield from ck.run_cycle()
            return r

        r = run_process(sim, proc())
        assert r.committed
        assert ck.committed_epoch == 0
        assert _parity_matches_committed(paper_cluster, ck)
        # parity work evenly distributed (Fig. 4): every node XORs
        assert sorted(r.xor_seconds_by_node) == [0, 1, 2, 3]
        vals = list(r.xor_seconds_by_node.values())
        assert max(vals) == pytest.approx(min(vals))

    def test_overhead_is_barrier_pause(self, paper_cluster, sim):
        ck = dvdc(paper_cluster)

        def proc():
            r = yield from ck.run_cycle()
            return r

        r = run_process(sim, proc())
        assert r.overhead == pytest.approx(0.12)  # 3 VMs/node x 40 ms

    def test_latency_far_below_diskful(self, paper_cluster, sim):
        """The headline qualitative claim: peer exchange beats NAS fan-in."""
        ck = dvdc(paper_cluster)

        def proc():
            r = yield from ck.run_cycle()
            return r

        r = run_process(sim, proc())
        # 3 GB per node over its own 125 MB/s NIC ~= 24 s  (diskful: ~230 s)
        assert r.latency < 40.0

    def test_incremental_epoch_moves_only_deltas(self, paper_cluster, sim):
        ck = dvdc(paper_cluster, strategy=IncrementalCapture())

        def proc():
            yield from ck.run_cycle()
            for vm in paper_cluster.all_vms:
                vm.image.write(64, b"small change")
            yield sim.timeout(10.0)
            r1 = yield from ck.run_cycle()
            return r1

        r1 = run_process(sim, proc())
        assert r1.network_bytes < 12e9 / 10
        assert _parity_matches_committed(paper_cluster, ck)

    def test_many_incremental_epochs_keep_invariant(self, paper_cluster, sim, rng):
        ck = dvdc(paper_cluster, strategy=IncrementalCapture())

        def proc():
            yield from ck.run_cycle()
            for _ in range(5):
                for vm in paper_cluster.all_vms:
                    vm.image.touch_pages(rng.integers(0, 32, 4), rng)
                yield sim.timeout(5.0)
                yield from ck.run_cycle()

        run_process(sim, proc())
        assert ck.committed_epoch == 5
        assert _parity_matches_committed(paper_cluster, ck)

    def test_history_accumulates(self, paper_cluster, sim):
        ck = dvdc(paper_cluster)

        def proc():
            yield from ck.run_cycle()
            yield from ck.run_cycle()

        run_process(sim, proc())
        assert [h.epoch for h in ck.history] == [0, 1]


class TestDVDCRecovery:
    def _checkpoint_then_kill(self, cluster, sim, ck, node, rng):
        committed = {}

        def proc():
            yield from ck.run_cycle()
            for vm in cluster.all_vms:
                committed[vm.vm_id] = (
                    cluster.hypervisor(vm.node_id).committed(vm.vm_id)
                    .payload_flat().copy()
                )
                vm.image.touch_pages(rng.integers(0, 32, 3), rng)
            cluster.kill_node(node)
            rep = yield from ck.recover(node)
            return rep

        rep = run_process(sim, proc())
        return rep, committed

    def test_reconstruction_bit_exact(self, paper_cluster, sim, rng):
        ck = dvdc(paper_cluster)
        rep, committed = self._checkpoint_then_kill(paper_cluster, sim, ck, 2, rng)
        assert sorted(rep.reconstructed) == [2, 6, 10]
        for vm in paper_cluster.all_vms:
            assert vm.state == VMState.RUNNING
            assert np.array_equal(vm.image.flat, committed[vm.vm_id])

    def test_survivors_roll_back_locally(self, paper_cluster, sim, rng):
        ck = dvdc(paper_cluster)
        rep, _ = self._checkpoint_then_kill(paper_cluster, sim, ck, 0, rng)
        assert len(rep.rolled_back) == 9

    def test_recovery_avoids_nas_entirely(self, paper_cluster, sim, rng):
        ck = dvdc(paper_cluster)
        self._checkpoint_then_kill(paper_cluster, sim, ck, 1, rng)
        assert len(paper_cluster.nas) == 0
        assert paper_cluster.nas.disk.ops == 0

    def test_parity_node_loss_reencodes(self, paper_cluster, sim, rng):
        ck = dvdc(paper_cluster)
        rep, _ = self._checkpoint_then_kill(paper_cluster, sim, ck, 3, rng)
        # node 3 held one group's parity; that group lost no member only
        # if none of its members were on node 3 — with the Fig. 4 layout
        # node 3 hosts members of 3 groups and parity of 1
        assert len(rep.reencoded_groups) == 1
        g = rep.reencoded_groups[0]
        new_home = ck.layout.groups_with_parity_on(3)
        assert all(gg.group_id != g for gg in new_home)

    def test_recover_without_epoch_raises(self, paper_cluster, sim):
        ck = dvdc(paper_cluster)
        paper_cluster.kill_node(0)

        def proc():
            yield from ck.recover(0)

        with pytest.raises(RuntimeError):
            run_process(sim, proc())

    def test_post_recovery_epochs_consistent(self, paper_cluster, sim, rng):
        ck = dvdc(paper_cluster, strategy=IncrementalCapture())

        def proc():
            yield from ck.run_cycle()
            paper_cluster.kill_node(1)
            yield from ck.recover(1)
            for vm in paper_cluster.all_vms:
                vm.image.touch_pages(rng.integers(0, 32, 4), rng)
            yield sim.timeout(5.0)
            yield from ck.run_cycle()

        run_process(sim, proc())
        assert _parity_matches_committed(paper_cluster, ck)

    def test_heal_restores_validity_after_repair(self, paper_cluster, sim, rng):
        ck = dvdc(paper_cluster)

        def proc():
            yield from ck.run_cycle()
            paper_cluster.kill_node(1)
            yield from ck.recover(1)
            paper_cluster.repair_node(1)
            healed = yield from ck.heal()
            return healed

        healed = run_process(sim, proc())
        assert healed  # something was degraded and got fixed
        assert validate_layout(ck.layout, paper_cluster).ok
        assert _parity_matches_committed(paper_cluster, ck)


class TestFirstShotArchitecture:
    def _build(self):
        sim_ = __import__("repro.sim", fromlist=["Simulator"]).Simulator()
        cluster = VirtualCluster(sim_, ClusterSpec(n_nodes=4))
        rng = np.random.default_rng(5)
        for node in range(3):
            vm = cluster.create_vm(node, 1e9, image_pages=16, page_size=64)
            vm.image.write(0, rng.integers(0, 256, 512, dtype=np.uint8))
            vm.image.clear_dirty()
        return sim_, cluster

    def test_fanin_single_group(self):
        sim, cluster = self._build()
        ck = first_shot(cluster)
        assert len(ck.layout) == 1
        assert ck.layout.groups[0].parity_node == 3

    def test_cycle_and_recovery(self, rng):
        sim, cluster = self._build()
        ck = first_shot(cluster)
        committed = {}

        def proc():
            yield from ck.run_cycle()
            for vm in cluster.all_vms:
                committed[vm.vm_id] = (
                    cluster.hypervisor(vm.node_id).committed(vm.vm_id)
                    .payload_flat().copy()
                )
            cluster.kill_node(0)
            rep = yield from ck.recover(0)
            return rep

        rep = run_process(sim, proc())
        assert list(rep.reconstructed) == [0]
        vm0 = cluster.vm(0)
        assert np.array_equal(vm0.image.flat, committed[0])

    def test_parity_work_concentrated(self):
        sim, cluster = self._build()
        ck = first_shot(cluster)

        def proc():
            r = yield from ck.run_cycle()
            return r

        r = run_process(sim, proc())
        assert list(r.xor_seconds_by_node) == [3]


class TestCheckpointNodeArchitecture:
    def _build(self):
        sim_ = __import__("repro.sim", fromlist=["Simulator"]).Simulator()
        cluster = VirtualCluster(sim_, ClusterSpec(n_nodes=4))
        rng = np.random.default_rng(6)
        for node in range(3):
            for _ in range(3):
                vm = cluster.create_vm(node, 1e9, image_pages=16, page_size=64)
                vm.image.write(0, rng.integers(0, 256, 512, dtype=np.uint8))
                vm.image.clear_dirty()
        return sim_, cluster

    def test_all_parity_on_dedicated_node(self):
        sim, cluster = self._build()
        ck = checkpoint_node(cluster, node_id=3)

        def proc():
            r = yield from ck.run_cycle()
            return r

        r = run_process(sim, proc())
        assert list(r.xor_seconds_by_node) == [3]
        assert len(cluster.node(3).parity_store) == 3

    def test_fanin_slower_than_dvdc(self):
        """Fig. 3 vs Fig. 4: concentrating parity serializes the exchange."""
        sim_a, cluster_a = self._build()
        ck_a = checkpoint_node(cluster_a, node_id=3)

        def proc_a():
            r = yield from ck_a.run_cycle()
            return r

        r_fig3 = run_process(sim_a, proc_a())

        # Fig. 4 with same total VM count (12 VMs over 4 nodes)
        sim_b = __import__("repro.sim", fromlist=["Simulator"]).Simulator()
        cluster_b = VirtualCluster(sim_b, ClusterSpec(n_nodes=4))
        cluster_b.create_vms_balanced(12, 1e9)
        ck_b = dvdc(cluster_b)

        def proc_b():
            r = yield from ck_b.run_cycle()
            return r

        r_fig4 = run_process(sim_b, proc_b())
        assert r_fig3.latency > r_fig4.latency
