"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, VirtualCluster
from repro.sim import RngRegistry, Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(12345)


@pytest.fixture
def cluster4(sim: Simulator) -> VirtualCluster:
    """The Fig. 4 skeleton: 4 nodes, no VMs yet."""
    return VirtualCluster(sim, ClusterSpec(n_nodes=4))


@pytest.fixture
def paper_cluster(sim: Simulator) -> VirtualCluster:
    """Fig. 4 complete: 4 nodes × 3 functional VMs with seeded content."""
    cluster = VirtualCluster(sim, ClusterSpec(n_nodes=4))
    vms = cluster.create_vms_balanced(
        12, 1e9, dirty_rate=1e6, image_pages=32, page_size=128
    )
    rng = np.random.default_rng(777)
    for vm in vms:
        vm.image.write(0, rng.integers(0, 256, 2048, dtype=np.uint8))
        vm.image.clear_dirty()
    return cluster


def run_process(sim: Simulator, gen):
    """Run a generator to completion; re-raise its failure, return value."""
    proc = sim.process(gen)
    sim.run()
    if proc.ok is False:
        raise proc.value
    assert proc.triggered, "process never finished (deadlock?)"
    return proc.value
