"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.mtbf == 3.0
        assert args.job == 48.0
        assert not args.plot
        assert args.jobs == 1
        assert args.store is None
        assert not args.no_resume

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.preset == "fig5"
        assert args.jobs == 1
        assert args.spec is None

    def test_campaign_preset_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "bogus"])

    def test_epoch_arch_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["epoch", "--arch", "bogus"])

    def test_job_flags(self):
        args = build_parser().parse_args(
            ["job", "--method", "diskful", "--overlap", "--seeds", "2"]
        )
        assert args.method == "diskful"
        assert args.overlap
        assert args.seeds == 2


class TestCommands:
    def test_fig5_output(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "diskless" in out and "diskful" in out
        assert "reduces expected completion time" in out

    def test_fig5_plot(self, capsys):
        assert main(["fig5", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "X" in out  # optima marks on the ASCII canvas

    def test_epoch_all_architectures(self, capsys):
        for arch in ("dvdc", "diskful", "checkpoint-node", "firstshot"):
            assert main(["epoch", "--arch", arch]) == 0
            out = capsys.readouterr().out
            assert arch in out

    def test_job_runs(self, capsys):
        assert main([
            "job", "--work", "0.5", "--seeds", "1", "--node-mtbf", "24",
        ]) == 0
        out = capsys.readouterr().out
        assert "T/T_ideal" in out

    def test_job_overlap_diskful(self, capsys):
        assert main([
            "job", "--method", "diskful", "--work", "0.5", "--seeds", "1",
            "--node-mtbf", "24", "--overlap",
        ]) == 0
        assert "overlapped" in capsys.readouterr().out

    def test_validate_passes(self, capsys):
        assert main(["validate", "--runs", "800", "--job", "4"]) == 0
        out = capsys.readouterr().out
        assert "Monte-Carlo" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--size", str(1 << 20), "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "memory_xor_bandwidth" in out


class TestCampaignCommand:
    def test_fig5_jobs_output_identical_to_serial(self, capsys):
        """--jobs N>1 must reproduce the serial table byte-for-byte."""
        assert main(["fig5"]) == 0
        serial = capsys.readouterr().out
        assert main(["fig5", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_campaign_fig5_smoke(self, capsys):
        assert main(["campaign", "fig5", "--points", "8", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "campaign 'fig5'" in out
        assert "diskless" in out

    def test_campaign_store_resume(self, capsys, tmp_path):
        store = str(tmp_path / "store")
        assert main(["campaign", "fig5", "--points", "6",
                     "--store", store]) == 0
        first = capsys.readouterr().out
        assert main(["campaign", "fig5", "--points", "6",
                     "--store", store]) == 0
        second = capsys.readouterr().out

        def counts(out):
            # summary row: tasks executed cached failed jobs wall-clock
            row = [ln for ln in out.splitlines() if ln.startswith("12")][0]
            return [int(x) for x in row.split()[:4]]

        # 6 points x 2 methods: all executed cold, none on resume
        assert counts(first) == [12, 12, 0, 0]
        assert counts(second) == [12, 0, 12, 0]

    def test_campaign_spec_file(self, capsys, tmp_path):
        import json

        spec = {
            "name": "mini",
            "kind": "fig5_point",
            "base": {"lam": 9.26e-5, "T": 172800.0},
            "grid": {"interval": [60.0, 600.0],
                     "method": ["diskful", "diskless"]},
            "seeded": False,
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(spec))
        assert main(["campaign", "--spec", str(path), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "campaign 'mini'" in out

    def test_validate_jobs_identical(self, capsys):
        args = ["validate", "--runs", "512", "--job", "4"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--jobs", "3"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_study_jobs_identical(self, capsys):
        args = ["study", "--work", "0.2", "--seeds", "1", "--node-mtbf",
                "48", "--methods", "dvdc"]
        assert main(args) == 0
        serial = capsys.readouterr().out
        assert main(args + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial


class TestStudyCommand:
    def test_study_runs(self, capsys):
        assert main([
            "study", "--work", "0.5", "--seeds", "1",
            "--node-mtbf", "48", "--methods", "dvdc", "diskful",
        ]) == 0
        out = capsys.readouterr().out
        assert "paired study" in out
        assert "dvdc" in out and "diskful" in out

    def test_study_overlap_suffix(self, capsys):
        assert main([
            "study", "--work", "0.5", "--seeds", "1",
            "--node-mtbf", "48", "--methods", "diskful+overlap",
        ]) == 0
        assert "diskful+overlap" in capsys.readouterr().out


class TestTelemetryCommands:
    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_trace_export_defaults(self):
        args = build_parser().parse_args(["trace", "export"])
        assert args.format == "chrome"
        assert args.clock == "sim"
        assert args.scenario == "epoch"
        assert args.out is None

    def test_metrics_defaults(self):
        args = build_parser().parse_args(["metrics"])
        assert args.format == "prom"
        assert args.scenario == "epoch"

    def test_trace_export_chrome_validates(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        assert main(["trace", "export", "--scenario", "epoch",
                     "--arch", "diskful", "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        dur = [e for e in events if e["ph"] in "BE"]
        assert dur, "no duration events exported"
        ts = [e["ts"] for e in dur]
        assert ts == sorted(ts)
        stacks = {}
        for e in dur:
            s = stacks.setdefault(e["tid"], [])
            if e["ph"] == "B":
                s.append(e["name"])
            else:
                assert s.pop() == e["name"]
        assert all(not s for s in stacks.values())
        assert "wrote" in capsys.readouterr().out

    def test_trace_export_jsonl(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.jsonl"
        assert main(["trace", "export", "--format", "jsonl",
                     "--out", str(out)]) == 0
        lines = out.read_text().splitlines()
        docs = [json.loads(line) for line in lines]
        assert docs[-1]["type"] == "metrics_snapshot"
        assert any(d["type"] == "span" for d in docs)

    def test_metrics_prom_output_parses(self, capsys):
        from repro.telemetry import parse_prometheus_text

        assert main(["metrics", "--scenario", "epoch"]) == 0
        text = capsys.readouterr().out
        parsed = parse_prometheus_text(text)
        assert "repro_sim_events_total" in parsed
        assert "repro_checkpoint_pause_seconds" in parsed

    def test_metrics_table_output(self, capsys):
        assert main(["metrics", "--format", "table"]) == 0
        out = capsys.readouterr().out
        assert "repro_sim_events_total" in out

    def test_metrics_prom_to_file(self, tmp_path, capsys):
        from repro.telemetry import parse_prometheus_text

        out = tmp_path / "metrics.prom"
        assert main(["metrics", "--out", str(out)]) == 0
        assert "repro_sim_events_total" in parse_prometheus_text(
            out.read_text()
        )

    def test_fig5_scenario_campaign_metrics(self, capsys):
        from repro.telemetry import parse_prometheus_text

        assert main(["metrics", "--scenario", "fig5", "--points", "8"]) == 0
        parsed = parse_prometheus_text(capsys.readouterr().out)
        assert "repro_campaign_tasks_total" in parsed
        assert "repro_campaign_task_seconds" in parsed
