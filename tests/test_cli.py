"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig5_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.mtbf == 3.0
        assert args.job == 48.0
        assert not args.plot

    def test_epoch_arch_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["epoch", "--arch", "bogus"])

    def test_job_flags(self):
        args = build_parser().parse_args(
            ["job", "--method", "diskful", "--overlap", "--seeds", "2"]
        )
        assert args.method == "diskful"
        assert args.overlap
        assert args.seeds == 2


class TestCommands:
    def test_fig5_output(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "diskless" in out and "diskful" in out
        assert "reduces expected completion time" in out

    def test_fig5_plot(self, capsys):
        assert main(["fig5", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "X" in out  # optima marks on the ASCII canvas

    def test_epoch_all_architectures(self, capsys):
        for arch in ("dvdc", "diskful", "checkpoint-node", "firstshot"):
            assert main(["epoch", "--arch", arch]) == 0
            out = capsys.readouterr().out
            assert arch in out

    def test_job_runs(self, capsys):
        assert main([
            "job", "--work", "0.5", "--seeds", "1", "--node-mtbf", "24",
        ]) == 0
        out = capsys.readouterr().out
        assert "T/T_ideal" in out

    def test_job_overlap_diskful(self, capsys):
        assert main([
            "job", "--method", "diskful", "--work", "0.5", "--seeds", "1",
            "--node-mtbf", "24", "--overlap",
        ]) == 0
        assert "overlapped" in capsys.readouterr().out

    def test_validate_passes(self, capsys):
        assert main(["validate", "--runs", "800", "--job", "4"]) == 0
        out = capsys.readouterr().out
        assert "Monte-Carlo" in out

    def test_calibrate(self, capsys):
        assert main(["calibrate", "--size", str(1 << 20), "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "memory_xor_bandwidth" in out


class TestStudyCommand:
    def test_study_runs(self, capsys):
        assert main([
            "study", "--work", "0.5", "--seeds", "1",
            "--node-mtbf", "48", "--methods", "dvdc", "diskful",
        ]) == 0
        out = capsys.readouterr().out
        assert "paired study" in out
        assert "dvdc" in out and "diskful" in out

    def test_study_overlap_suffix(self, capsys):
        assert main([
            "study", "--work", "0.5", "--seeds", "1",
            "--node-mtbf", "48", "--methods", "diskful+overlap",
        ]) == 0
        assert "diskful+overlap" in capsys.readouterr().out
