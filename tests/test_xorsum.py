"""Tests for the XOR kernels."""

import numpy as np
import pytest

from repro.cluster import (
    as_u8,
    is_zero,
    reconstruct_missing,
    xor_into,
    xor_pairs,
    xor_reduce,
)


class TestAsU8:
    def test_bytes_roundtrip(self):
        arr = as_u8(b"\x01\x02\x03")
        assert arr.dtype == np.uint8
        assert list(arr) == [1, 2, 3]

    def test_ndarray_view_no_copy(self):
        src = np.arange(16, dtype=np.uint8)
        v = as_u8(src)
        v[0] = 99
        assert src[0] == 99

    def test_multidim_flattened(self):
        src = np.zeros((4, 4), dtype=np.uint8)
        assert as_u8(src).shape == (16,)


class TestXor:
    def test_reduce_identity(self, rng):
        a = rng.integers(0, 256, 64, dtype=np.uint8)
        assert np.array_equal(xor_reduce([a]), a)
        assert xor_reduce([a]) is not a  # copy

    def test_reduce_self_inverse(self, rng):
        a = rng.integers(0, 256, 64, dtype=np.uint8)
        assert is_zero(xor_reduce([a, a]))

    def test_reduce_associative_commutative(self, rng):
        bufs = [rng.integers(0, 256, 32, dtype=np.uint8) for _ in range(4)]
        p1 = xor_reduce(bufs)
        p2 = xor_reduce(bufs[::-1])
        assert np.array_equal(p1, p2)

    def test_reduce_empty_rejected(self):
        with pytest.raises(ValueError):
            xor_reduce([])

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            xor_reduce([np.zeros(4, np.uint8), np.zeros(5, np.uint8)])

    def test_xor_into_inplace(self, rng):
        a = rng.integers(0, 256, 16, dtype=np.uint8)
        b = rng.integers(0, 256, 16, dtype=np.uint8)
        expected = np.bitwise_xor(a, b)
        out = xor_into(a, b)
        assert out is a
        assert np.array_equal(a, expected)

    def test_xor_into_strided_dst_updated(self, rng):
        """Regression: xor_into on a non-contiguous dst used to XOR a
        temporary (as_u8 copies strided views) and drop the update."""
        backing = rng.integers(0, 256, (8, 8), dtype=np.uint8)
        src = rng.integers(0, 256, 32, dtype=np.uint8)
        # a column block: flattening it cannot be expressed as a single
        # stride, so as_u8 is forced to copy
        dst = backing[:, :4]
        assert not dst.flags["C_CONTIGUOUS"]
        assert not np.shares_memory(np.asarray(dst).reshape(-1), dst)
        untouched = backing[:, 4:].copy()
        expected = np.bitwise_xor(dst.reshape(-1).copy(), src)
        out = xor_into(dst, src)
        assert out is dst
        assert np.array_equal(dst.reshape(-1), expected)
        # the columns outside the view are untouched
        assert np.array_equal(backing[:, 4:], untouched)

    def test_xor_into_strided_src(self, rng):
        backing = rng.integers(0, 256, 64, dtype=np.uint8)
        src = backing[::2]
        dst = rng.integers(0, 256, 32, dtype=np.uint8)
        expected = np.bitwise_xor(dst.copy(), src)
        xor_into(dst, src)
        assert np.array_equal(dst, expected)

    def test_xor_into_bytearray_mutated(self, rng):
        dst = bytearray(rng.integers(0, 256, 16, dtype=np.uint8).tobytes())
        src = rng.integers(0, 256, 16, dtype=np.uint8)
        expected = np.bitwise_xor(np.frombuffer(bytes(dst), np.uint8), src)
        out = xor_into(dst, src)
        assert out is dst
        assert np.array_equal(np.frombuffer(bytes(dst), np.uint8), expected)

    def test_xor_into_bytes_rejected(self):
        with pytest.raises(TypeError):
            xor_into(b"\x00\x01", np.zeros(2, np.uint8))

    def test_xor_pairs_fresh(self, rng):
        a = rng.integers(0, 256, 16, dtype=np.uint8)
        b = rng.integers(0, 256, 16, dtype=np.uint8)
        c = xor_pairs(a, b)
        assert np.array_equal(np.bitwise_xor(c, b), a)

    def test_reconstruct_missing(self, rng):
        members = [rng.integers(0, 256, 128, dtype=np.uint8) for _ in range(5)]
        parity = xor_reduce(members)
        for lost in range(5):
            survivors = [m for i, m in enumerate(members) if i != lost]
            rebuilt = reconstruct_missing(survivors, parity)
            assert np.array_equal(rebuilt, members[lost])

    def test_is_zero(self):
        assert is_zero(np.zeros(10, np.uint8))
        assert not is_zero(np.array([0, 1, 0], np.uint8))
        assert is_zero(b"\x00\x00")
