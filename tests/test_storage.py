"""Tests for the disk model and the NAS object store."""

import pytest

from repro.storage import NAS, Disk, DiskSpec, StorageError

from conftest import run_process


class TestDiskSpec:
    def test_service_time(self):
        spec = DiskSpec(bandwidth=100.0, seek_time=0.5)
        assert spec.service_time(200.0) == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskSpec(bandwidth=0.0)
        with pytest.raises(ValueError):
            DiskSpec(seek_time=-1.0)
        with pytest.raises(ValueError):
            DiskSpec(channels=0)
        with pytest.raises(ValueError):
            DiskSpec().service_time(-5.0)


class TestDisk:
    def test_single_write_time(self, sim):
        disk = Disk(sim, DiskSpec(bandwidth=100.0, seek_time=0.5))

        def proc():
            yield from disk.write(200.0)
            return sim.now

        assert run_process(sim, proc()) == pytest.approx(2.5)
        assert disk.bytes_written == 200.0
        assert disk.ops == 1

    def test_fifo_spindle_serializes(self, sim):
        disk = Disk(sim, DiskSpec(bandwidth=100.0, seek_time=0.0))
        done = []

        def writer(n):
            yield from disk.write(100.0)
            done.append((n, sim.now))

        for i in range(3):
            sim.process(writer(i))
        sim.run()
        assert done == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_channels_parallelize(self, sim):
        disk = Disk(sim, DiskSpec(bandwidth=100.0, seek_time=0.0, channels=3))
        done = []

        def writer(n):
            yield from disk.write(100.0)
            done.append(sim.now)

        for i in range(3):
            sim.process(writer(i))
        sim.run()
        assert done == [1.0, 1.0, 1.0]

    def test_read_accounting(self, sim):
        disk = Disk(sim)

        def proc():
            yield from disk.read(1000.0)

        run_process(sim, proc())
        assert disk.bytes_read == 1000.0


class TestNAS:
    def test_store_and_fetch_roundtrip(self, sim):
        nas = NAS(sim)

        def proc():
            obj = yield from nas.store("vm0/e0", 100.0, payload={"x": 1})
            assert obj.version == 0
            got = yield from nas.fetch("vm0/e0")
            return got.payload

        assert run_process(sim, proc()) == {"x": 1}

    def test_version_advances_on_overwrite(self, sim):
        nas = NAS(sim)

        def proc():
            yield from nas.store("k", 10.0)
            obj = yield from nas.store("k", 20.0)
            return obj

        obj = run_process(sim, proc())
        assert obj.version == 1
        assert nas.bytes_stored == 20.0
        assert len(nas) == 1

    def test_missing_key_raises(self, sim):
        nas = NAS(sim)
        with pytest.raises(StorageError):
            nas.lookup("ghost")

    def test_capacity_enforced(self, sim):
        nas = NAS(sim, capacity_bytes=100.0)

        def proc():
            yield from nas.store("a", 80.0)
            with pytest.raises(StorageError):
                yield from nas.store("b", 30.0)
            # overwriting a frees its old size first
            yield from nas.store("a", 95.0)
            return nas.bytes_stored

        assert run_process(sim, proc()) == 95.0

    def test_delete(self, sim):
        nas = NAS(sim)
        nas.commit("a", 10.0)
        nas.commit("b", 5.0)
        nas.delete("a")
        assert nas.keys() == ["b"]
        assert nas.bytes_stored == 5.0
        assert not nas.contains("a")

    def test_store_charges_disk_time(self, sim):
        nas = NAS(sim, disk_spec=DiskSpec(bandwidth=100.0, seek_time=0.0))

        def proc():
            yield from nas.store("k", 500.0)
            return sim.now

        assert run_process(sim, proc()) == pytest.approx(5.0)

    def test_concurrent_stores_serialize_on_disk(self, sim):
        nas = NAS(sim, disk_spec=DiskSpec(bandwidth=100.0, seek_time=0.0))
        times = []

        def writer(k):
            yield from nas.store(k, 100.0)
            times.append(sim.now)

        for i in range(3):
            sim.process(writer(f"k{i}"))
        sim.run()
        assert times == [1.0, 2.0, 3.0]
