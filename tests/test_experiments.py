"""Tests for the high-level experiment harness."""

import numpy as np
import pytest

from repro.experiments import JobOutcome, MethodSpec, PairedJobStudy, StudyOutcome
from repro.workloads import JobResult


class TestMethodSpec:
    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            MethodSpec("quantum")

    def test_display_labels(self):
        assert MethodSpec("dvdc").display == "dvdc"
        assert MethodSpec("dvdc", incremental=False).display == "dvdc+full"
        assert MethodSpec("diskful", overlap=True).display == "diskful+overlap"
        assert MethodSpec("dvdc", label="mine").display == "mine"

    def test_build_constructs_each_method(self):
        from repro.workloads import scaled_scenario

        for name in ("dvdc", "diskful", "checkpoint_node", "first_shot"):
            sc = scaled_scenario(4, 3, functional=False)
            ck = MethodSpec(name, incremental=False).build(sc.cluster)
            assert hasattr(ck, "run_cycle") and hasattr(ck, "recover")

    def test_build_rdp_needs_room(self):
        from repro.workloads import scaled_scenario

        sc = scaled_scenario(6, 2, functional=False)
        ck = MethodSpec("dvdc_rdp", incremental=False).build(sc.cluster)
        assert len(ck.layout) >= 1


class TestStudyOutcome:
    def _fake(self):
        out = StudyOutcome(work=100.0)
        for seed in range(4):
            out.cells.append(JobOutcome(
                "a", seed,
                JobResult(completed=True, wall_time=110.0 + seed,
                          work_seconds=100.0),
            ))
            out.cells.append(JobOutcome(
                "b", seed,
                JobResult(completed=seed != 3, wall_time=150.0,
                          work_seconds=100.0),
            ))
        return out

    def test_completion_rate(self):
        out = self._fake()
        assert out.completion_rate("a") == 1.0
        assert out.completion_rate("b") == 0.75
        assert np.isnan(out.completion_rate("missing"))

    def test_mean_ratio(self):
        out = self._fake()
        assert out.mean_ratio("a") == pytest.approx(1.115)

    def test_summary_table_renders(self):
        table = self._fake().summary_table()
        assert "a" in table and "b" in table
        assert "75%" in table


class TestPairedJobStudy:
    def test_validation(self):
        with pytest.raises(ValueError):
            PairedJobStudy(methods=[])
        with pytest.raises(ValueError):
            PairedJobStudy(methods=[MethodSpec("dvdc")], seeds=0)

    def test_small_study_end_to_end(self):
        study = PairedJobStudy(
            methods=[MethodSpec("dvdc"), MethodSpec("diskful")],
            work=1800.0, seeds=2, node_mtbf=200 * 3600.0,
        )
        out = study.run()
        assert len(out.cells) == 4
        # failure-free-ish regime: both complete, DVDC cheaper
        assert out.completion_rate("dvdc") == 1.0
        assert out.completion_rate("diskful") == 1.0
        assert out.mean_ratio("dvdc") < out.mean_ratio("diskful")

    def test_incremental_diskful_consolidates_on_nas(self):
        """Every NAS generation stays directly restorable even under
        incremental capture (server-side consolidation)."""
        from repro.checkpoint import DiskfulCheckpointer, IncrementalCapture
        from repro.workloads import paper_scenario

        sc = paper_scenario(seed=30)
        ck = DiskfulCheckpointer(sc.cluster, strategy=IncrementalCapture())
        rng = sc.rngs.stream("w")

        def proc():
            yield from ck.run_cycle()
            for vm in sc.cluster.all_vms:
                vm.image.touch_pages(rng.integers(0, 64, 4), rng)
            yield from ck.run_cycle()

        proc_obj = sc.sim.process(proc())
        sc.sim.run()
        if proc_obj.ok is False:
            raise proc_obj.value
        obj = sc.cluster.nas.lookup("vm0/epoch1")
        img = obj.payload
        assert img.meta.get("consolidated")
        # catalog size reflects the full image, not the delta
        assert obj.size == pytest.approx(sc.cluster.vm(0).memory_bytes)
        # and it restores the current state bit-exactly
        assert np.array_equal(img.payload_flat(), sc.cluster.vm(0).image.flat)

    def test_incremental_diskful_recovery_bit_exact(self):
        from repro.checkpoint import DiskfulCheckpointer, IncrementalCapture
        from repro.workloads import paper_scenario

        sc = paper_scenario(seed=31)
        ck = DiskfulCheckpointer(sc.cluster, strategy=IncrementalCapture())
        rng = sc.rngs.stream("w")
        committed = {}

        def proc():
            yield from ck.run_cycle()
            for vm in sc.cluster.all_vms:
                vm.image.touch_pages(rng.integers(0, 64, 4), rng)
            yield from ck.run_cycle()
            for vm in sc.cluster.all_vms:
                committed[vm.vm_id] = vm.image.snapshot()
                vm.image.touch_pages(rng.integers(0, 64, 3), rng)
            sc.cluster.kill_node(1)
            yield from ck.recover(1)

        proc_obj = sc.sim.process(proc())
        sc.sim.run()
        if proc_obj.ok is False:
            raise proc_obj.value
        for vm in sc.cluster.all_vms:
            assert np.array_equal(vm.image.flat, committed[vm.vm_id])
