"""Transient-fault injection: flaps, stragglers, drops, bit-rot.

The companion of :mod:`repro.failures` for everything short of a crash.
A :class:`TransientFaultSchedule` is drawn once from a seeded RNG and
replayed verbatim (common random numbers across policies, exactly like
:class:`~repro.failures.injector.FailureSchedule`), and the
:class:`TransientFaultInjector` delivers its events into a live cluster:

========  ==========================================================
kind      effect at the fault instant
========  ==========================================================
flap      both NIC directions of the node go down; in-flight flows
          fail with :class:`~repro.network.link.TransientNetworkError`;
          links return after ``duration`` seconds
degrade   NIC bandwidth drops to ``severity`` × nominal (straggler
          node); restored after ``duration`` seconds
drop      the node's in-flight transfers are dropped once (lossy
          blip); link state untouched
corrupt   one byte of one resident checkpoint artifact (parity block
          or committed image) is flipped — silent until a checksum
          is verified
========  ==========================================================

Overlapping flaps/degradations on one node are reference-counted: the
NIC comes back (or returns to full speed) only when the *last*
outstanding fault expires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..cluster.cluster import VirtualCluster
from ..sim import NULL_TRACER, Simulator, Tracer
from ..telemetry import probe_of

__all__ = [
    "FAULT_KINDS",
    "TransientFault",
    "TransientFaultSchedule",
    "TransientFaultInjector",
    "corrupt_node_state",
]

FAULT_KINDS = ("flap", "degrade", "drop", "corrupt")


@dataclass(frozen=True)
class TransientFault:
    """One transient-fault occurrence on a node."""

    time: float
    node_id: int
    kind: str
    #: flap/degrade: seconds until the fault clears (ignored otherwise)
    duration: float = 0.0
    #: degrade: bandwidth factor in (0, 1); others ignore it
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if self.time < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if not (0 < self.severity <= 1):
            raise ValueError(f"severity must be in (0, 1], got {self.severity}")


@dataclass
class TransientFaultSchedule:
    """A pre-drawn, replayable trace of transient faults."""

    events: list[TransientFault] = field(default_factory=list)

    @classmethod
    def draw(
        cls,
        rng: np.random.Generator,
        n_nodes: int,
        horizon: float,
        rate: float,
        kinds: Sequence[str] = FAULT_KINDS,
        mean_duration: float = 0.2,
        min_severity: float = 0.05,
    ) -> "TransientFaultSchedule":
        """Poisson transient faults per node at ``rate`` events/second.

        Durations are exponential with ``mean_duration``; degrade
        severities uniform in ``[min_severity, 1)``.
        """
        if n_nodes < 1:
            raise ValueError(f"need >= 1 node, got {n_nodes}")
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        if not kinds:
            raise ValueError("kinds must be non-empty")
        for k in kinds:
            if k not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {k!r}; one of {FAULT_KINDS}")
        events: list[TransientFault] = []
        for node in range(n_nodes):
            t = 0.0
            while True:
                t += float(rng.exponential(1.0 / rate))
                if t > horizon:
                    break
                kind = kinds[int(rng.integers(len(kinds)))]
                events.append(TransientFault(
                    time=t,
                    node_id=node,
                    kind=kind,
                    duration=float(rng.exponential(mean_duration)),
                    severity=float(rng.uniform(min_severity, 1.0)),
                ))
        events.sort(key=lambda e: (e.time, e.node_id, e.kind))
        return cls(events)

    def for_node(self, node_id: int) -> list[TransientFault]:
        return [e for e in self.events if e.node_id == node_id]

    def __len__(self) -> int:
        return len(self.events)


def corrupt_node_state(
    cluster: VirtualCluster, node_id: int, rng: np.random.Generator
) -> str | None:
    """Flip one byte of one functional checkpoint artifact on the node.

    Targets are all parity blocks and committed images with real bytes,
    chosen uniformly by the seeded ``rng``.  Returns a description of
    what was damaged (``"parity g2"`` / ``"image vm5"``) or None when
    the node holds nothing corruptible — timing-only runs are immune by
    construction, which the injector reports rather than hides.
    """
    node = cluster.node(node_id)
    if not node.alive:
        return None
    targets: list[tuple[str, np.ndarray]] = []
    for gid in sorted(node.parity_store):
        block = node.parity_store[gid]
        if block.data is not None and block.data.size:
            targets.append((f"parity g{gid}", block.data))
    for vm_id in sorted(node.checkpoint_store):
        img = node.checkpoint_store[vm_id]
        if isinstance(img.payload, np.ndarray) and img.payload.size:
            targets.append((f"image vm{vm_id}", img.payload))
    if not targets:
        return None
    label, data = targets[int(rng.integers(len(targets)))]
    flat = data.reshape(-1).view(np.uint8)
    off = int(rng.integers(flat.size))
    flat[off] ^= np.uint8(1 << int(rng.integers(8)))
    return label


class TransientFaultInjector:
    """Delivers a :class:`TransientFaultSchedule` into a live cluster.

    Mirrors :class:`~repro.failures.injector.FailureInjector`'s replay
    mode: arm with :meth:`start`, observe with :meth:`subscribe`.  The
    ``rng`` seeds only corruption target selection, so two runs with the
    same schedule and seed damage the same bytes.
    """

    def __init__(
        self,
        sim: Simulator,
        cluster: VirtualCluster,
        schedule: TransientFaultSchedule,
        rng: np.random.Generator | None = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.sim = sim
        self.cluster = cluster
        self.schedule = schedule
        self.rng = rng or np.random.default_rng(0)
        self.tracer = tracer
        self.probe = probe_of(tracer)
        self._subscribers: list[Callable[[TransientFault], None]] = []
        self._delivered: list[TransientFault] = []
        #: corruption descriptions actually landed, in delivery order
        self.corrupted: list[str] = []
        # reference counts for overlapping flaps/degradations per node
        self._flaps: dict[int, int] = {}
        self._degrades: dict[int, int] = {}
        self._started = False

    def subscribe(self, fn: Callable[[TransientFault], None]) -> None:
        self._subscribers.append(fn)

    @property
    def delivered(self) -> Sequence[TransientFault]:
        return tuple(self._delivered)

    def start(self) -> None:
        """Arm the injector; idempotent."""
        if self._started:
            return
        self._started = True
        n_nodes = self.cluster.n_nodes
        for ev in self.schedule.events:
            if ev.node_id >= n_nodes:
                raise ValueError(
                    f"schedule references node {ev.node_id} >= n_nodes {n_nodes}"
                )
            self.sim.at(ev.time, self._fire, ev)

    # ------------------------------------------------------------------
    def _fire(self, ev: TransientFault) -> None:
        self._delivered.append(ev)
        self.tracer.emit(
            self.sim.now, f"fault.{ev.kind}", node=ev.node_id,
            duration=ev.duration, severity=ev.severity,
        )
        self.probe.count(
            "repro_failures_total",
            help="Failures injected, by kind and failure domain",
            kind=ev.kind, domain=f"node{ev.node_id}",
        )
        apply = getattr(self, f"_apply_{ev.kind}")
        apply(ev)
        for fn in self._subscribers:
            fn(ev)

    def _apply_flap(self, ev: TransientFault) -> None:
        self._flaps[ev.node_id] = self._flaps.get(ev.node_id, 0) + 1
        self.cluster.topology.set_node_links_up(ev.node_id, False, "link flap")
        self.sim.schedule(ev.duration, self._clear_flap, ev.node_id)

    def _clear_flap(self, node_id: int) -> None:
        self._flaps[node_id] -= 1
        if self._flaps[node_id] == 0:
            self.cluster.topology.set_node_links_up(node_id, True)

    def _apply_degrade(self, ev: TransientFault) -> None:
        self._degrades[ev.node_id] = self._degrades.get(ev.node_id, 0) + 1
        self.cluster.topology.scale_node_bandwidth(ev.node_id, ev.severity)
        self.sim.schedule(ev.duration, self._clear_degrade, ev.node_id)

    def _clear_degrade(self, node_id: int) -> None:
        self._degrades[node_id] -= 1
        if self._degrades[node_id] == 0:
            self.cluster.topology.scale_node_bandwidth(node_id, 1.0)

    def _apply_drop(self, ev: TransientFault) -> None:
        self.cluster.topology.drop_node_flows(ev.node_id)

    def _apply_corrupt(self, ev: TransientFault) -> None:
        what = corrupt_node_state(self.cluster, ev.node_id, self.rng)
        if what is not None:
            self.corrupted.append(f"node{ev.node_id}:{what}")
            self.probe.count(
                "repro_resilience_corruptions_injected_total",
                help="Silent byte flips landed in checkpoint artifacts",
            )
