"""Background checksum scrubbing of in-memory checkpoint artifacts.

Diskless checkpointing keeps every recovery artifact in volatile RAM —
there is no filesystem underneath to scrub it.  The :class:`Scrubber`
is that missing layer: it re-verifies the CRC every parity block and
committed image received at encode/commit time
(:mod:`repro.cluster.checksum`) and, on a mismatch, performs a
*targeted* repair:

* a corrupt **parity block** is re-encoded from its members' committed
  images (the XOR the protocol would have produced) and verified
  bit-exactly against the stored checksum;
* a corrupt **member image** is rebuilt from the surviving members +
  parity (the recovery computation pointed at bit-rot instead of a
  crash) and verified against the image's commit-time checksum.

Artifacts whose redundancy is itself damaged (two corruptions in one
group) are reported as unrepairable — the caller decides whether to
force a fresh full checkpoint epoch.

The scrubber is a *mechanism*: :meth:`Scrubber.scrub_once` is
instantaneous in simulated time (checksums are memory-speed compared to
the transfers around them).  Run it periodically with
:meth:`Scrubber.run` for a background process, or call it directly at
quiescent points (the fuzzer does, before every strict audit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster.checksum import block_checksum
from ..cluster.cluster import VirtualCluster
from ..cluster.xorsum import reconstruct_missing_padded, xor_reduce_padded
from ..coding import XorScheme, get_scheme, shard_key
from ..core.groups import GroupLayout
from ..sim import NULL_TRACER, Tracer
from ..telemetry import probe_of

__all__ = ["Scrubber", "ScrubReport"]


@dataclass
class ScrubReport:
    """Outcome of one full scrub pass."""

    scrubbed: int = 0
    #: artifacts whose checksum mismatched, e.g. ``"parity g1@node2"``
    detected: list[str] = field(default_factory=list)
    #: subset of ``detected`` restored bit-exactly
    repaired: list[str] = field(default_factory=list)
    #: subset of ``detected`` whose redundancy was also damaged
    unrepairable: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.detected


class Scrubber:
    """Detects and repairs silent corruption in checkpoint artifacts."""

    def __init__(
        self,
        cluster: VirtualCluster,
        layout: GroupLayout,
        tracer: Tracer = NULL_TRACER,
        scheme=None,
    ):
        self.cluster = cluster
        self.layout = layout
        self.tracer = tracer
        self.probe = probe_of(tracer)
        self.scheme = get_scheme(scheme)
        self._is_xor = isinstance(self.scheme, XorScheme)
        self.reports: list[ScrubReport] = []

    # ------------------------------------------------------------------
    def _detect(self, report: ScrubReport, label: str) -> None:
        report.detected.append(label)
        self.tracer.emit(self.cluster.sim.now, "scrub.corruption", artifact=label)
        self.probe.count(
            "repro_resilience_corruptions_detected_total",
            help="Checksum mismatches found by the scrubber",
        )

    def _repaired(self, report: ScrubReport, label: str) -> None:
        report.repaired.append(label)
        self.tracer.emit(self.cluster.sim.now, "scrub.repaired", artifact=label)
        self.probe.count(
            "repro_resilience_corruptions_repaired_total",
            help="Corrupt artifacts restored bit-exactly by the scrubber",
        )

    def _member_images(self, group) -> dict[int, np.ndarray] | None:
        """Committed payloads of every group member, or None if any is
        unavailable (failed VM, timing-only image)."""
        out: dict[int, np.ndarray] = {}
        for v in group.member_vm_ids:
            vm = self.cluster.vm(v)
            if vm.node_id is None:
                return None
            img = self.cluster.hypervisor(vm.node_id).committed(v)
            if img is None or img.payload is None:
                return None
            out[v] = img.payload_flat()
        return out

    # ------------------------------------------------------------------
    def scrub_once(self) -> ScrubReport:
        """One full verify-and-repair sweep over every group.

        Repairability is derived from the active scheme's tolerance: a
        corrupt artifact counts as one erasure, and any combination of
        at most ``scheme.tolerance`` erasures per group (corrupt members
        + corrupt or unavailable shards) is repaired in place — e.g.
        RS(k,2) survives a corrupt shard *and* a dead shard home at
        once, where single-parity XOR could not.
        """
        report = ScrubReport()
        if not self._is_xor:
            for group in self.layout.groups:
                self._scrub_group_scheme(report, group)
            self.reports.append(report)
            if report.unrepairable:
                self.probe.count(
                    "repro_resilience_corruptions_unrepairable_total",
                    len(report.unrepairable),
                    help="Corruptions the scrubber could not repair in place",
                )
            return report
        for group in self.layout.groups:
            pnode = self.cluster.node(group.parity_node)
            if not pnode.alive:
                continue
            block = pnode.parity_store.get(group.group_id)
            images = self._member_images(group)

            # -- member images first: parity repair assumes clean members
            bad_members: list[int] = []
            if images is not None:
                for v in group.member_vm_ids:
                    vm = self.cluster.vm(v)
                    img = self.cluster.hypervisor(vm.node_id).committed(v)
                    expect = img.meta.get("checksum")
                    if expect is None:
                        continue
                    report.scrubbed += 1
                    if block_checksum(images[v]) != expect:
                        self._detect(report, f"image vm{v}@node{vm.node_id}")
                        bad_members.append(v)

            parity_ok = True
            if block is not None and block.data is not None and block.checksum is not None:
                report.scrubbed += 1
                if block_checksum(block.data) != block.checksum:
                    parity_ok = False
                    self._detect(
                        report, f"parity g{group.group_id}@node{group.parity_node}"
                    )

            # -- repair
            if bad_members:
                if len(bad_members) > 1 or not parity_ok or block is None or block.data is None:
                    for v in bad_members:
                        report.unrepairable.append(f"image vm{v}")
                    if not parity_ok:
                        report.unrepairable.append(f"parity g{group.group_id}")
                    continue
                v = bad_members[0]
                vm = self.cluster.vm(v)
                img = self.cluster.hypervisor(vm.node_id).committed(v)
                survivors = [images[w] for w in group.member_vm_ids if w != v]
                rebuilt = reconstruct_missing_padded(
                    survivors, block.data, images[v].shape[0]
                )
                if block_checksum(rebuilt) != img.meta["checksum"]:
                    report.unrepairable.append(f"image vm{v}")
                    continue
                images[v][:] = rebuilt
                self._repaired(report, f"image vm{v}")
            elif not parity_ok:
                if images is None:
                    report.unrepairable.append(f"parity g{group.group_id}")
                    continue
                rebuilt = xor_reduce_padded(list(images.values()))
                if (
                    rebuilt.shape[0] > block.data.shape[0]
                    or block_checksum(
                        np.pad(rebuilt, (0, block.data.shape[0] - rebuilt.shape[0]))
                        if rebuilt.shape[0] < block.data.shape[0]
                        else rebuilt
                    )
                    != block.checksum
                ):
                    report.unrepairable.append(f"parity g{group.group_id}")
                    continue
                block.data[: rebuilt.shape[0]] = rebuilt
                block.data[rebuilt.shape[0]:] = 0
                self._repaired(report, f"parity g{group.group_id}")

        self.reports.append(report)
        if report.unrepairable:
            self.probe.count(
                "repro_resilience_corruptions_unrepairable_total",
                len(report.unrepairable),
                help="Corruptions the scrubber could not repair in place",
            )
        return report

    def _scrub_group_scheme(self, report: ScrubReport, group) -> None:
        """Verify-and-repair one group under a multi-shard scheme."""
        gid = group.group_id
        blocks = []  # (shard index, home node id, block or None)
        for j, pnode_id in enumerate(group.parity_nodes):
            pnode = self.cluster.node(pnode_id)
            block = pnode.parity_store.get(shard_key(gid, j)) if pnode.alive else None
            blocks.append((j, pnode_id, block))
        images = self._member_images(group)

        # -- detect: members first, then every shard
        bad_members: list[int] = []
        if images is not None:
            for v in group.member_vm_ids:
                vm = self.cluster.vm(v)
                img = self.cluster.hypervisor(vm.node_id).committed(v)
                expect = img.meta.get("checksum")
                if expect is None:
                    continue
                report.scrubbed += 1
                if block_checksum(images[v]) != expect:
                    self._detect(report, f"image vm{v}@node{vm.node_id}")
                    bad_members.append(v)
        bad_shards: list[int] = []
        gone_shards: list[int] = []
        for j, pnode_id, block in blocks:
            if block is None or block.data is None or block.checksum is None:
                gone_shards.append(j)
                continue
            report.scrubbed += 1
            if block_checksum(block.data) != block.checksum:
                self._detect(report, f"shard{j} g{gid}@node{pnode_id}")
                bad_shards.append(j)
        if not bad_members and not bad_shards:
            return

        # -- classify: corrupt + unavailable artifacts are erasures
        erasures = len(bad_members) + len(bad_shards) + len(gone_shards)
        clean_shards = [
            j for j, _, b in blocks
            if j not in bad_shards and j not in gone_shards
        ]
        # replication can over-survive: any intact replica rebuilds all
        replica_rescue = (
            getattr(self.scheme, "copies", None) is not None and bool(clean_shards)
        )
        if images is None or (
            erasures > self.scheme.tolerance and not replica_rescue
        ):
            for v in bad_members:
                report.unrepairable.append(f"image vm{v}")
            for j in bad_shards:
                report.unrepairable.append(f"shard{j} g{gid}")
            return

        # -- repair: decode with corrupt artifacts marked lost
        member_ids = list(group.member_vm_ids)
        mem = [None if v in bad_members else images[v] for v in member_ids]
        shd = [
            None if (j in bad_shards or j in gone_shards) else block.data
            for j, _, block in blocks
        ]
        length = max(p.shape[0] for p in images.values())
        try:
            rebuilt = self.scheme.reconstruct(mem, shd, nbytes=length)
        except Exception:
            for v in bad_members:
                report.unrepairable.append(f"image vm{v}")
            for j in bad_shards:
                report.unrepairable.append(f"shard{j} g{gid}")
            return
        members_clean = True
        for v in bad_members:
            i = member_ids.index(v)
            vm = self.cluster.vm(v)
            img = self.cluster.hypervisor(vm.node_id).committed(v)
            candidate = rebuilt[i][: images[v].shape[0]]
            if block_checksum(candidate) != img.meta["checksum"]:
                report.unrepairable.append(f"image vm{v}")
                members_clean = False
                continue
            images[v][:] = candidate
            self._repaired(report, f"image vm{v}")
        if not bad_shards:
            return
        if not members_clean:
            # can't re-encode from members that failed verification
            for j in bad_shards:
                report.unrepairable.append(f"shard{j} g{gid}")
            return
        fresh = self.scheme.encode([images[v] for v in member_ids])
        for j in bad_shards:
            block = blocks[j][2]
            candidate = fresh[j]
            if (
                candidate.shape[0] != block.data.shape[0]
                or block_checksum(candidate) != block.checksum
            ):
                report.unrepairable.append(f"shard{j} g{gid}")
                continue
            block.data[:] = candidate
            self._repaired(report, f"shard{j} g{gid}")

    def run(self, interval: float):
        """Process generator: scrub every ``interval`` seconds, forever.

        Spawn with ``sim.process(scrubber.run(interval))``; the process
        ends only when the simulation stops scheduling it (e.g. ``run``
        hit its horizon).
        """
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        while True:
            yield self.cluster.sim.timeout(interval)
            self.scrub_once()
