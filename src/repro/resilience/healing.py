"""Spare-node pool and the self-healing state machine.

After ``recover()`` the cluster runs — but *degraded*: with few nodes
the only legal restore target is often the group's own parity node, so
one more crash in the wrong place is fatal.  The paper stops there; a
production cluster does not.  The :class:`SelfHealer` drives the cycle

::

                    node crash
    PROTECTED ───────────────────────▶ DEGRADED
        ▲                                 │
        │                                 │ reprotect()
        │  layout valid, parity           ▼
        └───────────────────────── RE-PROTECTING
           everywhere, audits         (pull spare, re-place
           green                       members, re-encode)

pulling a node from the :class:`SparePool` when one is available,
re-running placement for crowded groups, and re-encoding parity via
:meth:`~repro.core.dvdc.DisklessCheckpointer.heal`.  The time spent
outside PROTECTED — the *window of vulnerability* during which a second
failure could be unrecoverable — is recorded per incident and exported
as the ``repro_degraded_window_seconds`` histogram; the Monte-Carlo
layer (:func:`repro.model.montecarlo.window_loss_probability`) turns
that window into a loss probability for Fig.-5-style studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..cluster.cluster import VirtualCluster
from ..coding import shard_key
from ..core.dvdc import DisklessCheckpointer
from ..core.placement import validate_layout
from ..sim import NULL_TRACER, Tracer
from ..telemetry import probe_of

__all__ = ["ClusterHealth", "SparePool", "SelfHealer", "HealingReport"]


class ClusterHealth(str, Enum):
    """Protection state of the cluster against the *next* failure."""

    PROTECTED = "protected"
    DEGRADED = "degraded"
    REPROTECTING = "reprotecting"


class SparePool:
    """Cold spare nodes: provisioned in the cluster, powered down empty.

    A spare is an ordinary :class:`~repro.cluster.node.PhysicalNode`
    that was cleanly deactivated at build time, so placement never uses
    it until :meth:`acquire` powers it on (empty, maximally free — the
    load-based placement helpers then prefer it naturally).
    """

    def __init__(
        self,
        cluster: VirtualCluster,
        node_ids: list[int] | None = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.cluster = cluster
        self.tracer = tracer
        self._available: list[int] = []
        self.acquired: list[int] = []
        #: times :meth:`acquire` came up empty — every one is a failure
        #: the cluster could not re-protect against
        self.exhausted = 0
        for nid in node_ids or []:
            self.add(nid)

    @classmethod
    def provision(cls, cluster: VirtualCluster, count: int) -> "SparePool":
        """Deactivate the ``count`` highest-numbered empty nodes as spares.

        Call after VM placement: only nodes hosting nothing qualify.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        empty = [
            n.node_id
            for n in reversed(cluster.nodes)
            if n.alive and not n.vms and not n.checkpoint_store and not n.parity_store
        ]
        if len(empty) < count:
            raise ValueError(
                f"only {len(empty)} empty node(s) available for {count} spare(s)"
            )
        return cls(cluster, empty[:count])

    def add(self, node_id: int) -> None:
        node = self.cluster.node(node_id)
        if node.alive:
            node.deactivate()
        self._available.append(node_id)
        self._available.sort()

    @property
    def available(self) -> tuple[int, ...]:
        return tuple(self._available)

    def __len__(self) -> int:
        return len(self._available)

    def acquire(self) -> int | None:
        """Power on the lowest-numbered spare; None when the pool is dry.

        An empty pool is not silent: each dry acquire emits a
        ``healing.spares_exhausted`` trace event and bumps the
        ``repro_resilience_spares_exhausted_total`` counter, so
        operators see the moment self-healing runs out of hardware."""
        if not self._available:
            self.exhausted += 1
            self.tracer.emit(
                self.cluster.sim.now, "healing.spares_exhausted",
                acquired=len(self.acquired),
            )
            probe_of(self.tracer).count(
                "repro_resilience_spares_exhausted_total",
                help="Spare-pool acquire() calls that found the pool dry",
            )
            return None
        nid = self._available.pop(0)
        self.cluster.repair_node(nid)
        self.acquired.append(nid)
        return nid


@dataclass
class HealingReport:
    """Outcome of one :meth:`SelfHealer.reprotect` pass."""

    state: ClusterHealth
    rounds: int = 0
    spares_used: list[int] = field(default_factory=list)
    relocated: dict[int, int] = field(default_factory=dict)
    healed_groups: list[int] = field(default_factory=list)
    #: seconds from the degrading failure to PROTECTED; None if still open
    window_seconds: float | None = None
    issues: list[str] = field(default_factory=list)


class SelfHealer:
    """Drives the cluster back to PROTECTED after failures."""

    def __init__(
        self,
        checkpointer: DisklessCheckpointer,
        spares: SparePool | None = None,
        tracer: Tracer = NULL_TRACER,
    ):
        self.ck = checkpointer
        self.cluster = checkpointer.cluster
        self.spares = (
            spares
            if spares is not None
            else SparePool(checkpointer.cluster, tracer=tracer)
        )
        if self.spares.tracer is NULL_TRACER and tracer is not NULL_TRACER:
            # surface pool exhaustion through the healer's tracer rather
            # than dropping it on the floor
            self.spares.tracer = tracer
        self.tracer = tracer
        self.probe = probe_of(tracer)
        self.state = ClusterHealth.PROTECTED
        self.degraded_since: float | None = None
        #: closed vulnerability windows, (start, end) sim seconds
        self.windows: list[tuple[float, float]] = []
        #: per-group open window starts (group id -> sim seconds)
        self._group_degraded_since: dict[int, float] = {}
        #: per-group closed windows (group id -> [(start, end), ...])
        self.group_windows: dict[int, list[tuple[float, float]]] = {}

    # ------------------------------------------------------------------
    # assessment
    # ------------------------------------------------------------------
    def issues(self) -> list[str]:
        """Everything standing between the cluster and full protection."""
        out: list[str] = []
        if self.ck.committed_epoch < 0:
            out.append("no committed checkpoint epoch")
            return out
        for vm in self.cluster.all_vms:
            if vm.node_id is None:
                out.append(f"vm {vm.vm_id} failed and not yet rebuilt")
        out.extend(
            validate_layout(
                self.ck.layout, self.cluster, tolerance=self.ck.scheme.tolerance
            ).errors
        )
        for g in self.ck.layout.groups:
            for j, pnode_id in enumerate(g.parity_nodes):
                pnode = self.cluster.node(pnode_id)
                if not pnode.alive:
                    out.append(
                        f"group {g.group_id}: parity node {pnode_id} down"
                        if j == 0
                        else f"group {g.group_id}: shard {j} node {pnode_id} down"
                    )
                elif shard_key(g.group_id, j) not in pnode.parity_store:
                    out.append(
                        f"group {g.group_id}: no parity block on node {pnode_id}"
                        if j == 0
                        else f"group {g.group_id}: no shard {j} block on node {pnode_id}"
                    )
        return out

    def degraded_groups(self) -> list[int]:
        """Group ids currently lacking full single-failure protection.

        Structural test per group: parity node alive and holding the
        parity block, every member VM placed, no member sharing a node
        with another member or with the parity.  With nothing committed
        yet, every group is exposed.
        """
        if self.ck.committed_epoch < 0:
            return [g.group_id for g in self.ck.layout.groups]
        out = []
        for g in self.ck.layout.groups:
            pnodes = g.parity_nodes
            shards_ok = all(
                self.cluster.node(p).alive
                and shard_key(g.group_id, j) in self.cluster.node(p).parity_store
                for j, p in enumerate(pnodes)
            )
            if not shards_ok or len(set(pnodes)) != len(pnodes):
                out.append(g.group_id)
                continue
            seen: set[int] = set()
            for v in g.member_vm_ids:
                node = self.cluster.vm(v).node_id
                if node is None or node in pnodes or node in seen:
                    out.append(g.group_id)
                    break
                seen.add(node)
        return out

    def _sync_group_windows(self, now: float) -> None:
        """Open/close per-group windows against the structural state.

        Closing observes ``repro_degraded_window_seconds{group=...}`` —
        the same family as the aggregate label-less series, so brownout
        cost is attributable to the parity group that was exposed.
        """
        degraded = set(self.degraded_groups())
        for gid in sorted(degraded):
            self._group_degraded_since.setdefault(gid, now)
        for gid in sorted(set(self._group_degraded_since) - degraded):
            start = self._group_degraded_since.pop(gid)
            self.group_windows.setdefault(gid, []).append((start, now))
            self.probe.observe(
                "repro_degraded_window_seconds", now - start,
                help="Time spent without full single-failure protection",
                group=str(gid),
            )

    def assess(self) -> tuple[ClusterHealth, list[str]]:
        """Re-evaluate protection state; closes the vulnerability window
        (and observes the histogram) on the transition back to PROTECTED.
        """
        found = self.issues()
        now = self.cluster.sim.now
        self._sync_group_windows(now)
        if found:
            if self.degraded_since is None:
                self.degraded_since = now
            if self.state != ClusterHealth.REPROTECTING:
                self._transition(ClusterHealth.DEGRADED)
        else:
            if self.degraded_since is not None:
                window = now - self.degraded_since
                self.windows.append((self.degraded_since, now))
                self.degraded_since = None
                self.probe.observe(
                    "repro_degraded_window_seconds", window,
                    help="Time spent without full single-failure protection",
                )
                self.tracer.emit(now, "healing.window_closed", seconds=window)
            self._transition(ClusterHealth.PROTECTED)
        return self.state, found

    def _transition(self, state: ClusterHealth) -> None:
        if state == self.state:
            return
        self.tracer.emit(
            self.cluster.sim.now, "healing.state",
            previous=self.state.value, state=state.value,
        )
        self.probe.count(
            "repro_resilience_health_transitions_total",
            help="Self-healing state-machine transitions",
            to=state.value,
        )
        self.state = state

    def on_failure(self, event=None) -> None:
        """Failure-instant hook: opens the vulnerability window.  Shaped
        to subscribe directly to a
        :class:`~repro.failures.injector.FailureInjector`."""
        if self.degraded_since is None:
            self.degraded_since = self.cluster.sim.now
        self._sync_group_windows(self.cluster.sim.now)
        self._transition(ClusterHealth.DEGRADED)

    @property
    def last_window_seconds(self) -> float | None:
        if not self.windows:
            return None
        start, end = self.windows[-1]
        return end - start

    # ------------------------------------------------------------------
    # re-protection
    # ------------------------------------------------------------------
    def _relocate_crowded_members(self, report: HealingReport):
        """Process: move members off nodes hosting 2+ of the same group.

        The relocation ships the VM memory plus its committed checkpoint
        image over the network, then re-registers both on the target —
        parity stays valid because the image bytes do not change.
        """
        for group in list(self.ck.layout.groups):
            per_node: dict[int, list[int]] = {}
            for v in group.member_vm_ids:
                node = self.cluster.vm(v).node_id
                if node is not None:
                    per_node.setdefault(node, []).append(v)
            for node_id, members in sorted(per_node.items()):
                if len(members) < 2:
                    continue
                member_nodes = set(per_node)
                targets = [
                    n for n in self.cluster.alive_nodes
                    if n.node_id not in member_nodes
                    and n.node_id not in group.parity_nodes
                ]
                if not targets:
                    continue
                target = min(targets, key=lambda n: (len(n.vms), n.node_id))
                vm_id = max(members)  # move the newest member, keep the rest
                vm = self.cluster.vm(vm_id)
                src_node = self.cluster.node(node_id)
                img = src_node.checkpoint_store.get(vm_id)
                size = vm.memory_bytes + (img.logical_bytes if img else 0.0)
                try:
                    yield self.cluster.topology.transfer(
                        node_id, target.node_id, size,
                        label=f"heal.move.vm{vm_id}",
                    )
                except Exception:
                    continue  # a fresh failure mid-move; reassess next round
                if vm.node_id != node_id:
                    continue  # the VM moved (or died) while we streamed
                self.cluster.move_vm(vm_id, target.node_id)
                if img is not None and src_node.checkpoint_store.get(vm_id) is img:
                    del src_node.checkpoint_store[vm_id]
                    self.cluster.node(target.node_id).store_checkpoint(img)
                report.relocated[vm_id] = target.node_id
                self.tracer.emit(
                    self.cluster.sim.now, "healing.relocate",
                    vm=vm_id, src=node_id, dst=target.node_id,
                )

    def reprotect(self, max_rounds: int = 4):
        """Process: drive the cluster back to PROTECTED.

        Each round: re-place crowded members, re-encode co-located or
        missing parity (:meth:`DisklessCheckpointer.heal`), reassess.
        If a round makes no progress and a spare is available, one is
        pulled (powered on empty) and the next round's placement uses
        it.  Terminates in DEGRADED — explicitly, not by exception —
        when the pool is dry and no valid placement exists.
        """
        report = HealingReport(state=self.state)
        _, found = self.assess()
        if not found:
            report.state = self.state
            if self.state == ClusterHealth.PROTECTED:
                report.window_seconds = self.last_window_seconds
            return report
        self._transition(ClusterHealth.REPROTECTING)
        for _ in range(max_rounds):
            report.rounds += 1
            yield from self._relocate_crowded_members(report)
            healed = yield from self.ck.heal()
            report.healed_groups.extend(healed)
            _, found = self.assess()
            if self.state == ClusterHealth.PROTECTED:
                break
            self._transition(ClusterHealth.REPROTECTING)
            if healed or report.relocated:
                continue  # progress without spending a spare; go again
            spare = self.spares.acquire()
            if spare is None:
                break  # out of options: settle in DEGRADED below
            report.spares_used.append(spare)
            self.tracer.emit(
                self.cluster.sim.now, "healing.spare_acquired", node=spare,
            )
        _, found = self.assess()
        if self.state != ClusterHealth.PROTECTED:
            self._transition(ClusterHealth.DEGRADED)
        report.state = self.state
        report.issues = found
        report.window_seconds = (
            self.last_window_seconds
            if self.state == ClusterHealth.PROTECTED
            else None
        )
        return report
