"""Retry/backoff policies for transient transfer failures.

A transfer that dies because its endpoint node crashed is gone for good
— the DVDC two-phase commit aborts the epoch and recovery takes over.
A transfer that dies because a link flapped, a stream was dropped, or an
attempt timed out is worth retrying: the same endpoints are alive and a
fresh flow a few (simulated) milliseconds later usually completes.  The
network layer tags the second kind with
:class:`~repro.network.link.TransientNetworkError`; this module retries
exactly that subclass and nothing else.

The policy is the classic exponential-backoff-with-jitter loop used by
every production RPC stack, driven entirely by the *simulation* clock
and RNG so runs stay deterministic and replayable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Generator

import numpy as np

from ..network.link import Flow, NetworkError, TransientNetworkError
from ..sim import Simulator
from ..telemetry import NULL_PROBE, Probe

__all__ = ["RetryPolicy", "RetryExhausted", "retrying_transfer", "DEFAULT_RETRY"]


class RetryExhausted(NetworkError):
    """A transfer's retry budget ran out.

    This is a *classified, recoverable* failure: callers must treat it
    like a transient outage that outlived patience — abort the current
    epoch (the two-phase commit keeps the previous one valid) or requeue
    the recovery pass — never as a protocol bug.  Subclassing
    :class:`~repro.network.link.NetworkError` (but **not** the transient
    variant) means every existing "transfer died" handling path in the
    protocol absorbs it without modification, and nothing re-retries it.
    """

    def __init__(self, label: str, attempts: int, last_error: BaseException | None):
        super().__init__(
            f"transfer {label}: retry budget exhausted after {attempts} "
            f"attempt(s): {last_error}"
        )
        self.label = label
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for :func:`retrying_transfer`.

    Attributes
    ----------
    max_attempts:
        Total tries including the first (>= 1).
    base_delay:
        Backoff before the second attempt, seconds.
    multiplier:
        Geometric growth of the backoff per retry.
    max_delay:
        Backoff cap, seconds.
    jitter:
        Fractional symmetric jitter: the sleep is drawn uniformly from
        ``delay * [1-jitter, 1+jitter]`` using the supplied sim RNG
        (midpoint when no RNG is given).  Keeps synchronized retries
        from re-colliding on a shared link.
    attempt_timeout:
        If set, each attempt is aborted (transiently) after this many
        seconds — the straggler-escape hatch.
    deadline:
        If set, total budget in seconds from the first attempt; once a
        backoff would cross it the transfer gives up.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    attempt_timeout: float | None = None
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError(f"base_delay must be >= 0, got {self.base_delay}")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if not (0 <= self.jitter < 1):
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.attempt_timeout is not None and self.attempt_timeout <= 0:
            raise ValueError("attempt_timeout must be > 0 when set")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be > 0 when set")

    def backoff_delay(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Sleep before attempt ``attempt + 1`` (``attempt`` >= 1)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if self.jitter <= 0 or raw == 0:
            return raw
        u = float(rng.random()) if rng is not None else 0.5
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * u)


#: Sensible default for LAN-scale transfers: 5 tries over ~a few seconds.
DEFAULT_RETRY = RetryPolicy()


def _attempt_timeout(flow: Flow, probe: Probe) -> None:
    if not flow.triggered:
        probe.count(
            "repro_resilience_attempt_timeouts_total",
            help="Transfer attempts aborted by per-attempt timeout",
        )
        flow.abort("attempt timeout", transient=True)


def retrying_transfer(
    sim: Simulator,
    make_flow: Callable[[], Flow],
    policy: RetryPolicy,
    rng: np.random.Generator | None = None,
    probe: Probe = NULL_PROBE,
    label: str = "transfer",
) -> Generator[Any, Any, Flow]:
    """Process generator: run ``make_flow()`` until it completes or the
    retry budget drains.

    Wrap with ``sim.process(...)`` — the resulting process succeeds with
    the completed :class:`Flow`, fails with the original (non-transient)
    :class:`~repro.network.link.NetworkError` on a fatal abort, and fails
    with :class:`RetryExhausted` once ``policy`` is out of attempts,
    budget, or deadline.
    """
    started = sim.now
    attempt = 0
    last_error: BaseException | None = None
    while True:
        attempt += 1
        flow = make_flow()
        guard = None
        if policy.attempt_timeout is not None:
            guard = sim.schedule(policy.attempt_timeout, _attempt_timeout, flow, probe)
        try:
            result = yield flow
            if attempt > 1:
                probe.count(
                    "repro_resilience_recovered_transfers_total",
                    help="Transfers that completed only after retrying",
                )
            return result
        except TransientNetworkError as exc:
            last_error = exc
        finally:
            if guard is not None:
                guard.cancel()
        probe.count(
            "repro_resilience_retries_total",
            help="Transfer attempts that failed transiently and were retried",
        )
        deadline_left = (
            math.inf
            if policy.deadline is None
            else policy.deadline - (sim.now - started)
        )
        if attempt >= policy.max_attempts:
            probe.count(
                "repro_resilience_retry_exhausted_total",
                help="Transfers abandoned with the retry budget spent",
                reason="attempts",
            )
            raise RetryExhausted(label, attempt, last_error)
        delay = policy.backoff_delay(attempt, rng)
        if delay > deadline_left:
            probe.count(
                "repro_resilience_retry_exhausted_total",
                help="Transfers abandoned with the retry budget spent",
                reason="deadline",
            )
            raise RetryExhausted(label, attempt, last_error)
        if delay > 0:
            yield sim.timeout(delay)
