"""Resilience layer: transient faults, retries, scrubbing, self-healing.

The paper's protocol assumes fail-stop nodes and perfect links.  This
package supplies everything between "perfect" and "crashed":

* :mod:`~repro.resilience.faults` — seeded, replayable transient-fault
  schedules (link flaps, straggler NICs, transfer drops, silent
  corruption) injected in the style of :mod:`repro.failures`;
* :mod:`~repro.resilience.retry` — exponential-backoff retry policies
  for transfers that fail with
  :class:`~repro.network.link.TransientNetworkError`;
* :mod:`~repro.resilience.scrubber` — background checksum verification
  of parity blocks and committed images, with targeted bit-exact repair;
* :mod:`~repro.resilience.healing` — spare-node pool and the
  PROTECTED → DEGRADED → RE-PROTECTING → PROTECTED state machine that
  restores full single-failure tolerance after a crash, tracking the
  window of vulnerability as telemetry.

See ``docs/resilience.md`` for the fault taxonomy and knobs.
"""

from ..cluster.checksum import block_checksum, checksum_ok, page_checksums
from .faults import (
    FAULT_KINDS,
    TransientFault,
    TransientFaultInjector,
    TransientFaultSchedule,
    corrupt_node_state,
)
from .healing import ClusterHealth, SelfHealer, SparePool
from .retry import DEFAULT_RETRY, RetryExhausted, RetryPolicy, retrying_transfer
from .scrubber import ScrubReport, Scrubber

__all__ = [
    "FAULT_KINDS",
    "TransientFault",
    "TransientFaultInjector",
    "TransientFaultSchedule",
    "corrupt_node_state",
    "ClusterHealth",
    "SelfHealer",
    "SparePool",
    "DEFAULT_RETRY",
    "RetryExhausted",
    "RetryPolicy",
    "retrying_transfer",
    "ScrubReport",
    "Scrubber",
    "block_checksum",
    "page_checksums",
    "checksum_ok",
]
