"""The control plane's VM scheduler / placement engine.

Placement decisions used to be scattered: round-robin loops in scenario
factories, ad-hoc ``min(..., key=len(vms))`` picks in job runners, and
the :mod:`repro.core.placement` helpers called directly from experiment
wiring.  :class:`PlacementEngine` centralizes them behind one object the
coordinator owns:

* :meth:`choose_host` — least-loaded placement for a new VM;
* :meth:`spread` — balanced placement for a batch (reproduces the
  classic round-robin layout for identical VMs, so converted call sites
  stay bit-identical);
* :meth:`choose_drain_target` — constraint-aware re-placement during a
  drain: never co-locate a VM with another element (member or parity)
  of its own RAID group, so the layout stays valid mid-maintenance;
* :meth:`choose_restore_host` / :meth:`choose_parity_host` — façade
  over the :mod:`repro.core.recovery` pickers, so callers above core
  route recovery placement through the engine too.

The engine is deliberately stateless between calls — it reads the live
cluster every time — which makes it safe to consult from concurrent
operations.
"""

from __future__ import annotations

import heapq

from ..cluster.cluster import VirtualCluster
from ..cluster.vm import VirtualMachine
from ..core.groups import GroupLayout, LayoutError, RaidGroup
from ..core.recovery import choose_parity_node, choose_restore_node

__all__ = ["PlacementEngine", "PlacementError"]


class PlacementError(RuntimeError):
    """No node satisfies the placement constraints."""


class PlacementEngine:
    """Owns every placement decision the control plane makes."""

    def __init__(self, cluster: VirtualCluster):
        self.cluster = cluster

    # ------------------------------------------------------------------
    def _candidates(self, exclude=frozenset()):
        return [
            n for n in self.cluster.alive_nodes if n.node_id not in exclude
        ]

    def choose_host(self, exclude=frozenset()) -> int:
        """Least-loaded alive node outside ``exclude`` (ties by id)."""
        nodes = self._candidates(exclude)
        if not nodes:
            raise PlacementError("no eligible node for placement")
        return min(nodes, key=lambda n: (len(n.vms), n.node_id)).node_id

    def spread(self, count: int, exclude=frozenset()) -> list[int]:
        """Hosts for ``count`` identical VMs, balanced.

        Greedy least-loaded with id tie-break: on an empty cluster this
        reproduces round-robin (vm *i* → node ``i % n``) exactly, so
        converting factory call sites to the engine changes nothing.
        """
        nodes = self._candidates(exclude)
        if not nodes:
            raise PlacementError("no eligible node for placement")
        # heap of (load, node_id): each pop is the exact (load, id) minimum
        # the historical linear scan selected, at O(log n) per VM instead
        # of O(n) — placement sequences are bit-identical
        heap = [(len(n.vms), n.node_id) for n in nodes]
        heapq.heapify(heap)
        out: list[int] = []
        for _ in range(count):
            load, nid = heapq.heappop(heap)
            out.append(nid)
            heapq.heappush(heap, (load + 1, nid))
        return out

    def round_robin(self, count: int, exclude=frozenset()) -> list[int]:
        """Hosts for ``count`` VMs, strict round-robin over alive nodes.

        Bit-identical to the historical ``alive[i % len(alive)]`` loops
        in job cold-restart and scenario factories, which now route
        through the engine."""
        nodes = self._candidates(exclude)
        if not nodes:
            raise PlacementError("no eligible node for placement")
        return [nodes[i % len(nodes)].node_id for i in range(count)]

    # ------------------------------------------------------------------
    def choose_drain_target(
        self,
        vm: VirtualMachine,
        layout: GroupLayout | None = None,
        exclude=frozenset(),
    ) -> int:
        """Where to migrate ``vm`` so its RAID group stays orthogonal.

        Excludes the VM's current node, every node hosting another
        member of its group, the group's parity node, and ``exclude``
        (draining / fenced / maintenance nodes); then least-loaded.
        """
        banned = set(exclude)
        if vm.node_id is not None:
            banned.add(vm.node_id)
        if layout is not None:
            try:
                group = layout.group_of(vm.vm_id)
            except LayoutError:
                group = None
            if group is not None:
                banned.add(group.parity_node)
                for other in group.member_vm_ids:
                    if other == vm.vm_id:
                        continue
                    node = self.cluster.vm(other).node_id
                    if node is not None:
                        banned.add(node)
        nodes = self._candidates(banned)
        if not nodes:
            raise PlacementError(
                f"no orthogonality-preserving target for vm {vm.vm_id}"
            )
        return min(nodes, key=lambda n: (len(n.vms), n.node_id)).node_id

    # ------------------------------------------------------------------
    # recovery-placement façade over repro.core.recovery
    # ------------------------------------------------------------------
    def choose_restore_host(
        self, layout: GroupLayout, group: RaidGroup, exclude=None
    ) -> int:
        return choose_restore_node(self.cluster, layout, group, exclude=exclude)

    def choose_parity_host(
        self, layout: GroupLayout, group: RaidGroup, exclude=None
    ) -> int:
        return choose_parity_node(self.cluster, layout, group, exclude=exclude)
