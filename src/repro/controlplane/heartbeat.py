"""Keepalive emission and the fencing registry.

Every managed node runs a node-daemon-style keepalive process
(:func:`keepalive_loop`): once per interval it records "I'm alive" with
the coordinator's :class:`HeartbeatRegistry` — but only if the node is
actually up **and its NIC links are up**.  That single gate is what
folds the two failure sources into one detection path:

* a crash (``failures.injector``, or a kill op) stops the node, so the
  beat stops;
* a link flap (``resilience.faults``) leaves the node running but
  unreachable, so the beat *also* stops — from the coordinator's chair
  the two are indistinguishable, exactly as in a real cluster.

A *degraded* NIC (``scale_node_bandwidth``) keeps the link up: slow
keepalives still arrive, so stragglers are not fenced — slowness is not
death.

The registry answers one question — :meth:`HeartbeatRegistry.overdue` —
and the coordinator decides what fencing means (STONITH for
false-positives, recovery for true crashes; see
:class:`~repro.controlplane.coordinator.ControlPlane`).

Heartbeats are pure simulator events: they carry zero bytes over the
network model, so a fault-free run with the control plane enabled is
bit-identical (checkpoints, parity, flows, RNG) to a coordinator-free
run — the golden test pins that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import VirtualCluster
from ..sim import Interrupt
from ..telemetry.probe import Probe

__all__ = ["KeepalivePolicy", "HeartbeatRegistry", "keepalive_loop"]


@dataclass(frozen=True)
class KeepalivePolicy:
    """Fencing policy: beat cadence and how many misses mean death."""

    interval: float = 1.0
    miss_threshold: int = 3

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"interval must be > 0, got {self.interval}")
        if self.miss_threshold < 1:
            raise ValueError(
                f"miss_threshold must be >= 1, got {self.miss_threshold}"
            )

    @property
    def deadline(self) -> float:
        """Silence longer than this fences the node."""
        return self.interval * self.miss_threshold


class HeartbeatRegistry:
    """Last-seen table the fencing monitor sweeps."""

    def __init__(self, policy: KeepalivePolicy):
        self.policy = policy
        self.last_seen: dict[int, float] = {}

    def enroll(self, node_id: int, now: float) -> None:
        """Start monitoring a node; counts as a fresh beat."""
        self.last_seen[node_id] = now

    def unenroll(self, node_id: int) -> None:
        self.last_seen.pop(node_id, None)

    def enrolled(self, node_id: int) -> bool:
        return node_id in self.last_seen

    def beat(self, node_id: int, now: float) -> None:
        if node_id in self.last_seen:
            self.last_seen[node_id] = now

    def overdue(self, now: float) -> list[int]:
        """Enrolled nodes silent past the policy deadline."""
        deadline = self.policy.deadline
        return sorted(
            nid for nid, seen in self.last_seen.items()
            if now - seen > deadline
        )


def keepalive_loop(
    cluster: VirtualCluster,
    node_id: int,
    registry: HeartbeatRegistry,
    probe: Probe,
    suspended: set[int],
):
    """Process: one node's keepalive daemon.

    Beats only when the node is alive, not suspended (maintenance), and
    its tx link is up — a dead or partitioned node goes silent and the
    monitor notices.  Runs forever; stopped by interrupt.
    """
    sim = cluster.sim
    interval = registry.policy.interval
    try:
        while True:
            yield sim.timeout(interval)
            if not registry.enrolled(node_id):
                continue
            if node_id in suspended:
                continue
            node = cluster.node(node_id)
            if not node.alive:
                continue
            if not cluster.topology.tx[node_id].up:
                continue  # partitioned: the keepalive never arrives
            registry.beat(node_id, sim.now)
            probe.count(
                "repro_controlplane_heartbeats_total",
                help="Keepalives received by the coordinator",
            )
    except Interrupt:
        return
