"""Rolling node maintenance: drain → migrate → re-form parity → rejoin.

The drain path is where the control plane finally exercises
:func:`repro.migration.precopy.live_migrate` end to end over real
network flows, under the strict auditor, with **zero unprotected
windows**:

1. every VM on the draining node live-migrates to an
   orthogonality-preserving target (the placement engine refuses any
   node already holding an element of the VM's group);
2. the VM's committed checkpoint image moves with it — *staged* on the
   destination before the migration starts, *promoted* (source copy
   dropped) only after the VM lands, so at every instant the parity
   equation can be audited against the image at the VM's current home;
3. functional images are checksum-verified: the post-migration payload
   must equal the pre-migration fingerprint bit-for-bit;
4. parity blocks homed on the draining node are re-encoded onto fresh
   nodes via the protocol's own
   :meth:`~repro.core.dvdc.DisklessCheckpointer._reencode_parity`,
   which keeps the old block until the new one is stored;
5. the empty node is cleanly deactivated, maintained, and rejoined.

A strict :func:`repro.audit.invariants.audit_cluster` sweep runs after
every single step, so any gap — however short in sim-time — fails loud.
Transient network faults are ridden out with bounded retries.
"""

from __future__ import annotations

from ..cluster.checksum import block_checksum
from ..core.recovery import DisklessRecoveryReport
from ..migration.precopy import live_migrate
from ..network.link import NetworkError

__all__ = ["drain_node", "migrate_with_verify"]


def migrate_with_verify(cp, vm, dst_node_id: int):
    """Process: live-migrate ``vm`` with retries + checksum verification.

    Retries transient :class:`NetworkError` aborts up to
    ``cp.config.drain_retries`` times with doubling backoff.  For
    functional VMs the live image is fingerprinted before and after;
    a mismatch raises (and counts) — the migration machinery must be
    bit-exact.  Returns the :class:`~repro.migration.precopy.PrecopyResult`.
    """
    sim = cp.cluster.sim
    pre = block_checksum(vm.image.flat) if vm.image is not None else None
    attempts = cp.config.drain_retries + 1
    result = None
    for attempt in range(attempts):
        try:
            result = yield from live_migrate(
                cp.cluster, vm, dst_node_id,
                model=cp.precopy_model,
                tracer=cp.tracer,
                dirty_model=cp.dirty_model,
            )
            break
        except NetworkError:
            if attempt == attempts - 1:
                raise
            yield sim.timeout(cp.config.drain_retry_wait * (2 ** attempt))
    verified = None
    if pre is not None:
        verified = block_checksum(vm.image.flat) == pre
    cp.probe.count(
        "repro_controlplane_migrations_total",
        help="Drain/rebalance live migrations completed",
        verified={None: "n/a", True: "yes", False: "no"}[verified],
    )
    if verified is False:
        raise RuntimeError(
            f"vm {vm.vm_id}: post-migration image fails its pre-migration "
            "checksum — live migration corrupted guest memory"
        )
    if verified:
        cp.verified_migrations += 1
    cp.migrations.append(result)
    return result


def _stage_committed(cp, vm, src: int, dst: int):
    """Process: copy the VM's committed image to ``dst`` (source kept).

    While the copy streams — and all through the migration that follows
    — the authoritative committed image is still the one at the VM's
    current node, so audits never see a hole.
    """
    img = cp.cluster.node(src).checkpoint_store.get(vm.vm_id)
    if img is None:
        return None  # unprotected VM (no committed epoch yet): nothing to move
    attempts = cp.config.drain_retries + 1
    for attempt in range(attempts):
        try:
            yield cp.ck._transfer(
                src, dst, img.logical_bytes, label=f"drain.ckpt.vm{vm.vm_id}"
            )
            break
        except NetworkError:
            if attempt == attempts - 1:
                raise
            yield cp.cluster.sim.timeout(
                cp.config.drain_retry_wait * (2 ** attempt)
            )
    cp.cluster.node(dst).store_checkpoint(img)
    return img


def _promote_committed(cp, vm, src: int, dst: int, img) -> None:
    """Drop the source copy once the VM runs at ``dst`` (instantaneous —
    no yield between the VM landing and the promotion, so there is no
    audit-visible instant with the image on the wrong side)."""
    if img is None:
        return
    src_store = cp.cluster.node(src).checkpoint_store
    if src_store.get(vm.vm_id) is img:
        del src_store[vm.vm_id]


def _unstage_committed(cp, vm, dst: int, img) -> None:
    """Back out a staged copy after a failed migration."""
    if img is None:
        return
    dst_store = cp.cluster.node(dst).checkpoint_store
    if dst_store.get(vm.vm_id) is img:
        del dst_store[vm.vm_id]


def drain_node(cp, node_id: int) -> dict:
    """Process: fully evacuate ``node_id`` and power it down cleanly.

    Caller (the drain op) holds the protocol lock and has already placed
    the node in the maintenance set.  Returns a summary dict.
    """
    cluster = cp.cluster
    sim = cluster.sim
    node = cluster.node(node_id)
    if not node.alive:
        raise RuntimeError(f"node {node_id} is down; drain needs a live node")
    span = cp.probe.span_begin("controlplane.drain", sim.now, node=node_id)
    moved_vms: dict[int, int] = {}
    moved_parity: dict[int, int] = {}

    # ---- live-migrate every resident VM (committed image rides along)
    for vm in sorted(cluster.vms_on(node_id), key=lambda v: v.vm_id):
        dst = cp.engine.choose_drain_target(
            vm, cp.layout, exclude=cp.maintenance | cp.fenced
        )
        img = yield from _stage_committed(cp, vm, node_id, dst)
        try:
            yield from migrate_with_verify(cp, vm, dst)
        except BaseException:
            _unstage_committed(cp, vm, dst, img)
            raise
        _promote_committed(cp, vm, node_id, dst, img)
        moved_vms[vm.vm_id] = dst
        cp.audit(f"drain node {node_id}: vm {vm.vm_id} -> {dst}")

    # ---- re-encode parity blocks homed here onto fresh nodes
    for group in list(cp.layout.groups_with_parity_on(node_id)):
        attempts = cp.config.drain_retries + 1
        for attempt in range(attempts):
            report = DisklessRecoveryReport(failed_node=node_id)
            yield from cp.ck._reencode_parity(group, report)
            if group.group_id in report.reencoded_groups:
                break
            if attempt == attempts - 1:
                raise RuntimeError(
                    f"group {group.group_id}: could not re-home parity off "
                    f"node {node_id}"
                )
            yield sim.timeout(cp.config.drain_retry_wait * (2 ** attempt))
        new_home = cp.layout.group_of(group.member_vm_ids[0]).parity_node
        moved_parity[group.group_id] = new_home
        cp.audit(f"drain node {node_id}: parity g{group.group_id} -> {new_home}")

    # ---- node is now empty: clean power-down for maintenance
    node.deactivate()
    cp.audit(f"drain node {node_id}: deactivated")
    cp.probe.span_end(span, sim.now, vms=len(moved_vms), parity=len(moved_parity))
    cp.tracer.emit(
        sim.now, "controlplane.drained", node=node_id,
        vms=len(moved_vms), parity_groups=len(moved_parity),
    )
    return {
        "node": node_id,
        "migrated_vms": moved_vms,
        "moved_parity_groups": moved_parity,
    }
