"""repro.controlplane — an always-on, self-managing cluster coordinator.

The control plane turns the per-experiment wiring patterns
(failure-injector subscriptions, manual ``recover()`` calls, hand-rolled
placement loops) into one long-running coordinator over the simulator:

* :mod:`~repro.controlplane.heartbeat` — keepalive daemons + fencing
  registry: one detection path for crashes and link flaps;
* :mod:`~repro.controlplane.scheduler` — the placement engine owning
  initial placement, drain re-placement, and recovery placement;
* :mod:`~repro.controlplane.maintenance` — zero-gap rolling node drains
  over real live migrations with checksum verification;
* :mod:`~repro.controlplane.ops` — the PENDING→RUNNING→DONE/FAILED
  operation state machine behind :meth:`ControlPlane.submit`;
* :mod:`~repro.controlplane.coordinator` — :class:`ControlPlane` itself.

See ``docs/controlplane.md`` for the narrative walkthrough.
"""

from .coordinator import AuditFailure, ControlPlane, ControlPlaneConfig
from .heartbeat import HeartbeatRegistry, KeepalivePolicy, keepalive_loop
from .maintenance import drain_node, migrate_with_verify
from .ops import OP_KINDS, Operation, OpRejected, OpState
from .scheduler import PlacementEngine, PlacementError

__all__ = [
    "AuditFailure",
    "ControlPlane",
    "ControlPlaneConfig",
    "HeartbeatRegistry",
    "KeepalivePolicy",
    "keepalive_loop",
    "drain_node",
    "migrate_with_verify",
    "OP_KINDS",
    "Operation",
    "OpRejected",
    "OpState",
    "PlacementEngine",
    "PlacementError",
]
