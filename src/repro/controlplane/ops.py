"""Per-operation state machines for the control-plane API façade.

Every request submitted through :meth:`ControlPlane.submit` becomes an
:class:`Operation` with the four-state lifecycle

::

    PENDING ──▶ RUNNING ──▶ DONE
                   │
                   └──────▶ FAILED

mirroring how PVC-style api-daemons track cluster mutations: the caller
gets a handle immediately, the coordinator drives the transition, and
terminal states carry either a ``result`` payload or an ``error``
string.  Transitions are validated — an op can never go backwards or
terminate twice — so fuzzers that hammer the façade get a hard failure
the instant the coordinator mishandles a lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

__all__ = ["OpState", "Operation", "OpRejected", "OP_KINDS"]

#: The operation vocabulary of the façade.
OP_KINDS = ("provision", "kill", "drain", "query")


class OpState(str, Enum):
    """Lifecycle state of one submitted operation."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"

    @property
    def terminal(self) -> bool:
        return self in (OpState.DONE, OpState.FAILED)


class OpRejected(RuntimeError):
    """The coordinator refused an operation (safety guard, bad target).

    Rejections are ordinary FAILED terminals, not crashes — the cluster
    saying *no* to a mutation that would cost it its fault tolerance.
    """


_LEGAL = {
    OpState.PENDING: {OpState.RUNNING},
    OpState.RUNNING: {OpState.DONE, OpState.FAILED},
    OpState.DONE: set(),
    OpState.FAILED: set(),
}


@dataclass
class Operation:
    """One submitted control-plane request and its lifecycle record."""

    op_id: int
    kind: str
    params: dict = field(default_factory=dict)
    state: OpState = OpState.PENDING
    result: Any = None
    error: str | None = None
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: :class:`~repro.sim.process.SimEvent` triggered (with the op as
    #: value) on entering a terminal state; yieldable by processes.
    done: Any = None

    def _to(self, state: OpState, now: float) -> None:
        if state not in _LEGAL[self.state]:
            raise RuntimeError(
                f"op {self.op_id} ({self.kind}): illegal transition "
                f"{self.state.value} -> {state.value}"
            )
        self.state = state
        if state == OpState.RUNNING:
            self.started_at = now
        elif state.terminal:
            self.finished_at = now

    def start(self, now: float) -> None:
        self._to(OpState.RUNNING, now)

    def finish(self, now: float, result: Any = None) -> None:
        self.result = result
        self._to(OpState.DONE, now)

    def fail(self, now: float, error: str) -> None:
        self.error = error
        self._to(OpState.FAILED, now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Op {self.op_id} {self.kind} {self.state.value}>"
