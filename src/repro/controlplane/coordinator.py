"""The always-on cluster coordinator.

:class:`ControlPlane` is the long-running in-sim daemon that keeps a
DVDC cluster protected without per-experiment wiring, structured like a
PVC-style control plane:

* **keepalive/fencing** — every managed node runs a
  :func:`~repro.controlplane.heartbeat.keepalive_loop`; the monitor
  fences any node silent past ``interval · miss_threshold``.  Crashes
  (from :class:`~repro.failures.injector.FailureInjector` or kill ops)
  and link flaps (from :mod:`repro.resilience.faults`) both silence the
  beat, so one detection path covers both.  A fenced node that is still
  alive (a false positive: long flap, partition) is STONITH'd —
  power-fenced via ``kill_node`` — because an unreachable node must be
  assumed rogue before its VMs are rebuilt elsewhere;
* **recovery pipeline** — fenced nodes queue into a serialized recovery
  worker: protocol :meth:`~repro.core.dvdc.DisklessCheckpointer.recover`,
  then :meth:`~repro.resilience.healing.SelfHealer.reprotect` (spares),
  then a strict audit;
* **checkpoint cadence** — an optional periodic loop drives
  ``run_cycle()`` every ``checkpoint_interval`` sim-seconds, pausing
  while recovery or maintenance holds the protocol lock;
* **API façade** — :meth:`submit` accepts concurrent
  provision/kill/drain/query operations, each driven through the
  PENDING→RUNNING→DONE/FAILED state machine of
  :mod:`repro.controlplane.ops`.

Determinism contract: the control plane draws **no random numbers** and
moves **no network bytes** of its own in the fault-free path, so a run
with the coordinator enabled is bit-identical (checkpoints, parity,
flows, RNG streams) to a coordinator-free run — pinned by the golden
test.  All new telemetry lives under ``repro_controlplane_*``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..audit.invariants import AuditReport, audit_cluster
from ..cluster.cluster import VirtualCluster
from ..cluster.vm import VMState
from ..core.dvdc import DisklessCheckpointer
from ..core.groups import LayoutError, RaidGroup, build_orthogonal_layout
from ..migration.precopy import PrecopyModel
from ..resilience.healing import ClusterHealth, SelfHealer, SparePool
from ..resilience.scrubber import Scrubber
from ..sim import Interrupt, NULL_TRACER, Resource, Tracer
from ..telemetry import probe_of
from .heartbeat import HeartbeatRegistry, KeepalivePolicy, keepalive_loop
from .maintenance import drain_node
from .ops import OP_KINDS, Operation, OpRejected, OpState
from .scheduler import PlacementEngine

__all__ = ["ControlPlane", "ControlPlaneConfig", "AuditFailure"]


class AuditFailure(RuntimeError):
    """A strict post-reconfiguration audit found fatal violations."""


@dataclass(frozen=True)
class ControlPlaneConfig:
    """Tunables of the coordinator daemons."""

    #: keepalive cadence (sim seconds)
    heartbeat_interval: float = 1.0
    #: consecutive silent intervals before a node is fenced
    miss_threshold: int = 3
    #: periodic ``run_cycle()`` cadence; None disables the cycle loop
    checkpoint_interval: float | None = None
    #: node downtime after a STONITH power-fence before it rejoins
    repair_time: float = 30.0
    #: how long a drained node stays down for maintenance by default
    maintenance_seconds: float = 5.0
    #: transient-fault retries for drain migrations/transfers
    drain_retries: int = 3
    drain_retry_wait: float = 0.5
    #: run post-reconfiguration audits in strict mode and raise on
    #: fatal violations
    strict_audit: bool = True
    #: background scrub cadence; None scrubs only before strict audits
    scrub_interval: float | None = None
    #: target size for parity groups formed from provisioned VMs
    group_size: int = 4
    #: erasure tolerance used by the kill-op safety guard; None derives
    #: it from the checkpointer's coding scheme (1 for XOR, m for RS(k,m))
    tolerance: int | None = None


class ControlPlane:
    """Always-on coordinator over a :class:`DisklessCheckpointer`."""

    def __init__(
        self,
        cluster: VirtualCluster,
        checkpointer: DisklessCheckpointer,
        spares: SparePool | None = None,
        config: ControlPlaneConfig | None = None,
        tracer: Tracer = NULL_TRACER,
        precopy_model: PrecopyModel | None = None,
        dirty_model=None,
    ):
        self.cluster = cluster
        self.ck = checkpointer
        self.layout = checkpointer.layout
        self.config = config or ControlPlaneConfig()
        self.tracer = tracer
        self.probe = probe_of(tracer)
        self.policy = KeepalivePolicy(
            self.config.heartbeat_interval, self.config.miss_threshold
        )
        self.registry = HeartbeatRegistry(self.policy)
        self.engine = PlacementEngine(cluster)
        self.spares = spares
        self.healer = SelfHealer(checkpointer, spares, tracer=tracer)
        self.scrubber = Scrubber(
            cluster, self.layout, tracer=tracer, scheme=checkpointer.scheme
        )
        #: drain migrations use this pre-copy model (default: node NIC)
        self.precopy_model = precopy_model
        #: optional WorkloadDirtyModel applied to drain migrations
        self.dirty_model = dirty_model

        #: nodes currently under maintenance (drained or draining)
        self.maintenance: set[int] = set()
        #: nodes fenced and not yet back in service
        self.fenced: set[int] = set()
        # recovery placement inside the checkpointer (parity re-homes,
        # restore targets) must honor the same cordons drain targeting
        # does — otherwise a drain's own parity re-encode can land on a
        # node being drained (see the geo cordon regression test)
        checkpointer.cordons = lambda: self.maintenance | self.fenced
        self.ops: list[Operation] = []
        self.audits: list[AuditReport] = []
        self.recoveries: list = []
        self.migrations: list = []
        self.verified_migrations = 0
        #: vm_ids provisioned but not yet formed into parity groups
        self.pending_protect: list[int] = []

        # one protocol lock serializes cycles, recoveries, and drains —
        # the cluster-state mutations that must not interleave
        self._lock = Resource(cluster.sim, capacity=1)
        self._recovery_queue: list[int] = []
        self._recovery_proc = None
        self._heal_proc = None
        self._recovered_waiters: dict[int, list] = {}
        #: last completed recovery result per node, cleared when the
        #: node fails again — lets late waiters resolve immediately
        self._recovery_results: dict[int, tuple] = {}
        self._procs: list = []
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ControlPlane":
        """Spawn the daemon processes; idempotent."""
        if self._started:
            return self
        self._started = True
        sim = self.cluster.sim
        for node in self.cluster.nodes:
            if node.alive:
                self.registry.enroll(node.node_id, sim.now)
            self._procs.append(sim.process(keepalive_loop(
                self.cluster, node.node_id, self.registry, self.probe,
                self.maintenance,
            )))
        self._procs.append(sim.process(self._monitor_loop()))
        if self.config.checkpoint_interval is not None:
            self._procs.append(sim.process(self._checkpoint_loop()))
        if self.config.scrub_interval is not None:
            self._procs.append(sim.process(self._scrub_loop()))
        self.tracer.emit(sim.now, "controlplane.started",
                         nodes=len(self.registry.last_seen))
        return self

    def stop(self) -> None:
        """Interrupt every daemon loop so the event heap can drain."""
        for proc in self._procs:
            if proc.alive:
                proc.interrupt("controlplane stopped")
        self._procs.clear()
        self._started = False
        self.tracer.emit(self.cluster.sim.now, "controlplane.stopped")

    def attach_injector(self, injector) -> None:
        """Fold a :class:`~repro.failures.injector.FailureInjector` in.

        The subscriber does exactly what a real power event does — kills
        the node and books the repair; *detection* is left entirely to
        the keepalive path, so injected crashes and organic silence are
        handled identically.
        """
        injector.subscribe(self._on_injected_failure)

    def _on_injected_failure(self, ev) -> None:
        node = self.cluster.node(ev.node_id)
        if not node.alive or ev.node_id in self.maintenance:
            return
        self._recovery_results.pop(ev.node_id, None)
        self.cluster.kill_node(ev.node_id)
        self.healer.on_failure()
        self.cluster.sim.schedule(
            self.config.repair_time, self._repair, ev.node_id
        )

    # ------------------------------------------------------------------
    # keepalive monitor + fencing
    # ------------------------------------------------------------------
    def _monitor_loop(self):
        sim = self.cluster.sim
        try:
            while True:
                yield sim.timeout(self.policy.interval)
                now = sim.now
                spare_ids = (
                    set(self.spares.available)
                    if self.spares is not None else set()
                )
                for node in self.cluster.nodes:
                    nid = node.node_id
                    if nid in self.maintenance or nid in self.fenced:
                        continue
                    if node.alive:
                        # enroll newly-live nodes (repairs, acquired spares)
                        if not self.registry.enrolled(nid):
                            self.registry.enroll(nid, now)
                    elif not self.registry.enrolled(nid) and nid not in spare_ids:
                        # died outside the keepalive window (e.g. killed
                        # right after a repair, before re-enrollment):
                        # there is no beat to miss, fence immediately
                        self._fence(nid)
                for nid in self.registry.overdue(now):
                    self._fence(nid)
        except Interrupt:
            return

    def _fence(self, node_id: int) -> None:
        sim = self.cluster.sim
        node = self.cluster.node(node_id)
        was_alive = node.alive
        self.registry.unenroll(node_id)
        self.fenced.add(node_id)
        self._recovery_results.pop(node_id, None)
        self.tracer.emit(
            sim.now, "controlplane.fence", node=node_id,
            false_positive=was_alive,
        )
        self.probe.count(
            "repro_controlplane_fences_total",
            help="Nodes fenced after missed keepalives",
            reason="false-positive" if was_alive else "crash",
        )
        if was_alive:
            # STONITH: the node answers to no one — power-fence it so
            # its VMs can be rebuilt without a split brain
            self.cluster.kill_node(node_id)
            self.healer.on_failure()
            sim.schedule(self.config.repair_time, self._repair, node_id)
        self._recovery_queue.append(node_id)
        if self._recovery_proc is None or not self._recovery_proc.alive:
            self._recovery_proc = sim.process(self._recovery_worker())

    def _repair(self, node_id: int) -> None:
        if node_id in self.maintenance:
            return  # a drain op owns this node's lifecycle
        node = self.cluster.node(node_id)
        if node.alive:
            return
        self.cluster.repair_node(node_id)
        self.fenced.discard(node_id)
        self.tracer.emit(self.cluster.sim.now, "controlplane.rejoin",
                         node=node_id)
        # the monitor loop re-enrolls the node on its next sweep
        if (
            self.healer.state is not ClusterHealth.PROTECTED
            and not self._recovery_queue
            and (self._heal_proc is None or not self._heal_proc.alive)
        ):
            # a repaired node restores capacity that an earlier
            # reprotect may have lacked (e.g. the spare pool ran dry)
            self._heal_proc = self.cluster.sim.process(
                self._background_heal()
            )

    def _background_heal(self):
        req = self._lock.request()
        yield req
        try:
            if self._recovery_queue:
                return  # a fresh crash owns the gap now
            try:
                yield from self.healer.reprotect()
            except RuntimeError:
                return  # still short on capacity; the next repair retries
        finally:
            self._lock.release()

    # ------------------------------------------------------------------
    # recovery pipeline
    # ------------------------------------------------------------------
    def _recovery_worker(self):
        sim = self.cluster.sim
        while self._recovery_queue:
            node_id = self._recovery_queue.pop(0)
            req = self._lock.request()
            yield req
            span = self.probe.span_begin(
                "controlplane.recover", sim.now, node=node_id
            )
            ok, error = True, None
            try:
                try:
                    if self.ck.committed_epoch < 0:
                        self._cold_restore()
                    else:
                        report = yield from self.ck.recover(node_id)
                        self.recoveries.append(report)
                except RuntimeError as exc:
                    ok, error = False, str(exc)
                    # last resort, once the pileup has drained: a loss
                    # beyond single-parity tolerance cannot be rebuilt,
                    # so declare the VMs lost and reprovision them
                    if not self._recovery_queue and self._can_salvage():
                        ok, error = yield from self._salvage(error)
                if ok:
                    try:
                        yield from self.healer.reprotect()
                        # audit once the queue drains: a strict sweep
                        # mid-pileup would flag the *next* crash we have
                        # not absorbed yet, not this recovery
                        if not self._recovery_queue:
                            self.audit(f"recovery of node {node_id}")
                    except Exception as exc:
                        ok, error = False, f"{type(exc).__name__}: {exc}"
            finally:
                self._lock.release()
                self.probe.span_end(span, sim.now, ok=ok)
                if not ok:
                    self.probe.count(
                        "repro_controlplane_recovery_failures_total",
                        help="Recoveries that raised (e.g. double failure)",
                    )
                    self.tracer.emit(sim.now, "controlplane.recovery_failed",
                                     node=node_id, error=error)
                self._notify_recovered(node_id, ok, error)
        self._recovery_proc = None

    def _can_salvage(self) -> bool:
        from ..checkpoint.strategies import IncrementalCapture

        # incremental capture cannot re-baseline a fresh VM mid-run;
        # there the failure is surfaced to the caller instead
        return self.ck.committed_epoch >= 0 and not isinstance(
            self.ck.strategy, IncrementalCapture
        )

    def _salvage(self, cause: str):
        """Process: declare unrecoverable VMs lost, reprovision them.

        Overlapping crashes can exceed what single parity can rebuild.
        Rather than leave the cluster permanently degraded, do what a
        real control plane does: reprovision the unrecoverable VMs with
        fresh state (the data loss is counted in telemetry) and take a
        full checkpoint epoch so parity covers the new images.
        """
        from ..core.recovery import choose_parity_node
        from .scheduler import PlacementError

        sim = self.cluster.sim
        lost = [
            vm for vm in self.cluster.all_vms
            if vm.state == VMState.FAILED and vm.node_id is None
        ]
        try:
            for vm in lost:
                # keep the group spread: avoid its parity home and the
                # hosts of its surviving members where possible
                exclude = self.maintenance | self.fenced
                try:
                    group = self.layout.group_of(vm.vm_id)
                except LayoutError:
                    group = None
                if group is not None:
                    exclude = exclude | set(group.parity_nodes) | {
                        self.cluster.vm(v).node_id
                        for v in group.member_vm_ids
                        if v != vm.vm_id
                        and self.cluster.vm(v).node_id is not None
                    }
                try:
                    target = self.engine.choose_host(exclude=exclude)
                except PlacementError:
                    # degraded placement beats leaving the VM dead
                    target = self.engine.choose_host(
                        exclude=self.maintenance | self.fenced
                    )
                self.cluster.place_failed_vm(vm.vm_id, target)
                vm.revive()
                self.probe.count(
                    "repro_controlplane_vms_lost_total",
                    help="VMs reprovisioned empty after unrecoverable loss",
                )
            self.tracer.emit(
                sim.now, "controlplane.salvage",
                vms=[vm.vm_id for vm in lost], cause=cause,
            )
            # groups with a shard home still down would abort the fresh
            # epoch: point those shards at live nodes first — the epoch
            # writes brand-new blocks, nothing is read from the old home
            # (its RAM died with it).  Every shard keeps its own distinct
            # non-member node.
            for group in list(self.layout.groups):
                homes = list(group.parity_nodes)
                dead = [
                    j for j, p in enumerate(homes)
                    if not self.cluster.node(p).alive
                ]
                if not dead:
                    continue
                for j in dead:
                    others = {h for i, h in enumerate(homes) if i != j}
                    homes[j] = choose_parity_node(
                        self.cluster, self.layout, group,
                        exclude=self.maintenance | self.fenced | others,
                    )
                self.layout.replace_group(
                    group.group_id,
                    RaidGroup(
                        group.group_id, group.member_vm_ids,
                        homes[0], tuple(homes[1:]),
                    ),
                )
            result = yield from self.ck.run_cycle()
        except Exception as exc:
            return False, f"salvage failed: {type(exc).__name__}: {exc}"
        if not result.committed:
            return False, "salvage cycle aborted by a concurrent failure"
        return True, None

    def _cold_restore(self) -> None:
        """Nothing committed yet: re-place dead VMs empty (cold restart)."""
        for vm in self.cluster.all_vms:
            if vm.state == VMState.FAILED and vm.node_id is None:
                target = self.engine.choose_host(
                    exclude=self.maintenance | self.fenced
                )
                self.cluster.place_failed_vm(vm.vm_id, target)
                vm.revive()

    def recovered_event(self, node_id: int):
        """A yieldable event triggered when ``node_id``'s recovery ends.

        The event value is ``(ok, error)``.  If the node's last failure
        has already been recovered, the event resolves immediately."""
        ev = self.cluster.sim.event()
        if node_id in self._recovery_results:
            ev.succeed(self._recovery_results[node_id])
        else:
            self._recovered_waiters.setdefault(node_id, []).append(ev)
        return ev

    def _notify_recovered(self, node_id: int, ok: bool, error) -> None:
        self._recovery_results[node_id] = (ok, error)
        for ev in self._recovered_waiters.pop(node_id, []):
            ev.succeed((ok, error))

    # ------------------------------------------------------------------
    # periodic protocol loops
    # ------------------------------------------------------------------
    def _checkpoint_loop(self):
        sim = self.cluster.sim
        interval = self.config.checkpoint_interval
        try:
            while True:
                yield sim.timeout(interval)
                if self._recovery_queue or (
                    self._recovery_proc is not None
                    and self._recovery_proc.alive
                ):
                    continue  # recovery owns the lock; cycle next tick
                yield from self.checkpoint()
        except Interrupt:
            return

    def checkpoint(self):
        """Process: one coordinated checkpoint epoch under the lock.

        Enrolls provisioned-but-unprotected VMs first, so their first
        capture lands in the same committed epoch.  Returns the
        :class:`~repro.core.recovery.DisklessCycleResult`.
        """
        req = self._lock.request()
        yield req
        try:
            self._enroll_pending()
            result = yield from self.ck.run_cycle()
            self.probe.count(
                "repro_controlplane_cycles_total",
                help="Checkpoint cycles driven by the coordinator",
                committed="yes" if result.committed else "no",
            )
            return result
        finally:
            self._lock.release()

    def _scrub_loop(self):
        sim = self.cluster.sim
        try:
            while True:
                yield sim.timeout(self.config.scrub_interval)
                self.scrubber.scrub_once()
        except Interrupt:
            return

    def _enroll_pending(self) -> None:
        """Form parity groups from provisioned-but-unprotected VMs.

        Called at a checkpoint boundary under the lock; the new groups'
        first capture in the imminent cycle is a full one (the capture
        strategies treat base-less VMs as epoch-0), bringing them under
        protection atomically with the epoch commit.
        """
        if not self.pending_protect:
            return
        vms = [
            self.cluster.vm(v) for v in self.pending_protect
            if self.cluster.vm(v).node_id is not None
        ]
        self.pending_protect = [
            v for v in self.pending_protect
            if self.cluster.vm(v).node_id is None
        ]
        if not vms:
            return
        hosts = {vm.node_id for vm in vms}
        group_size = max(1, min(self.config.group_size, len(hosts)))
        sub = build_orthogonal_layout(
            self.cluster, group_size, parity="rotate", vms=vms,
            n_parity=self.ck.scheme.n_shards,
        )
        next_id = self.layout.next_group_id()
        for i, g in enumerate(sub.groups):
            group = RaidGroup(
                next_id + i, g.member_vm_ids, g.parity_node,
                g.extra_parity_nodes,
            )
            self.layout.add_group(group)
            self.tracer.emit(
                self.cluster.sim.now, "controlplane.group_formed",
                group=group.group_id, members=list(group.member_vm_ids),
                parity_node=group.parity_node,
            )

    # ------------------------------------------------------------------
    # audits
    # ------------------------------------------------------------------
    def audit(self, context: str) -> AuditReport:
        """Strict invariant sweep after a reconfiguration.

        Scrubs first (corruption found by checksum is repaired in place,
        like the fuzzer does before its strict audits), then audits, and
        raises :class:`AuditFailure` on fatal findings when configured
        strict."""
        strict = self.config.strict_audit
        if strict:
            self.scrubber.scrub_once()
        report = audit_cluster(
            self.cluster, self.layout, self.ck.committed_epoch,
            strict=strict, context=context, scheme=self.ck.scheme,
        )
        self.audits.append(report)
        self.probe.count(
            "repro_controlplane_audits_total",
            help="Post-reconfiguration audit sweeps",
            ok="yes" if report.ok else "no",
        )
        if strict and not report.ok:
            raise AuditFailure(
                f"audit '{context}': "
                + "; ".join(v.detail for v in report.fatal)
            )
        return report

    # ------------------------------------------------------------------
    # API façade
    # ------------------------------------------------------------------
    def submit(self, kind: str, **params) -> Operation:
        """Submit an operation; returns its handle immediately.

        The op runs as its own process — submissions are concurrent, and
        ops that mutate protocol state serialize internally on the
        protocol lock.  ``op.done`` is a yieldable event that fires on
        the terminal transition.
        """
        if not self._started:
            raise RuntimeError("control plane is not started")
        if kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {kind!r}; expected {OP_KINDS}")
        sim = self.cluster.sim
        op = Operation(
            op_id=len(self.ops), kind=kind, params=dict(params),
            submitted_at=sim.now, done=sim.event(),
        )
        self.ops.append(op)
        sim.process(self._run_op(op))
        return op

    def _run_op(self, op: Operation):
        sim = self.cluster.sim
        op.start(sim.now)
        try:
            if op.kind == "query":
                result = self.status()
            elif op.kind == "provision":
                result = yield from self._op_provision(op)
            elif op.kind == "kill":
                result = yield from self._op_kill(op)
            else:
                result = yield from self._op_drain(op)
            op.finish(sim.now, result)
        except Exception as exc:  # op isolation: one failure, one FAILED op
            op.fail(sim.now, f"{type(exc).__name__}: {exc}")
        try:
            self.probe.count(
                "repro_controlplane_ops_total",
                help="Control-plane operations by kind and terminal state",
                kind=op.kind, state=op.state.value,
            )
            self.tracer.emit(
                sim.now, "controlplane.op", op=op.op_id, op_kind=op.kind,
                state=op.state.value,
            )
        finally:
            op.done.succeed(op)

    # -- provision ------------------------------------------------------
    def _op_provision(self, op: Operation):
        from ..checkpoint.strategies import IncrementalCapture

        if (
            isinstance(self.ck.strategy, IncrementalCapture)
            and self.ck.committed_epoch >= 0
        ):
            raise OpRejected(
                "provisioning into a running incremental-capture protocol "
                "is unsupported (new VMs have no base epoch); use a "
                "full/forked capture strategy"
            )
        p = op.params
        node_id = self.engine.choose_host(
            exclude=self.maintenance | self.fenced
        )
        vm = self.cluster.create_vm(
            node_id,
            p.get("memory_bytes", 1e9),
            dirty_rate=p.get("dirty_rate", 0.0),
            image_pages=p.get("image_pages"),
            page_size=p.get("page_size", 4096),
            name=p.get("name"),
        )
        self.pending_protect.append(vm.vm_id)
        self.probe.count(
            "repro_controlplane_provisioned_vms_total",
            help="VMs created through the façade",
        )
        return {"vm_id": vm.vm_id, "node": node_id}
        yield  # pragma: no cover — marks this function as a process

    # -- kill -----------------------------------------------------------
    def _safe_to_kill(self, node_id: int) -> str | None:
        """Why killing ``node_id`` now would be unsafe, or None if fine.

        Counts, per group, elements already unavailable plus elements
        that would go down with the candidate; more than ``tolerance``
        lost elements in any group means unrecoverable data loss.
        """
        for vm in self.cluster.vms_on(node_id):
            if vm.vm_id in self.pending_protect:
                return f"vm {vm.vm_id} on node {node_id} is not yet protected"
        tolerance = (
            self.config.tolerance
            if self.config.tolerance is not None
            else self.ck.scheme.tolerance
        )
        for group in self.layout.groups:
            lost = 0
            for v in group.member_vm_ids:
                home = self.cluster.vm(v).node_id
                if home is None or not self.cluster.node(home).alive:
                    lost += 1
                elif home == node_id:
                    lost += 1
            for pnode in group.parity_nodes:
                if pnode == node_id or not self.cluster.node(pnode).alive:
                    lost += 1
            if lost > tolerance:
                return (
                    f"group {group.group_id} would lose {lost} elements "
                    f"(tolerance {tolerance})"
                )
        return None

    def _op_kill(self, op: Operation):
        node_id = int(op.params["node_id"])
        sim = self.cluster.sim
        req = self._lock.request()
        yield req
        try:
            node = self.cluster.node(node_id)
            if node_id in self.maintenance:
                raise OpRejected(f"node {node_id} is under maintenance")
            if not node.alive:
                raise OpRejected(f"node {node_id} is already down")
            reason = self._safe_to_kill(node_id)
            if reason is not None:
                raise OpRejected(f"kill refused: {reason}")
            self._recovery_results.pop(node_id, None)
            self.cluster.kill_node(node_id)
            self.healer.on_failure()
            sim.schedule(self.config.repair_time, self._repair, node_id)
        finally:
            self._lock.release()
        # detection now runs through the keepalive path like any crash
        ok, error = yield self.recovered_event(node_id)
        if not ok:
            raise RuntimeError(f"recovery after kill failed: {error}")
        return {"node": node_id, "recovered": True}

    # -- drain ----------------------------------------------------------
    def _op_drain(self, op: Operation):
        node_id = int(op.params["node_id"])
        rejoin = bool(op.params.get("rejoin", True))
        hold = float(
            op.params.get("maintenance_seconds", self.config.maintenance_seconds)
        )
        sim = self.cluster.sim
        req = self._lock.request()
        yield req
        entered = False
        try:
            if node_id in self.maintenance:
                raise OpRejected(f"node {node_id} is already under maintenance")
            if node_id in self.fenced or not self.cluster.node(node_id).alive:
                raise OpRejected(f"node {node_id} is down; nothing to drain")
            self.maintenance.add(node_id)
            self.registry.unenroll(node_id)
            entered = True
            summary = yield from drain_node(self, node_id)
        except BaseException:
            if entered:
                self.maintenance.discard(node_id)
            raise
        finally:
            self._lock.release()
        # ---- maintenance hold: the node is powered down, cluster stays
        # fully protected on the remaining nodes
        yield sim.timeout(hold)
        if rejoin:
            self.cluster.repair_node(node_id)
            self.maintenance.discard(node_id)
            self.audit(f"node {node_id} rejoined after maintenance")
            self.tracer.emit(sim.now, "controlplane.rejoin", node=node_id)
        summary["rejoined"] = rejoin
        return summary

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def status(self) -> dict:
        """Snapshot of the coordinator's world view."""
        states = {s.value: 0 for s in OpState}
        for op in self.ops:
            states[op.state.value] += 1
        return {
            "nodes": self.cluster.n_nodes,
            "alive": len(self.cluster.alive_nodes),
            "maintenance": sorted(self.maintenance),
            "fenced": sorted(self.fenced),
            "vms": len(self.cluster.all_vms),
            "unprotected_vms": len(self.pending_protect),
            "groups": len(self.layout.groups),
            "committed_epoch": self.ck.committed_epoch,
            "health": self.healer.state.value,
            "ops": states,
            "audits": len(self.audits),
            "audit_violations": sum(
                len(r.violations) for r in self.audits
            ),
            "recoveries": len(self.recoveries),
            "migrations": len(self.migrations),
            "verified_migrations": self.verified_migrations,
            "spares_available": (
                len(self.spares) if self.spares is not None else 0
            ),
            "spares_exhausted": (
                self.spares.exhausted if self.spares is not None else 0
            ),
        }

    @property
    def all_ops_terminal(self) -> bool:
        return all(op.state.terminal for op in self.ops)
