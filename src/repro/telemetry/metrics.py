"""Labeled metric series: counters, gauges, histograms.

A :class:`MetricsRegistry` owns *metric families*; a family plus a set
of label values identifies one *series*.  The three family kinds mirror
Prometheus semantics:

* :class:`Counter` — monotone accumulator (events fired, bytes moved);
* :class:`Gauge` — instantaneous value (queue depth, utilization), with
  a tracked observed maximum for post-run summaries;
* :class:`Histogram` — fixed-bucket distribution (Prometheus
  ``le``-style cumulative buckets) **plus** streaming P² quantile
  estimators (Jain & Chlamtac 1985) for q50/q90/q99, so per-run latency
  summaries need no sample retention.

Everything is plain Python with no locks: the simulator is
single-threaded and campaign workers aggregate into their own
registries.  Export lives in :mod:`repro.telemetry.export`.
"""

from __future__ import annotations

import math
import re
from typing import Iterator

import numpy as np

__all__ = [
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "P2Quantile",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
]


class MetricError(ValueError):
    """Misuse of the metrics layer: bad names, kind clashes, bad values."""


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Log-spaced seconds buckets covering microsecond blips to multi-minute
#: recoveries — a sane default for every latency histogram in the repo.
DEFAULT_BUCKETS = (
    1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5,
    1.0, 5.0, 10.0, 30.0, 60.0, 300.0, 900.0,
)

#: Quantiles every histogram tracks with streaming P² estimators.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


class P2Quantile:
    """Streaming quantile estimate via the P² algorithm.

    Keeps five markers whose heights approximate the q-quantile without
    storing samples.  Exact for the first five observations; the classic
    piecewise-parabolic update thereafter.  Deterministic given the
    observation sequence.
    """

    __slots__ = ("q", "_h", "_pos", "_desired", "_incr", "_n")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise MetricError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._h: list[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._incr = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)
        self._n = 0

    def add(self, x: float) -> None:
        self._n += 1
        h = self._h
        if len(h) < 5:
            h.append(x)
            h.sort()
            return
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            self._pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._incr[i]
        for i in (1, 2, 3):
            d = self._desired[i] - self._pos[i]
            if (d >= 1.0 and self._pos[i + 1] - self._pos[i] > 1.0) or (
                d <= -1.0 and self._pos[i - 1] - self._pos[i] < -1.0
            ):
                step = 1.0 if d > 0 else -1.0
                cand = self._parabolic(i, step)
                if h[i - 1] < cand < h[i + 1]:
                    h[i] = cand
                else:
                    h[i] = self._linear(i, step)
                self._pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._h, self._pos
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._h, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    @property
    def n(self) -> int:
        return self._n

    @property
    def value(self) -> float:
        """Current estimate; NaN before any observation."""
        if not self._h:
            return math.nan
        if self._n <= 5:
            s = sorted(self._h[: self._n])
            idx = min(len(s) - 1, max(0, math.ceil(self.q * len(s)) - 1))
            return s[idx]
        return self._h[2]


class Counter:
    """Monotone accumulator series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise MetricError(f"counter increment must be >= 0, got {n}")
        self.value += n


class Gauge:
    """Instantaneous value series; remembers the maximum it ever held."""

    __slots__ = ("value", "max_value")

    def __init__(self) -> None:
        self.value = 0.0
        self.max_value = -math.inf

    def set(self, v: float) -> None:
        self.value = float(v)
        if v > self.max_value:
            self.max_value = float(v)

    def inc(self, n: float = 1.0) -> None:
        self.set(self.value + n)

    def dec(self, n: float = 1.0) -> None:
        self.set(self.value - n)


class Histogram:
    """Fixed cumulative buckets + streaming quantiles + sum/count."""

    __slots__ = (
        "buckets", "counts", "sum", "count", "min", "max",
        "_quantiles", "_bounds",
    )

    def __init__(
        self,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise MetricError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise MetricError(f"duplicate bucket bounds: {bounds}")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        self._quantiles = {q: P2Quantile(q) for q in quantiles}
        self._bounds = np.asarray(bounds, dtype=np.float64)

    def observe(self, v: float) -> None:
        v = float(v)
        if math.isnan(v):
            raise MetricError("cannot observe NaN")
        self.sum += v
        self.count += 1
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        i = 0
        for bound in self.buckets:
            if v <= bound:
                break
            i += 1
        self.counts[i] += 1
        for est in self._quantiles.values():
            est.add(v)

    def observe_batch(self, values) -> None:
        """Observe a whole array at once (vectorized bucket counting).

        Buckets, count, min/max, and the P² estimators update exactly as
        a sequential :meth:`observe` loop would.  ``sum`` uses numpy's
        pairwise summation, so it can differ from the sequential sum in
        the last float bits — consumers needing bit-identical digests
        should pin the sample arrays or the P² marker state, not the
        histogram sum.
        """
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        if np.isnan(arr).any():
            raise MetricError("cannot observe NaN")
        # searchsorted(side="left") = first bound with v <= bound, the
        # same rule as the scalar path's linear scan
        idx = np.searchsorted(self._bounds, arr, side="left")
        for i, c in enumerate(np.bincount(idx, minlength=len(self.counts))):
            if c:
                self.counts[i] += int(c)
        self.sum += float(arr.sum())
        self.count += int(arr.size)
        lo = float(arr.min())
        hi = float(arr.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi
        for est in self._quantiles.values():
            add = est.add
            for v in arr.tolist():
                add(v)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Streaming estimate for a tracked q, else bucket interpolation."""
        est = self._quantiles.get(q)
        if est is not None:
            return est.value
        return self._bucket_quantile(q)

    def quantiles(self) -> dict[float, float]:
        """All tracked quantile estimates."""
        return {q: est.value for q, est in sorted(self._quantiles.items())}

    def _bucket_quantile(self, q: float) -> float:
        if not 0.0 < q < 1.0:
            raise MetricError(f"quantile must be in (0, 1), got {q}")
        if self.count == 0:
            return math.nan
        target = q * self.count
        cum = 0
        lo = 0.0
        for bound, c in zip(self.buckets, self.counts):
            if cum + c >= target and c > 0:
                # linear interpolation within the bucket
                frac = (target - cum) / c
                return lo + frac * (bound - lo)
            cum += c
            lo = bound
        return self.max

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs ending with ``(inf, count)``."""
        out = []
        cum = 0
        for bound, c in zip(self.buckets, self.counts):
            cum += c
            out.append((bound, cum))
        out.append((math.inf, self.count))
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric with labeled child series.

    ``family.labels(op="read")`` returns (creating on first use) the
    series for that label set; calling ``inc``/``set``/``observe`` on
    the family itself addresses the label-less default series.
    """

    def __init__(self, name: str, kind: str, help: str = "", **kind_kwargs):
        if not _NAME_RE.match(name):
            raise MetricError(f"invalid metric name {name!r}")
        if kind not in _KINDS:
            raise MetricError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self._kind_kwargs = kind_kwargs
        self._series: dict[tuple[tuple[str, str], ...], object] = {}

    def labels(self, **labels: object):
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        series = self._series.get(key)
        if series is None:
            for k, _ in key:
                if not _LABEL_RE.match(k):
                    raise MetricError(f"invalid label name {k!r}")
            series = _KINDS[self.kind](**self._kind_kwargs)
            self._series[key] = series
        return series

    def series(self) -> Iterator[tuple[dict[str, str], object]]:
        """All ``(labels, series)`` pairs in sorted label order."""
        for key in sorted(self._series):
            yield dict(key), self._series[key]

    def __len__(self) -> int:
        return len(self._series)

    # label-less convenience — the common single-series case
    def inc(self, n: float = 1.0) -> None:
        self.labels().inc(n)

    def set(self, v: float) -> None:
        self.labels().set(v)

    def observe(self, v: float) -> None:
        self.labels().observe(v)


class MetricsRegistry:
    """All metric families of one run, keyed by name.

    Registration is idempotent: asking for an existing name returns the
    existing family (so instrumentation sites don't need to coordinate),
    but re-registering under a different kind raises.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _register(self, name: str, kind: str, help: str, **kw) -> MetricFamily:
        fam = self._families.get(name)
        if fam is not None:
            if fam.kind != kind:
                raise MetricError(
                    f"metric {name!r} already registered as {fam.kind}, "
                    f"requested {kind}"
                )
            return fam
        fam = MetricFamily(name, kind, help, **kw)
        self._families[name] = fam
        return fam

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._register(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._register(name, "gauge", help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        quantiles: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        kw = {}
        if buckets is not None:
            kw["buckets"] = tuple(buckets)
        if quantiles is not None:
            kw["quantiles"] = tuple(quantiles)
        return self._register(name, "histogram", help, **kw)

    def get(self, name: str) -> MetricFamily | None:
        return self._families.get(name)

    def families(self) -> list[MetricFamily]:
        return [self._families[n] for n in sorted(self._families)]

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def clear(self) -> None:
        self._families.clear()

    def snapshot(self) -> dict:
        """JSON-able dump of every series (used by the JSONL exporter)."""
        out: dict = {}
        for fam in self.families():
            entries = []
            for labels, series in fam.series():
                if fam.kind == "counter":
                    entries.append({"labels": labels, "value": series.value})
                elif fam.kind == "gauge":
                    entries.append({
                        "labels": labels,
                        "value": series.value,
                        "max": None if math.isinf(series.max_value)
                        else series.max_value,
                    })
                else:
                    entries.append({
                        "labels": labels,
                        "count": series.count,
                        "sum": series.sum,
                        "min": None if math.isinf(series.min) else series.min,
                        "max": None if math.isinf(series.max) else series.max,
                        "quantiles": {
                            str(q): (None if math.isnan(v) else v)
                            for q, v in series.quantiles().items()
                        },
                        "buckets": [
                            ["+Inf" if math.isinf(le) else le, c]
                            for le, c in series.cumulative_buckets()
                        ],
                    })
            out[fam.name] = {"kind": fam.kind, "help": fam.help,
                             "series": entries}
        return out
