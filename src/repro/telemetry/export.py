"""Telemetry exporters: Prometheus text, Chrome trace JSON, JSONL, tables.

Three wire formats plus a human summary:

* :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP``/``# TYPE`` + samples; histograms as cumulative
  ``_bucket{le=...}`` series with ``_sum``/``_count``);
* :func:`chrome_trace` — the Chrome trace-event JSON object format,
  loadable in Perfetto / ``chrome://tracing``;
* :func:`jsonl_events` — one JSON object per line: every trace record,
  every finished span, and a final metrics snapshot — the
  grep/jq-friendly stream;
* :func:`summary_table` — per-run text summary through
  :func:`repro.analysis.render_table`.

:func:`parse_prometheus_text` is the matching reader — it exists so the
round-trip is testable without external dependencies, and doubles as a
scrape-format sanity check.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .metrics import MetricsRegistry
    from .probe import Probe
    from .spans import SpanRecorder

__all__ = [
    "prometheus_text",
    "parse_prometheus_text",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_events",
    "write_jsonl",
    "summary_table",
]


# ---------------------------------------------------------------------------
# Prometheus text exposition


def _escape_label(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt_value(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def prometheus_text(registry: "MetricsRegistry") -> str:
    """Render every series in Prometheus text exposition format."""
    lines: list[str] = []
    for fam in registry.families():
        lines.append(f"# HELP {fam.name} {fam.help}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for labels, series in fam.series():
            if fam.kind == "counter":
                lines.append(
                    f"{fam.name}{_fmt_labels(labels)} {_fmt_value(series.value)}"
                )
            elif fam.kind == "gauge":
                lines.append(
                    f"{fam.name}{_fmt_labels(labels)} {_fmt_value(series.value)}"
                )
            else:  # histogram
                for le, cum in series.cumulative_buckets():
                    ble = dict(labels)
                    ble["le"] = "+Inf" if math.isinf(le) else _fmt_value(le)
                    lines.append(
                        f"{fam.name}_bucket{_fmt_labels(ble)} {cum}"
                    )
                lines.append(
                    f"{fam.name}_sum{_fmt_labels(labels)} {_fmt_value(series.sum)}"
                )
                lines.append(
                    f"{fam.name}_count{_fmt_labels(labels)} {series.count}"
                )
                # streaming P² estimates as summary-style quantile
                # samples on the bare family name (skipped while empty)
                for q, v in series.quantiles().items():
                    if math.isnan(v):
                        continue
                    ql = dict(labels)
                    ql["quantile"] = _fmt_value(q)
                    lines.append(
                        f"{fam.name}{_fmt_labels(ql)} {_fmt_value(v)}"
                    )
    return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Parse exposition text back to ``{name: {"type", "samples"}}``.

    Samples are ``[(labels_dict, value), ...]``.  Understands exactly
    what :func:`prometheus_text` emits (plus arbitrary label order) —
    a deliberate round-trip companion, not a general scraper.
    """
    out: dict[str, dict] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            out.setdefault(name, {"type": kind.strip(), "samples": []})
            continue
        if line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"malformed sample line: {line!r}")
        labels: dict[str, str] = {}
        if "{" in name_part:
            name, _, labelblob = name_part.partition("{")
            labelblob = labelblob.rstrip("}")
            for item in _split_labels(labelblob):
                k, _, v = item.partition("=")
                labels[k] = json.loads(v)  # prometheus strings are JSON-safe
        else:
            name = name_part
        value = float(value_part)
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in out:
                base = name[: -len(suffix)]
                break
        out.setdefault(base, {"type": "untyped", "samples": []})
        out[base]["samples"].append((name, labels, value))
    return out


def _split_labels(blob: str) -> list[str]:
    """Split ``a="x",b="y"`` respecting quotes."""
    items, depth, cur = [], False, []
    for ch in blob:
        if ch == '"':
            depth = not depth
            cur.append(ch)
        elif ch == "," and not depth:
            items.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if cur:
        items.append("".join(cur))
    return [i for i in items if i]


# ---------------------------------------------------------------------------
# Chrome trace-event JSON


def chrome_trace(spans: "SpanRecorder", clock: str = "sim") -> dict:
    """The Chrome trace-event *object format* document for ``spans``."""
    return {
        "traceEvents": spans.chrome_events(clock=clock),
        "displayTimeUnit": "ms",
        "otherData": {"clock": clock, "source": "repro.telemetry"},
    }


def write_chrome_trace(
    path: str | Path, spans: "SpanRecorder", clock: str = "sim"
) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(chrome_trace(spans, clock=clock), indent=1) + "\n",
        encoding="utf-8",
    )
    return path


# ---------------------------------------------------------------------------
# JSONL event stream


def jsonl_events(probe: "Probe") -> Iterator[str]:
    """Every telemetry artifact of a run as one JSON object per line.

    Ordering: trace records (by emit order), finished spans (by begin
    order), then one ``metrics_snapshot`` line.
    """
    for rec in probe.records:
        yield json.dumps(
            {"type": "trace", "time": rec.time, "kind": rec.kind,
             "data": rec.data},
            sort_keys=True, default=repr,
        )
    for span in probe.spans.completed:
        yield json.dumps(
            {
                "type": "span",
                "name": span.name,
                "track": span.track,
                "start_sim": span.start_sim,
                "end_sim": span.end_sim,
                "start_wall": span.start_wall,
                "end_wall": span.end_wall,
                "args": span.args,
            },
            sort_keys=True, default=repr,
        )
    yield json.dumps(
        {"type": "metrics_snapshot", "metrics": probe.metrics.snapshot()},
        sort_keys=True,
    )


def write_jsonl(path: str | Path, probe: "Probe") -> Path:
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for line in jsonl_events(probe):
            fh.write(line + "\n")
    return path


# ---------------------------------------------------------------------------
# Human summary


def summary_table(registry: "MetricsRegistry", title: str = "telemetry") -> str:
    """One row per series: counts, sums, and latency quantiles."""
    from ..analysis import render_table

    rows: list[list[str]] = []
    for fam in registry.families():
        for labels, series in fam.series():
            label_txt = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            if fam.kind == "counter":
                rows.append([fam.name, label_txt, _fmt_value(series.value),
                             "", "", "", "", ""])
            elif fam.kind == "gauge":
                peak = "" if math.isinf(series.max_value) else _fmt_value(
                    series.max_value
                )
                rows.append([fam.name, label_txt, _fmt_value(series.value),
                             peak, "", "", "", ""])
            else:
                qs = series.quantiles()

                def _q(q: float) -> str:
                    v = qs.get(q, math.nan)
                    return "" if math.isnan(v) else f"{v:.4g}"

                rows.append([
                    fam.name,
                    label_txt,
                    str(series.count),
                    "" if math.isinf(series.max) else f"{series.max:.4g}",
                    _q(0.5),
                    _q(0.95),
                    _q(0.99),
                    _q(0.999),
                ])
    return render_table(
        ["metric", "labels", "value/count", "peak/max",
         "q50", "q95", "q99", "q999"],
        rows,
        title=title,
    )
