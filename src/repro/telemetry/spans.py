"""Nestable timing spans with dual clocks and Chrome trace export.

A :class:`Span` measures one named operation on one *track* (checkpoint
barrier, recovery pass, campaign worker …).  Every span records **both**
clocks:

* **sim-time** — the simulator's virtual clock, what the model's
  latency claims are about;
* **wall-time** — ``time.perf_counter()``, what the host actually
  spent, which is what profiling the reproduction itself needs.

Spans on a track nest LIFO (begin/end discipline is enforced), so the
recorder can emit Chrome trace-event ``B``/``E`` pairs that Perfetto
and ``chrome://tracing`` load directly.  Events are exported in the
order they were recorded; since both clocks are monotone this yields
sorted timestamps with correctly matched pairs by construction.
"""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = ["Span", "SpanError", "SpanRecorder"]


class SpanError(RuntimeError):
    """Begin/end discipline violation (ending a span out of order)."""


class Span:
    """One timed operation; created via :meth:`SpanRecorder.begin`."""

    __slots__ = (
        "span_id", "name", "track", "args",
        "start_sim", "start_wall", "end_sim", "end_wall", "parent_id",
    )

    def __init__(
        self,
        span_id: int,
        name: str,
        track: str,
        start_sim: float,
        start_wall: float,
        parent_id: int | None,
        args: dict[str, Any],
    ):
        self.span_id = span_id
        self.name = name
        self.track = track
        self.start_sim = start_sim
        self.start_wall = start_wall
        self.end_sim: float | None = None
        self.end_wall: float | None = None
        self.parent_id = parent_id
        self.args = args

    @property
    def finished(self) -> bool:
        return self.end_sim is not None

    @property
    def duration_sim(self) -> float | None:
        return None if self.end_sim is None else self.end_sim - self.start_sim

    @property
    def duration_wall(self) -> float | None:
        return None if self.end_wall is None else self.end_wall - self.start_wall

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"{self.duration_sim:.6g}s" if self.finished else "open"
        return f"<Span {self.track}/{self.name} {state}>"


class SpanRecorder:
    """Collects spans and renders them as Chrome trace events.

    ``wall_clock`` is injectable for deterministic tests; it must be
    monotone.  Wall timestamps are stored relative to recorder creation
    so exported traces start near zero.
    """

    def __init__(self, wall_clock: Callable[[], float] = time.perf_counter):
        self._wall = wall_clock
        self._t0_wall = wall_clock()
        self.spans: list[Span] = []
        self._stacks: dict[str, list[Span]] = {}
        self._events: list[tuple[str, Span, float, float]] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    def begin(
        self, name: str, sim_time: float, track: str = "sim", **args: Any
    ) -> Span:
        """Open a span; it nests under the track's current open span."""
        stack = self._stacks.setdefault(track, [])
        parent = stack[-1].span_id if stack else None
        wall = self._wall() - self._t0_wall
        span = Span(self._next_id, name, track, float(sim_time), wall,
                    parent, args)
        self._next_id += 1
        stack.append(span)
        self.spans.append(span)
        self._events.append(("B", span, float(sim_time), wall))
        return span

    def end(self, span: Span, sim_time: float, **args: Any) -> Span:
        """Close ``span``; must be the innermost open span of its track."""
        stack = self._stacks.get(span.track, [])
        if not stack or stack[-1] is not span:
            raise SpanError(
                f"span {span.name!r} is not the innermost open span on "
                f"track {span.track!r}"
            )
        if span.finished:  # pragma: no cover - unreachable via stack check
            raise SpanError(f"span {span.name!r} already ended")
        stack.pop()
        span.end_sim = float(sim_time)
        span.end_wall = self._wall() - self._t0_wall
        if args:
            span.args.update(args)
        self._events.append(("E", span, span.end_sim, span.end_wall))
        return span

    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> list[Span]:
        return [s for stack in self._stacks.values() for s in stack]

    @property
    def completed(self) -> list[Span]:
        return [s for s in self.spans if s.finished]

    def __len__(self) -> int:
        return len(self.spans)

    def select(self, name: str | None = None, track: str | None = None) -> list[Span]:
        out = self.spans
        if name is not None:
            out = [s for s in out if s.name == name]
        if track is not None:
            out = [s for s in out if s.track == track]
        return list(out)

    # ------------------------------------------------------------------
    def chrome_events(self, clock: str = "sim") -> list[dict]:
        """Trace-event list: metadata + matched ``B``/``E`` pairs.

        ``clock`` picks which recorded clock becomes the trace ``ts``
        (microseconds).  Only finished spans are exported; an unfinished
        span's ``B`` would have no matching ``E`` and Perfetto would
        render it as running forever.
        """
        if clock not in ("sim", "wall"):
            raise ValueError(f"clock must be 'sim' or 'wall', got {clock!r}")
        tids: dict[str, int] = {}
        events: list[dict] = []
        for track in sorted({s.track for s in self.spans}):
            tids[track] = len(tids) + 1
            events.append({
                "ph": "M", "pid": 1, "tid": tids[track],
                "name": "thread_name", "args": {"name": track},
            })
        events.insert(0, {
            "ph": "M", "pid": 1, "tid": 0,
            "name": "process_name",
            "args": {"name": f"repro ({clock} time)"},
        })
        for phase, span, sim_t, wall_t in self._events:
            if not span.finished:
                continue
            ts = (sim_t if clock == "sim" else wall_t) * 1e6
            ev = {
                "ph": phase,
                "pid": 1,
                "tid": tids[span.track],
                "ts": ts,
                "name": span.name,
                "cat": span.track,
            }
            if phase == "B" and span.args:
                ev["args"] = {k: _jsonable(v) for k, v in span.args.items()}
            events.append(ev)
        return events


def _jsonable(v: Any):
    if isinstance(v, (str, int, float, bool)) or v is None:
        return v
    return repr(v)
