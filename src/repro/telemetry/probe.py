"""The Probe facade — one object every layer can be instrumented with.

A :class:`Probe` bundles the three telemetry surfaces:

* it **is a** :class:`~repro.sim.trace.Tracer`, so every existing
  ``tracer=`` call site accepts a Probe unchanged (records accumulate
  exactly as before, and each emit also bumps the
  ``repro_trace_events_total{kind=...}`` counter);
* it owns a :class:`~repro.telemetry.metrics.MetricsRegistry` with
  guarded helpers (:meth:`count`, :meth:`gauge_set`, :meth:`observe`)
  that no-op when the probe is disabled;
* it owns a :class:`~repro.telemetry.spans.SpanRecorder` with
  generator-friendly :meth:`span_begin`/:meth:`span_end` (context
  managers don't survive ``yield`` boundaries in simulation processes).

Components resolve their probe with :func:`probe_of`: a Probe passed as
``tracer`` is returned as-is, any plain tracer maps to the inert
:data:`NULL_PROBE`.  The disabled path is therefore a single attribute
check — cheap enough for the simulator hot loop (measured in
``benchmarks/bench_telemetry_overhead.py``).

An optional ``sink`` tracer receives a copy of every emit, which is how
a pre-existing :class:`Tracer` plugs in as one sink of the unified
facade.
"""

from __future__ import annotations

from typing import Any

from ..sim.trace import TraceRecord, Tracer
from .metrics import MetricsRegistry
from .spans import Span, SpanRecorder

__all__ = ["Probe", "NULL_PROBE", "probe_of"]


class Probe(Tracer):
    """Unified tracer + metrics + spans instrument."""

    def __init__(self, enabled: bool = True, sink: Tracer | None = None):
        super().__init__(enabled=enabled)
        self.sink = sink
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder()
        self._emit_counter = self.metrics.counter(
            "repro_trace_events_total", "Trace records emitted, by kind"
        )
        # hot-loop series, resolved once
        self._sim_events = self.metrics.counter(
            "repro_sim_events_total", "Simulator callbacks executed"
        ).labels()
        self._sim_heap = self.metrics.gauge(
            "repro_sim_heap_depth", "Pending events on the simulator heap"
        ).labels()

    # ------------------------------------------------------------------
    # Tracer surface
    # ------------------------------------------------------------------
    def emit(self, time: float, kind: str, **data: Any) -> None:
        if not self.enabled:
            return
        self.records.append(TraceRecord(time, kind, data))
        self._emit_counter.labels(kind=kind).inc()
        if self.sink is not None:
            self.sink.emit(time, kind, **data)

    # ------------------------------------------------------------------
    # metrics helpers (all no-ops when disabled)
    # ------------------------------------------------------------------
    def count(self, name: str, n: float = 1.0, help: str = "",
              **labels: object) -> None:
        if self.enabled:
            self.metrics.counter(name, help).labels(**labels).inc(n)

    def gauge_set(self, name: str, value: float, help: str = "",
                  **labels: object) -> None:
        if self.enabled:
            self.metrics.gauge(name, help).labels(**labels).set(value)

    def observe(self, name: str, value: float, help: str = "",
                buckets: tuple[float, ...] | None = None,
                quantiles: tuple[float, ...] | None = None,
                **labels: object) -> None:
        if self.enabled:
            self.metrics.histogram(name, help, buckets=buckets,
                                   quantiles=quantiles)\
                .labels(**labels).observe(value)

    def observe_batch(self, name: str, values, help: str = "",
                      buckets: tuple[float, ...] | None = None,
                      quantiles: tuple[float, ...] | None = None,
                      **labels: object) -> None:
        """Histogram-observe a whole array in one vectorized pass."""
        if self.enabled:
            self.metrics.histogram(name, help, buckets=buckets,
                                   quantiles=quantiles)\
                .labels(**labels).observe_batch(values)

    # ------------------------------------------------------------------
    # span helpers
    # ------------------------------------------------------------------
    def span_begin(self, name: str, sim_time: float, track: str = "sim",
                   **args: Any) -> Span | None:
        """Open a span; returns ``None`` when disabled (pass it to
        :meth:`span_end` unconditionally — it tolerates ``None``)."""
        if not self.enabled:
            return None
        return self.spans.begin(name, sim_time, track=track, **args)

    def span_end(self, span: Span | None, sim_time: float,
                 **args: Any) -> None:
        if span is not None and self.enabled:
            self.spans.end(span, sim_time, **args)

    # ------------------------------------------------------------------
    # simulator hot-loop hook
    # ------------------------------------------------------------------
    def sim_event(self, heap_depth: int) -> None:
        """One executed simulator callback; called from the event loop."""
        self._sim_events.inc()
        g = self._sim_heap
        if heap_depth > g.max_value:
            g.set(heap_depth)
        else:
            g.value = float(heap_depth)


class _NullProbe(Probe):
    """Inert shared probe: never records, never accumulates state.

    Mirrors the hardened ``NULL_TRACER`` contract — no mutable globals.
    ``metrics``/``spans`` return *fresh throwaway* instances on every
    access so even direct writes cannot leak between callers.
    """

    def __init__(self) -> None:
        # deliberately no super().__init__ — a null probe holds no state
        self.sink = None

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        pass  # permanently disabled

    @property
    def records(self):  # type: ignore[override]
        return ()

    @property
    def metrics(self) -> MetricsRegistry:  # type: ignore[override]
        return MetricsRegistry()

    @property
    def spans(self) -> SpanRecorder:  # type: ignore[override]
        return SpanRecorder()

    def emit(self, time: float, kind: str, **data: Any) -> None:
        pass

    def count(self, name: str, n: float = 1.0, help: str = "",
              **labels: object) -> None:
        pass

    def gauge_set(self, name: str, value: float, help: str = "",
                  **labels: object) -> None:
        pass

    def observe(self, name: str, value: float, help: str = "",
                buckets: tuple[float, ...] | None = None,
                quantiles: tuple[float, ...] | None = None,
                **labels: object) -> None:
        pass

    def observe_batch(self, name: str, values, help: str = "",
                      buckets: tuple[float, ...] | None = None,
                      quantiles: tuple[float, ...] | None = None,
                      **labels: object) -> None:
        pass

    def span_begin(self, name: str, sim_time: float, track: str = "sim",
                   **args: Any) -> Span | None:
        return None

    def span_end(self, span: Span | None, sim_time: float,
                 **args: Any) -> None:
        pass

    def sim_event(self, heap_depth: int) -> None:
        pass

    def clear(self) -> None:
        pass

    def select(self, kind=None, prefix=None, where=None):
        return []


#: Shared inert probe; the safe default everywhere.
NULL_PROBE = _NullProbe()


def probe_of(tracer: Tracer | None) -> Probe:
    """The probe behind a ``tracer=`` argument, or :data:`NULL_PROBE`.

    Instrumented components call this once in their constructor, so
    passing a :class:`Probe` anywhere a tracer is accepted lights up
    metrics and spans for that component — and passing a plain tracer
    (or none) costs nothing.
    """
    if isinstance(tracer, Probe) and not isinstance(tracer, _NullProbe):
        return tracer
    return NULL_PROBE
