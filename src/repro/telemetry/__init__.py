"""Observability subsystem: metrics, spans, and trace export.

The instrument that turns the simulator into a measurable system::

    from repro.telemetry import Probe
    from repro.telemetry.export import prometheus_text, write_chrome_trace

    probe = Probe()
    sc = paper_scenario(tracer=probe)        # every tracer= site accepts it
    sc.sim.attach_probe(probe)               # engine counters too
    ...run...
    print(prometheus_text(probe.metrics))    # scrape-format dump
    write_chrome_trace("trace.json", probe.spans)   # open in Perfetto

See ``docs/observability.md`` for the metric catalog, span naming
convention, export formats, and measured overhead.
"""

from .export import (
    chrome_trace,
    jsonl_events,
    parse_prometheus_text,
    prometheus_text,
    summary_table,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    DEFAULT_BUCKETS,
    DEFAULT_QUANTILES,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricFamily,
    MetricsRegistry,
    P2Quantile,
)
from .probe import NULL_PROBE, Probe, probe_of
from .spans import Span, SpanError, SpanRecorder

__all__ = [
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "P2Quantile",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "Span",
    "SpanError",
    "SpanRecorder",
    "Probe",
    "NULL_PROBE",
    "probe_of",
    "prometheus_text",
    "parse_prometheus_text",
    "chrome_trace",
    "write_chrome_trace",
    "jsonl_events",
    "write_jsonl",
    "summary_table",
]
