"""Disk-full checkpointing to a shared NAS — the paper's baseline.

The pipeline per cycle (Section V-B's accounting):

1. **capture** — coordinated barrier pause (shared with DVDC);
2. **network** — every node streams its VMs' images to the NAS; all
   streams converge on the single NAS ingress link and serialize
   (``bw/N`` each — the bottleneck the paper attacks);
3. **disk** — the NAS array writes each stream out.

Overhead = the barrier pause.  Latency = until the *last* image is
committed on NAS — the point at which the new checkpoint generation is
usable.  Two-phase safety: each image is stored under a versioned key
and the previous generation is deleted only after the new generation is
fully committed, so a crash mid-cycle can always fall back.

Recovery: the whole cluster rolls back to the last committed generation
— every VM re-fetches its image from the NAS (fan-out on the egress
link), the failed node's VMs are re-placed on survivors first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.cluster import VirtualCluster
from ..cluster.images import CheckpointImage, CheckpointKind
from ..cluster.memory import PageDelta
from ..cluster.vm import VirtualMachine, VMState
from ..network.link import NetworkError
from ..sim import AllOf, NULL_TRACER, Tracer
from ..telemetry import probe_of
from .base import CaptureStrategy, CheckpointCycleResult
from .compression import NO_COMPRESSION, CompressionModel
from .coordinator import CoordinatedCheckpoint
from .strategies import ForkedCapture

__all__ = ["DiskfulCheckpointer", "DiskfulRecoveryReport"]


@dataclass
class DiskfulRecoveryReport:
    """Outcome of a baseline rollback-recovery."""

    failed_node: int
    restored_vms: list[int] = field(default_factory=list)
    rolled_back_vms: list[int] = field(default_factory=list)
    recovery_time: float = 0.0
    bytes_read: float = 0.0
    restored_epoch: int = -1


class DiskfulCheckpointer:
    """Coordinated checkpoint/restart against the shared NAS."""

    def __init__(
        self,
        cluster: VirtualCluster,
        strategy: CaptureStrategy | None = None,
        compression: CompressionModel = NO_COMPRESSION,
        tracer: Tracer = NULL_TRACER,
        retry=None,
        retry_rng=None,
    ):
        self.cluster = cluster
        self.strategy = strategy or ForkedCapture()
        self.compression = compression
        self.tracer = tracer
        self.probe = probe_of(tracer)
        #: optional :class:`repro.resilience.retry.RetryPolicy` applied to
        #: NAS-bound and restore transfers
        self.retry = retry
        self.retry_rng = retry_rng
        self.coordinator = CoordinatedCheckpoint(cluster, self.strategy, tracer)
        self.epoch = 0
        self.last_cycle_at: float | None = None
        self.committed_epoch = -1
        self.history: list[CheckpointCycleResult] = []

    # ------------------------------------------------------------------
    def _key(self, vm_id: int, epoch: int) -> str:
        return f"vm{vm_id}/epoch{epoch}"

    def _nas_flow(self, make_flow, label: str):
        """A NAS-bound flow, retry-wrapped when a policy is installed."""
        if self.retry is None:
            return make_flow()
        # Deferred import: resilience sits above checkpoint in the layering.
        from ..resilience.retry import retrying_transfer

        return self.cluster.sim.process(retrying_transfer(
            self.cluster.sim, make_flow, self.retry,
            rng=self.retry_rng, probe=self.probe, label=label,
        ))

    def _ship_one(self, image: CheckpointImage, wire_bytes: float):
        """Process: stream one image node→NAS, then write it to disk.

        Incremental captures are *consolidated server-side*: the NAS
        patches the delta onto the previous generation's object so every
        catalog entry is always a directly-restorable full image (what
        real checkpoint stores do to avoid unbounded delta chains).  The
        disk pays for the delta write; the catalog holds the full size.
        """
        vm = self.cluster.vm(image.vm_id)
        node_id = vm.node_id
        assert node_id is not None
        label = f"ckpt.vm{image.vm_id}.e{image.epoch}"
        flow = self._nas_flow(
            lambda: self.cluster.topology.transfer_to_nas(
                node_id, wire_bytes, label=label
            ),
            label,
        )
        try:
            yield flow
        except NetworkError:
            return None  # sender died or retries exhausted; epoch aborts
        stored_size = None
        if image.kind == CheckpointKind.INCREMENTAL:
            stored_size = vm.memory_bytes
            if isinstance(image.payload, PageDelta):
                prev_key = self._key(image.vm_id, image.epoch - 1)
                if not self.cluster.nas.contains(prev_key):
                    raise RuntimeError(
                        f"vm {image.vm_id}: incremental upload without a "
                        "previous generation on the NAS"
                    )
                prev: CheckpointImage = self.cluster.nas.lookup(prev_key).payload
                merged = prev.payload_flat().copy()
                image.payload.apply_to(merged)
                image = CheckpointImage(
                    vm_id=image.vm_id,
                    epoch=image.epoch,
                    kind=CheckpointKind.FULL,
                    logical_bytes=vm.memory_bytes,
                    captured_at=image.captured_at,
                    payload=merged,
                    meta=dict(image.meta, consolidated=True),
                )
        obj = yield from self.cluster.nas.store(
            self._key(image.vm_id, image.epoch), wire_bytes,
            payload=image, stored_size=stored_size,
        )
        return obj

    def run_cycle(self, pause_done=None):
        """Process: one full coordinated checkpoint cycle.

        Returns a :class:`CheckpointCycleResult`; ``overhead`` is the
        barrier pause, ``latency`` the start-to-commit span.
        ``pause_done`` fires when guests resume (overlapped runners).
        A node failure mid-cycle aborts the generation switch; the
        previous generation remains the recovery point.
        """
        sim = self.cluster.sim
        start = sim.now
        epoch = self.epoch
        cycle_span = self.probe.span_begin(
            "diskful.cycle", start, track="checkpoint", epoch=epoch,
        )
        failure_snapshot = self.cluster.failure_epoch
        elapsed = (start - self.last_cycle_at) if self.last_cycle_at is not None else start
        vms = [vm for vm in self.cluster.all_vms if vm.state != VMState.FAILED]
        outcomes, pause = yield from self.coordinator.capture_all(vms, epoch, elapsed)

        if pause_done is not None and not pause_done.triggered:
            pause_done.succeed(pause)
        result = CheckpointCycleResult(epoch=epoch, started_at=start, overhead=pause)
        for o in outcomes:
            result.per_vm_pause[o.image.vm_id] = o.pause_seconds

        # ship all images concurrently; NAS ingress serializes them
        ship_span = self.probe.span_begin(
            "diskful.ship", sim.now, track="checkpoint", epoch=epoch,
        )
        shippers = []
        for o in outcomes:
            wire = self.compression.output_bytes(o.image.logical_bytes)
            result.network_bytes += wire
            result.disk_bytes += wire
            shippers.append(self.cluster.sim.process(self._ship_one(o.image, wire)))
        shipped: dict[int, object] = {}
        if shippers:
            shipped = yield AllOf(sim, shippers)
        self.probe.span_end(ship_span, sim.now, n_images=len(shippers))
        self.probe.count(
            "repro_checkpoint_bytes_total", result.network_bytes,
            help="Checkpoint bytes moved, by architecture and path",
            arch="diskful", path="network",
        )

        # two-phase commit: new generation complete -> drop the old one;
        # a ship that returned None died (node crash or retries exhausted)
        # — the generation is incomplete, so the old one stays current
        if self.cluster.failure_epoch != failure_snapshot or any(
            v is None for v in shipped.values()
        ):
            result.latency = sim.now - start
            result.committed = False
            self.history.append(result)
            self.tracer.emit(sim.now, "diskful.cycle_aborted", epoch=epoch)
            self.probe.count(
                "repro_checkpoint_cycles_total",
                help="Checkpoint cycles, by architecture and commit outcome",
                arch="diskful", committed="false",
            )
            self.probe.span_end(cycle_span, sim.now, committed=False)
            return result
        for o in outcomes:
            old_key = self._key(o.image.vm_id, epoch - 1)
            if self.cluster.nas.contains(old_key):
                self.cluster.nas.delete(old_key)
        self.committed_epoch = epoch
        self.epoch += 1
        self.last_cycle_at = sim.now
        result.latency = sim.now - start
        result.committed = True
        self.history.append(result)
        self.tracer.emit(
            sim.now, "diskful.cycle", epoch=epoch, overhead=result.overhead,
            latency=result.latency, network_bytes=result.network_bytes,
        )
        self.probe.count(
            "repro_checkpoint_cycles_total",
            help="Checkpoint cycles, by architecture and commit outcome",
            arch="diskful", committed="true",
        )
        self.probe.observe(
            "repro_checkpoint_commit_latency_seconds", result.latency,
            help="Cycle start to generation commit, by architecture",
            arch="diskful",
        )
        self.probe.span_end(cycle_span, sim.now, committed=True)
        return result

    # ------------------------------------------------------------------
    def _restore_one(self, vm: VirtualMachine, report: DiskfulRecoveryReport):
        """Process: fetch a VM's committed image from NAS and load it.

        Bails out quietly if the VM's node dies mid-restore — the new
        failure is queued and the next recovery pass re-places it.
        """
        key = self._key(vm.vm_id, self.committed_epoch)
        obj = yield from self.cluster.nas.fetch(key)
        if vm.node_id is None:
            return
        node_id = vm.node_id
        label = f"restore.vm{vm.vm_id}"
        flow = self._nas_flow(
            lambda: self.cluster.topology.transfer_from_nas(
                node_id, obj.size, label=label
            ),
            label,
        )
        try:
            yield flow
        except NetworkError:
            return  # destination died mid-restore; retried later
        report.bytes_read += obj.size
        if vm.node_id is None:  # node died while the image was in flight
            return
        image: CheckpointImage = obj.payload
        hv = self.cluster.hypervisor(vm.node_id)
        if vm.state == VMState.FAILED:
            hv.restore(vm, image)
        else:
            vm.pause()
            hv.restore(vm, image)
            vm.resume()

    def heal(self):
        """Process: nothing to heal — NAS state survives node churn."""
        return []
        yield  # pragma: no cover - makes this a generator

    def recover(self, failed_node_id: int):
        """Process: global rollback-restart after ``failed_node_id`` died.

        The failed node's VMs are re-placed round-robin on surviving
        nodes; then *every* VM reloads the committed generation from the
        NAS (coordinated restart semantics).
        """
        sim = self.cluster.sim
        start = sim.now
        if self.committed_epoch < 0:
            raise RuntimeError("no committed checkpoint generation to recover from")
        span = self.probe.span_begin(
            "diskful.recover", start, track="recovery", node=failed_node_id,
        )
        report = DiskfulRecoveryReport(failed_node=failed_node_id)
        survivors = [n for n in self.cluster.alive_nodes if n.node_id != failed_node_id]
        if not survivors:
            raise RuntimeError("no surviving nodes to recover onto")
        # re-place dead VMs
        homeless = [vm for vm in self.cluster.all_vms if vm.state == VMState.FAILED
                    and vm.node_id is None]
        for i, vm in enumerate(homeless):
            target = survivors[i % len(survivors)]
            self.cluster.place_failed_vm(vm.vm_id, target.node_id)
            report.restored_vms.append(vm.vm_id)
        # global rollback: every VM re-fetches
        restorers = []
        for vm in self.cluster.all_vms:
            if vm.node_id is None:
                continue
            if vm.vm_id not in report.restored_vms:
                report.rolled_back_vms.append(vm.vm_id)
            restorers.append(sim.process(self._restore_one(vm, report)))
        if restorers:
            yield AllOf(sim, restorers)
        report.recovery_time = sim.now - start
        report.restored_epoch = self.committed_epoch
        self.tracer.emit(
            sim.now, "diskful.recovery", node=failed_node_id,
            duration=report.recovery_time, bytes=report.bytes_read,
        )
        self.probe.observe(
            "repro_recovery_seconds", report.recovery_time,
            help="Wall of one rollback-recovery pass, by architecture",
            arch="diskful",
        )
        self.probe.count(
            "repro_recovery_bytes_total", report.bytes_read,
            help="Bytes re-read during recovery, by architecture",
            arch="diskful",
        )
        self.probe.span_end(span, sim.now, bytes=report.bytes_read)
        return report
