"""The three capture variants of Section II-B2: normal, incremental, forked.

* :class:`FullCapture` ("normal") — copy the whole image while paused.
  Needs 3× process memory in the original diskless scheme; here the
  pause charges the synchronous copy.
* :class:`IncrementalCapture` — write-protect pages after a checkpoint,
  catch faults, save only changed pages.  Pause covers copying the dirty
  set; traffic shrinks to the working set.
* :class:`ForkedCapture` — fork/copy-on-write: the guest pauses only for
  the fork itself; page copies happen lazily.  Traffic is still the full
  image (unless the sink applies compression), but overhead collapses to
  the fixed pause — this is what lets the paper's model use a 40 ms
  baseline overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.hypervisor import Hypervisor
from ..cluster.vm import VirtualMachine
from .base import CaptureOutcome, CaptureSpec

__all__ = ["FullCapture", "IncrementalCapture", "ForkedCapture"]


@dataclass(frozen=True)
class FullCapture:
    """Pause, copy everything, resume."""

    spec: CaptureSpec = field(default_factory=CaptureSpec)

    def capture(
        self,
        hypervisor: Hypervisor,
        vm: VirtualMachine,
        epoch: int,
        now: float,
        elapsed: float,
    ) -> CaptureOutcome:
        image = hypervisor.capture_full(vm, now, epoch)
        pause = self.spec.pause_fixed + vm.memory_bytes / self.spec.copy_bandwidth
        return CaptureOutcome(image=image, pause_seconds=pause)


@dataclass(frozen=True)
class IncrementalCapture:
    """Pause, copy only the dirty set, resume.

    For logical-only VMs the dirty set is estimated as
    ``min(dirty_rate · elapsed, memory_bytes)`` — the saturating
    working-set approximation (repeated writes to a hot page cost one
    page).  The first epoch is necessarily full.
    """

    spec: CaptureSpec = field(default_factory=CaptureSpec)

    def capture(
        self,
        hypervisor: Hypervisor,
        vm: VirtualMachine,
        epoch: int,
        now: float,
        elapsed: float,
    ) -> CaptureOutcome:
        if epoch == 0:
            image = hypervisor.capture_full(vm, now, epoch)
            pause = self.spec.pause_fixed + vm.memory_bytes / self.spec.copy_bandwidth
            return CaptureOutcome(image=image, pause_seconds=pause)
        logical = None
        if vm.image is None:
            logical = min(vm.dirty_rate * max(elapsed, 0.0), vm.memory_bytes)
        image = hypervisor.capture_incremental(
            vm, now, epoch, logical_bytes=logical, base_epoch=epoch - 1
        )
        pause = self.spec.pause_fixed + image.logical_bytes / self.spec.copy_bandwidth
        return CaptureOutcome(image=image, pause_seconds=pause)


@dataclass(frozen=True)
class ForkedCapture:
    """Copy-on-write capture: fixed pause regardless of image size."""

    spec: CaptureSpec = field(default_factory=CaptureSpec)

    def capture(
        self,
        hypervisor: Hypervisor,
        vm: VirtualMachine,
        epoch: int,
        now: float,
        elapsed: float,
    ) -> CaptureOutcome:
        image = hypervisor.capture_forked(vm, now, epoch)
        return CaptureOutcome(image=image, pause_seconds=self.spec.pause_fixed)
