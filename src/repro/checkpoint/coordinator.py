"""Coordinated consistent distributed checkpoint.

Fig. 1's protocol begins: "We coordinate a consistent distributed
checkpoint at each VM."  Because capture happens at the hypervisor and
the guests are paused together, a barrier-style coordinated checkpoint
suffices (no Chandy–Lamport marker propagation is needed — in-flight
network state is bounded by pausing all endpoints within one barrier
window; this is the standard argument for VM-level global snapshots).

:class:`CoordinatedCheckpoint` implements the barrier: pause every VM,
capture each via the configured strategy, resume together.  The global
pause window — the cycle's *overhead* in the model's sense — is the
maximum per-VM pause, since captures proceed in parallel on their
respective nodes.
"""

from __future__ import annotations

from typing import Sequence

from ..cluster.cluster import VirtualCluster
from ..cluster.vm import VirtualMachine, VMState
from ..sim import NULL_TRACER, Tracer
from ..telemetry import probe_of
from .base import CaptureOutcome, CaptureStrategy

__all__ = ["CoordinatedCheckpoint"]


class CoordinatedCheckpoint:
    """Barrier capture across a set of VMs."""

    def __init__(
        self,
        cluster: VirtualCluster,
        strategy: CaptureStrategy,
        tracer: Tracer = NULL_TRACER,
        auditor=None,
    ):
        self.cluster = cluster
        self.strategy = strategy
        self.tracer = tracer
        self.probe = probe_of(tracer)
        #: optional audit hook (``post_capture(epoch, outcomes, dropped)``);
        #: see :class:`repro.audit.Auditor`
        self.auditor = auditor

    def capture_all(
        self,
        vms: Sequence[VirtualMachine],
        epoch: int,
        elapsed: float,
    ):
        """Simulation process: barrier-pause, capture, barrier-resume.

        Returns ``(outcomes, pause_window)`` where ``outcomes`` is a list
        of :class:`CaptureOutcome` in VM order and ``pause_window`` is
        the global suspension charged to the job.

        Per-VM captures on the *same* node serialize (one capture engine
        per hypervisor); captures on different nodes run concurrently.
        The pause window is therefore the max over nodes of the sum of
        that node's VM pauses.
        """
        sim = self.cluster.sim
        live = [vm for vm in vms if vm.state != VMState.FAILED]
        span = self.probe.span_begin(
            "checkpoint.capture", sim.now, track="checkpoint",
            epoch=epoch, n_vms=len(live),
        )
        for vm in live:
            vm.pause()
        self.tracer.emit(sim.now, "coordinated.pause", epoch=epoch, n_vms=len(live))

        outcomes: list[CaptureOutcome] = []
        per_node_pause: dict[int, float] = {}
        for vm in live:
            node_id = vm.node_id
            assert node_id is not None
            hv = self.cluster.hypervisor(node_id)
            outcome = self.strategy.capture(hv, vm, epoch, sim.now, elapsed)
            outcomes.append(outcome)
            per_node_pause[node_id] = per_node_pause.get(node_id, 0.0) + outcome.pause_seconds

        pause_window = max(per_node_pause.values(), default=0.0)
        if pause_window > 0.0:
            yield sim.timeout(pause_window)

        # A node that crashed inside the barrier window took its VMs (and
        # their just-captured images, which live in that node's RAM) with
        # it.  Returning those outcomes would let a stale image from a
        # dead VM reach the exchange/commit path, so drop them here.
        dropped = [
            o for o in outcomes
            if self.cluster.vm(o.image.vm_id).state == VMState.FAILED
        ]
        if dropped:
            outcomes = [
                o for o in outcomes
                if self.cluster.vm(o.image.vm_id).state != VMState.FAILED
            ]
            self.tracer.emit(
                sim.now, "coordinated.stale_captures_dropped", epoch=epoch,
                vms=[o.image.vm_id for o in dropped],
            )
            self.probe.count(
                "repro_checkpoint_stale_captures_total", len(dropped),
                help="Captured images dropped because the VM failed "
                     "inside the barrier window",
            )

        for vm in live:
            if vm.state == VMState.PAUSED:  # a failure may have struck mid-pause
                vm.resume()
        if self.auditor is not None:
            self.auditor.post_capture(epoch, outcomes, dropped)
        self.tracer.emit(
            sim.now, "coordinated.resume", epoch=epoch, pause=pause_window
        )
        self.probe.observe(
            "repro_checkpoint_pause_seconds", pause_window,
            help="Global barrier pause window per coordinated capture",
        )
        self.probe.count(
            "repro_checkpoint_captures_total", len(live),
            help="Per-VM captures performed",
        )
        self.probe.span_end(span, sim.now, pause=pause_window)
        return outcomes, pause_window
