"""Checkpoint capture strategies and shared policy interfaces.

Terminology follows Section II-B2 (after Plank/Koren):

* **overhead** — wall-clock during which guest execution is suspended by
  checkpointing (the pause);
* **latency** — time from the start of a checkpoint until the checkpoint
  is *usable* for recovery (committed to its sink).  Latency ≥ overhead,
  and diskless checkpointing's whole point is slashing latency by
  removing the disk from the commit path.

A :class:`CaptureStrategy` turns one VM's live state into a
:class:`~repro.cluster.images.CheckpointImage` plus the pause the guest
suffers; sinks/protocols (diskful baseline, Remus, DVDC) then move and
commit those images, each charging its own pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from ..cluster.hypervisor import Hypervisor
from ..cluster.images import CheckpointImage
from ..cluster.vm import VirtualMachine
from ..migration.downtime import PAPER_BASE_OVERHEAD

__all__ = [
    "CaptureSpec",
    "CaptureStrategy",
    "CaptureOutcome",
    "CheckpointCycleResult",
    "CheckpointProtocol",
]

#: In-memory copy bandwidth for non-COW capture (memcpy class), bytes/s.
DEFAULT_COPY_BANDWIDTH = 4e9


@dataclass(frozen=True)
class CaptureSpec:
    """Cost parameters of the capture mechanism.

    ``pause_fixed`` is the suspend/resume floor — the paper's 40 ms
    baseline overhead.  ``copy_bandwidth`` applies when the image (or
    dirty set) must be copied synchronously while paused; copy-on-write
    strategies dodge that term.
    """

    pause_fixed: float = PAPER_BASE_OVERHEAD
    copy_bandwidth: float = DEFAULT_COPY_BANDWIDTH

    def __post_init__(self) -> None:
        if self.pause_fixed < 0:
            raise ValueError(f"pause_fixed must be >= 0, got {self.pause_fixed}")
        if self.copy_bandwidth <= 0:
            raise ValueError(f"copy_bandwidth must be > 0, got {self.copy_bandwidth}")


@dataclass(frozen=True)
class CaptureOutcome:
    """One VM captured: the image plus the guest pause charged."""

    image: CheckpointImage
    pause_seconds: float


class CaptureStrategy(Protocol):
    """Capture policy: produces images and pause costs.

    ``elapsed`` is the time since this VM's previous checkpoint — what
    incremental strategies need to size the dirty set for logical-only
    VMs (functional VMs read their real dirty log instead).
    """

    def capture(
        self,
        hypervisor: Hypervisor,
        vm: VirtualMachine,
        epoch: int,
        now: float,
        elapsed: float,
    ) -> CaptureOutcome:  # pragma: no cover - protocol
        ...


@dataclass
class CheckpointCycleResult:
    """Accounting for one cluster-wide checkpoint cycle.

    ``overhead`` — global execution suspension (the model's share of
    T_ov); ``latency`` — start-to-commit for the slowest element;
    ``network_bytes`` / ``disk_bytes`` — traffic; ``parity_bytes`` —
    XOR work performed (diskless protocols only).
    """

    epoch: int
    started_at: float
    overhead: float = 0.0
    latency: float = 0.0
    network_bytes: float = 0.0
    disk_bytes: float = 0.0
    parity_bytes: float = 0.0
    per_vm_pause: dict[int, float] = field(default_factory=dict)
    committed: bool = False


class CheckpointProtocol(Protocol):
    """End-to-end checkpoint protocol over a cluster.

    Implementations: :class:`repro.checkpoint.diskful.DiskfulCheckpointer`
    (baseline), :class:`repro.core.dvdc.DVDC` (the contribution), and the
    Fig. 1/Fig. 3 architecture variants.
    """

    def run_cycle(self):  # pragma: no cover - protocol
        """Simulation process performing one coordinated checkpoint;
        returns a :class:`CheckpointCycleResult`."""
        ...

    def recover(self, failed_node_id: int):  # pragma: no cover - protocol
        """Simulation process recovering from a node failure; returns a
        recovery report object."""
        ...
