"""Checkpointing layer: capture strategies, compression, coordination,
the disk-full baseline, Remus comparator, and adaptive scheduling."""

from .adaptive import AdaptiveDecision, AdaptivePolicy
from .base import (
    CaptureOutcome,
    CaptureSpec,
    CaptureStrategy,
    CheckpointCycleResult,
    CheckpointProtocol,
)
from .compression import (
    NO_COMPRESSION,
    CompressedDelta,
    CompressionModel,
    compress_delta,
    compressed_size,
)
from .coordinator import CoordinatedCheckpoint
from .diskful import DiskfulCheckpointer, DiskfulRecoveryReport
from .remus import RemusEpochStats, RemusModel, RemusPair
from .strategies import ForkedCapture, FullCapture, IncrementalCapture

__all__ = [
    "CaptureSpec",
    "CaptureStrategy",
    "CaptureOutcome",
    "CheckpointCycleResult",
    "CheckpointProtocol",
    "FullCapture",
    "IncrementalCapture",
    "ForkedCapture",
    "CompressionModel",
    "CompressedDelta",
    "compress_delta",
    "compressed_size",
    "NO_COMPRESSION",
    "CoordinatedCheckpoint",
    "DiskfulCheckpointer",
    "DiskfulRecoveryReport",
    "RemusModel",
    "RemusPair",
    "RemusEpochStats",
    "AdaptivePolicy",
    "AdaptiveDecision",
]
