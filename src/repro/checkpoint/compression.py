"""Checkpoint compression (Section II-B1 / IV-C).

Two cooperating pieces:

* :class:`CompressionModel` — the *timing* view: a compression ratio and
  a CPU throughput, used by the overhead pipelines ("suitably
  compressing the differences of the last checkpoint when sending
  information over the network", Section IV-C).
* :func:`compress_delta` / :func:`compressed_size` — the *functional*
  view: zero-page elimination plus zlib over real page payloads, used to
  measure achieved ratios on synthetic working sets.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..cluster.memory import PageDelta
from ..cluster.xorsum import as_u8

__all__ = [
    "CompressionModel",
    "CompressedDelta",
    "compress_delta",
    "compressed_size",
    "NO_COMPRESSION",
]


@dataclass(frozen=True)
class CompressionModel:
    """Timing model of a compressor in the checkpoint path.

    ``ratio`` is output/input (0 < ratio ≤ 1; 0.5 means 2:1).
    ``throughput`` is compressor speed in input-bytes/second; the CPU
    time charged is ``nbytes / throughput`` (0 cost if ``throughput``
    is ``None`` — compression folded into the copy, e.g. zero-page
    skipping in the hypervisor).
    """

    ratio: float = 0.5
    throughput: float | None = 1.5e9

    def __post_init__(self) -> None:
        if not (0.0 < self.ratio <= 1.0):
            raise ValueError(f"ratio must be in (0, 1], got {self.ratio}")
        if self.throughput is not None and self.throughput <= 0:
            raise ValueError(f"throughput must be > 0, got {self.throughput}")

    def output_bytes(self, nbytes: float) -> float:
        return nbytes * self.ratio

    def cpu_seconds(self, nbytes: float) -> float:
        if self.throughput is None:
            return 0.0
        return nbytes / self.throughput


#: Identity compression (ratio 1, free).
NO_COMPRESSION = CompressionModel(ratio=1.0, throughput=None)


@dataclass(frozen=True)
class CompressedDelta:
    """A functionally compressed :class:`PageDelta`.

    ``blobs`` holds one zlib stream per surviving (non-zero) page;
    ``zero_indices`` lists pages represented by a flag only.
    """

    delta: PageDelta
    zero_indices: np.ndarray
    blobs: list[bytes]
    blob_indices: np.ndarray

    @property
    def raw_bytes(self) -> int:
        return self.delta.nbytes

    @property
    def compressed_bytes(self) -> int:
        # 8 bytes of framing per page record (index + length)
        framing = 8 * (len(self.blobs) + len(self.zero_indices))
        return sum(len(b) for b in self.blobs) + framing

    @property
    def ratio(self) -> float:
        if self.raw_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.raw_bytes

    def decompress(self) -> PageDelta:
        """Reconstruct the original delta bit-exactly."""
        pages = np.zeros(
            (self.delta.n_pages, self.delta.page_size), dtype=np.uint8
        )
        # positions of blob pages within the delta's index order
        pos_of = {int(idx): k for k, idx in enumerate(self.delta.indices)}
        for blob, idx in zip(self.blobs, self.blob_indices):
            row = np.frombuffer(zlib.decompress(blob), dtype=np.uint8)
            pages[pos_of[int(idx)]] = row
        # zero pages are already zero
        return PageDelta(
            page_size=self.delta.page_size,
            n_pages_total=self.delta.n_pages_total,
            indices=self.delta.indices,
            pages=pages,
        )


def compress_delta(delta: PageDelta, level: int = 1) -> CompressedDelta:
    """Zero-page elimination + zlib per non-zero page."""
    zero_mask = ~delta.pages.any(axis=1)
    zero_indices = delta.indices[zero_mask]
    blob_indices = delta.indices[~zero_mask]
    blobs = [
        zlib.compress(delta.pages[k].tobytes(), level)
        for k in np.flatnonzero(~zero_mask)
    ]
    return CompressedDelta(
        delta=delta,
        zero_indices=zero_indices,
        blobs=blobs,
        blob_indices=blob_indices,
    )


def compressed_size(buf: np.ndarray | bytes, level: int = 1) -> int:
    """zlib-compressed size of an arbitrary buffer (for measurements)."""
    return len(zlib.compress(as_u8(buf).tobytes(), level))
