"""Remus-style active/standby replication (Cully et al., NSDI'08).

The Section VI comparator: each protected VM runs *speculatively* on an
active host while checkpoints stream asynchronously to a standby host
that always holds the most recent committed image.  Epochs can run at
tens of Hz ("as many as 40 times per second").  Output commit is
enforced by buffering externally visible output until the standby acks
the epoch.

Differences from DVDC the model must expose (Section VI):

* Remus pairs hosts 1:1 (or N:1) — memory cost is a full image per VM on
  the standby; DVDC stores one parity image per group.
* On failure Remus resumes *immediately* from the standby (losing only
  the speculation window); DVDC must roll everyone back and XOR-rebuild.

:class:`RemusPair` simulates one protected VM; :class:`RemusModel`
provides the closed-form per-epoch overhead used in the comparison
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import VirtualCluster
from ..cluster.vm import VirtualMachine
from ..sim import Interrupt, NULL_TRACER, Tracer

__all__ = ["RemusModel", "RemusPair", "RemusEpochStats"]


@dataclass(frozen=True)
class RemusModel:
    """Closed-form Remus cost model.

    Per epoch of length ``E`` a VM dirties ``min(rate·E, image)`` bytes;
    the epoch pause is ``pause_fixed`` (copy-on-write capture into the
    transmit buffer), and replication traffic is the dirty set.  The
    epoch sustains only if traffic fits the link: ``rate·E ≤ bw·E`` ⇒
    ``rate ≤ bw``; otherwise the protected VM must be throttled — the
    "significant impact to the system" the paper notes at 40 Hz.

    ``speculation_loss(E)`` — expected lost work on failover = E/2 plus
    the in-flight epoch ≈ 1.5·E on average.
    """

    epoch_length: float = 25e-3
    pause_fixed: float = 5e-3
    bandwidth: float = 125e6

    def __post_init__(self) -> None:
        if self.epoch_length <= 0:
            raise ValueError(f"epoch_length must be > 0, got {self.epoch_length}")
        if self.pause_fixed < 0:
            raise ValueError(f"pause_fixed must be >= 0, got {self.pause_fixed}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")

    @property
    def checkpoint_rate_hz(self) -> float:
        return 1.0 / self.epoch_length

    def epoch_dirty_bytes(self, vm_dirty_rate: float, image_bytes: float) -> float:
        return min(vm_dirty_rate * self.epoch_length, image_bytes)

    def overhead_fraction(self, vm_dirty_rate: float, image_bytes: float) -> float:
        """Fraction of wall-clock lost to epoch pauses and backpressure.

        Pause per epoch plus any shortfall when the dirty set cannot be
        drained within one epoch (buffering backpressure throttles the
        guest for the excess).
        """
        dirty = self.epoch_dirty_bytes(vm_dirty_rate, image_bytes)
        drain = dirty / self.bandwidth
        backpressure = max(0.0, drain - self.epoch_length)
        return (self.pause_fixed + backpressure) / self.epoch_length

    def speculation_loss(self) -> float:
        """Expected execution lost at failover (output-committed work is
        never lost; speculative work since the last committed epoch is)."""
        return 1.5 * self.epoch_length

    def standby_memory_bytes(self, image_bytes: float) -> float:
        """Standby-side memory per protected VM: a full image."""
        return image_bytes


@dataclass
class RemusEpochStats:
    epochs: int = 0
    replicated_bytes: float = 0.0
    pause_seconds: float = 0.0
    failovers: int = 0
    lost_work: float = 0.0


class RemusPair:
    """One protected VM replicating to a standby node (simulation).

    Run :meth:`protect` as a process; it loops epochs until interrupted.
    Call :meth:`failover` after the active node dies: the VM re-registers
    on the standby instantly and the stats record the speculation loss.
    """

    def __init__(
        self,
        cluster: VirtualCluster,
        vm: VirtualMachine,
        standby_node_id: int,
        model: RemusModel | None = None,
        tracer: Tracer = NULL_TRACER,
    ):
        if vm.node_id == standby_node_id:
            raise ValueError("standby must be a different node than the active host")
        self.cluster = cluster
        self.vm = vm
        self.standby_node_id = standby_node_id
        self.model = model or RemusModel(bandwidth=cluster.spec.node_bandwidth)
        self.tracer = tracer
        self.stats = RemusEpochStats()
        self.last_committed_at: float | None = None

    def protect(self):
        """Process: run replication epochs until interrupted."""
        sim = self.cluster.sim
        m = self.model
        try:
            while True:
                yield sim.timeout(m.epoch_length)
                dirty = m.epoch_dirty_bytes(self.vm.dirty_rate, self.vm.memory_bytes)
                # epoch pause: capture into transmit buffer
                self.vm.pause()
                yield sim.timeout(m.pause_fixed)
                self.vm.resume()
                # asynchronous drain to the standby
                src = self.vm.node_id
                if src is None:
                    return self.stats
                if dirty > 0:
                    flow = self.cluster.topology.transfer(
                        src, self.standby_node_id, dirty,
                        label=f"remus.vm{self.vm.vm_id}.e{self.stats.epochs}",
                    )
                    yield flow
                self.last_committed_at = sim.now
                self.stats.epochs += 1
                self.stats.replicated_bytes += dirty
                self.stats.pause_seconds += m.pause_fixed
        except Interrupt:
            return self.stats

    def failover(self) -> float:
        """Activate the standby copy; returns lost (speculative) work.

        The VM must currently be FAILED (its active node crashed).  The
        standby's image is the last committed epoch, so the work since
        ``last_committed_at`` is lost.
        """
        sim = self.cluster.sim
        if self.vm.node_id is not None:
            raise RuntimeError(f"vm {self.vm.vm_id} still has an active host")
        self.cluster.place_failed_vm(self.vm.vm_id, self.standby_node_id)
        self.vm.revive()
        lost = 0.0 if self.last_committed_at is None else sim.now - self.last_committed_at
        self.stats.failovers += 1
        self.stats.lost_work += lost
        self.tracer.emit(sim.now, "remus.failover", vm=self.vm.vm_id, lost=lost)
        return lost
