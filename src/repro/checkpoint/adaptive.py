"""Adaptive (cost-benefit) checkpoint scheduling — Section II-B1.

With incremental checkpointing the cost of the *next* checkpoint is not
constant: it grows with the dirty set.  The paper sketches the online
rule: at any moment, compare the expected recovery cost of skipping
(risking a "long rollback") with the cost of taking the checkpoint now
(paying overhead for a "short rollback" later).  Checkpoint when the
differential crosses zero.

Derivation used here: running uncheckpointed for time ``t`` puts ``t``
seconds of work at risk; under Poisson failures at rate ``λ`` the
instantaneous expected-loss accrual rate is ``λ·t``.  The accumulated
expected loss since the last checkpoint is ``λ·t²/2``.  Taking a
checkpoint costs ``T_ov(dirty(t))``.  The skip/take differential flips
when::

    λ · t² / 2  ≥  T_ov(dirty(t))

With constant ``T_ov`` this reduces to Young's classic
``t* = sqrt(2·T_ov/λ)`` — which :func:`repro.model.optimal.young_interval`
cross-checks — so the adaptive rule is a strict generalization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

__all__ = ["AdaptivePolicy", "AdaptiveDecision"]


@dataclass(frozen=True)
class AdaptiveDecision:
    """The policy's view at one instant (for tracing and tests)."""

    elapsed: float
    dirty_bytes: float
    risk: float
    cost: float

    @property
    def take(self) -> bool:
        return self.risk >= self.cost


class AdaptivePolicy:
    """Online skip-or-take rule for incremental checkpointing.

    Parameters
    ----------
    lam:
        Failure rate λ (1/s).
    overhead_of:
        ``overhead_of(dirty_bytes) -> seconds`` — the cost of taking a
        checkpoint right now given the current dirty set (wire the
        diskful or diskless pipeline in here).
    min_interval:
        Floor between checkpoints, guarding against a degenerate
        zero-cost pipeline checkpointing continuously.
    """

    def __init__(
        self,
        lam: float,
        overhead_of: Callable[[float], float],
        min_interval: float = 1.0,
    ):
        if lam <= 0:
            raise ValueError(f"lambda must be > 0, got {lam}")
        if min_interval < 0:
            raise ValueError(f"min_interval must be >= 0, got {min_interval}")
        self.lam = lam
        self.overhead_of = overhead_of
        self.min_interval = min_interval

    def evaluate(self, elapsed: float, dirty_bytes: float) -> AdaptiveDecision:
        """Assess the skip/take differential at ``elapsed`` seconds since
        the last checkpoint with the given dirty set."""
        risk = self.lam * elapsed * elapsed / 2.0
        cost = self.overhead_of(dirty_bytes)
        return AdaptiveDecision(elapsed, dirty_bytes, risk, cost)

    def should_checkpoint(self, elapsed: float, dirty_bytes: float) -> bool:
        if elapsed < self.min_interval:
            return False
        return self.evaluate(elapsed, dirty_bytes).take

    def next_check_time(
        self, dirty_rate: float, start: float = 0.0, resolution: float = 1.0
    ) -> float:
        """Predict when the rule will fire if dirtying continues at
        ``dirty_rate`` bytes/s.  Scans forward at ``resolution`` steps
        (the cost function may be arbitrary); returns the elapsed time.
        """
        t = max(start, self.min_interval, resolution)
        # Upper bound: even a free checkpoint fires by Young's interval
        # computed against the max imaginable cost at saturation.
        for _ in range(10_000_000):
            if self.should_checkpoint(t, dirty_rate * t):
                return t
            t += resolution
        raise RuntimeError("adaptive rule did not fire; cost function may diverge")

    def young_equivalent(self, constant_overhead: float) -> float:
        """The fixed interval this rule degenerates to with constant cost."""
        return math.sqrt(2.0 * constant_overhead / self.lam)
