"""Stop-and-copy downtime model.

Downtime is the window in which the guest is paused: the residual dirty
set crosses the wire, then the destination activates the VM (device
re-attachment, ARP announcements for the "global names" of Section
II-A).  Clark et al. measured 60 ms migrating a Quake 3 server; Remus
epochs pause for tens of milliseconds; the paper's model uses a 40 ms
baseline overhead "which conforms to figures given commonly in many
Live Migration papers".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DowntimeModel", "PAPER_BASE_OVERHEAD"]

#: The 40 ms baseline overhead used in Section V-B.
PAPER_BASE_OVERHEAD = 40e-3


@dataclass(frozen=True)
class DowntimeModel:
    """Downtime = pause + residual transfer + activation.

    Parameters
    ----------
    pause_cost:
        Suspending the guest and snapshotting device state, seconds.
    activation_cost:
        Resuming on the destination: device re-attach plus the unsolicited
        ARP that redirects the VM's IP (global-name handling), seconds.
    """

    pause_cost: float = 15e-3
    activation_cost: float = 25e-3

    def __post_init__(self) -> None:
        if self.pause_cost < 0 or self.activation_cost < 0:
            raise ValueError("downtime costs must be >= 0")

    def fixed_cost(self) -> float:
        """Downtime floor independent of residual size (40 ms default —
        the paper's baseline overhead)."""
        return self.pause_cost + self.activation_cost

    def downtime(self, residual_bytes: float, bandwidth: float) -> float:
        """Total guest-visible pause for a given residual dirty set."""
        if residual_bytes < 0:
            raise ValueError(f"residual_bytes must be >= 0, got {residual_bytes}")
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        return self.fixed_cost() + residual_bytes / bandwidth
