"""Live-migration substrate: pre-copy, downtime, page-hash dedup."""

from .downtime import PAPER_BASE_OVERHEAD, DowntimeModel
from .pagehash import DedupPlan, PageHashIndex, hash_pages, plan_dedup_transfer
from .precopy import PrecopyModel, PrecopyResult, live_migrate, migration_time_estimate

__all__ = [
    "DowntimeModel",
    "PAPER_BASE_OVERHEAD",
    "PrecopyModel",
    "PrecopyResult",
    "live_migrate",
    "migration_time_estimate",
    "PageHashIndex",
    "DedupPlan",
    "plan_dedup_transfer",
    "hash_pages",
]
