"""Iterative pre-copy live migration (Clark et al., NSDI'05).

Pre-copy ships the full image while the guest keeps running, then
iterates over the pages dirtied during each round until the residual set
is small enough to stop-and-copy.  DVDC rides this machinery for its
checkpoint traffic (Section IV-C: "Remus is simply using live migration
as a convenient method through which to implement efficient incremental
checkpointing").

Two forms are provided:

* :class:`PrecopyModel` — the closed-form geometric model: with
  dirty/bandwidth ratio ``ρ``, round ``i`` moves ``S·ρ^i`` bytes, so
  total traffic is the geometric sum and downtime is the residual over
  the wire.  This feeds the analytical overhead model.
* :func:`live_migrate` — a simulation process that performs the rounds
  over real :class:`~repro.network.link.Flow` objects, moves the VM's
  registration, and (for functional VMs) copies the image bit-exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cluster.cluster import VirtualCluster
from ..cluster.vm import VirtualMachine, VMState
from ..network.link import NetworkError
from ..sim import NULL_TRACER, Tracer
from .downtime import DowntimeModel

__all__ = ["PrecopyModel", "PrecopyResult", "live_migrate"]


@dataclass(frozen=True)
class PrecopyResult:
    """Outcome of a migration (modeled or simulated)."""

    rounds: int
    total_bytes: float
    total_time: float
    downtime: float
    converged: bool


@dataclass(frozen=True)
class PrecopyModel:
    """Closed-form pre-copy estimates.

    Parameters
    ----------
    bandwidth:
        Transfer bandwidth available to migration, bytes/second.
    max_rounds:
        Cap on iterative rounds before forcing stop-and-copy.
    downtime_target_bytes:
        Stop-and-copy is entered once the residual dirty set is at or
        below this size (Xen's writable-working-set heuristic distilled).
    """

    bandwidth: float
    max_rounds: int = 30
    downtime_target_bytes: float = 1e6
    downtime_model: DowntimeModel = DowntimeModel()

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.max_rounds < 0:
            raise ValueError(f"max_rounds must be >= 0, got {self.max_rounds}")

    def rho(self, dirty_rate: float) -> float:
        """Dirty-to-bandwidth ratio; ≥ 1 means pre-copy cannot converge."""
        return dirty_rate / self.bandwidth

    def estimate(
        self, image_bytes: float, dirty_rate: float, dirty_model=None
    ) -> PrecopyResult:
        """Rounds, traffic, elapsed time, and downtime for one migration.

        ``dirty_model`` — optional
        :class:`~repro.workloads.dirtypages.WorkloadDirtyModel`: per-round
        re-dirtying then follows the workload's saturating working-set
        curve instead of the synthetic ``dirty_rate · t`` line (repeated
        writes to a hot page cost one page, so rounds shrink faster and
        downtime reflects the residual working set).
        """
        if image_bytes < 0:
            raise ValueError(f"image_bytes must be >= 0, got {image_bytes}")
        if dirty_rate < 0:
            raise ValueError(f"dirty_rate must be >= 0, got {dirty_rate}")
        if dirty_model is not None:
            dirty_rate = dirty_model.peak_rate
        rho = self.rho(dirty_rate)
        to_send = image_bytes
        total = 0.0
        elapsed = 0.0
        rounds = 0
        converged = True
        while to_send > self.downtime_target_bytes and rounds < self.max_rounds:
            t = to_send / self.bandwidth
            total += to_send
            elapsed += t
            rounds += 1
            if dirty_model is not None:
                to_send = min(image_bytes, dirty_model.dirty_bytes(t))
            else:
                to_send = min(image_bytes, dirty_rate * t)
            if rho >= 1.0 and rounds >= 2:
                # diverging: residual stopped shrinking, force stop-and-copy
                converged = False
                break
        downtime = self.downtime_model.downtime(to_send, self.bandwidth)
        total += to_send
        elapsed += to_send / self.bandwidth
        return PrecopyResult(
            rounds=rounds,
            total_bytes=total,
            total_time=elapsed + self.downtime_model.fixed_cost(),
            downtime=downtime,
            converged=converged,
        )


def live_migrate(
    cluster: VirtualCluster,
    vm: VirtualMachine,
    dst_node_id: int,
    model: PrecopyModel | None = None,
    tracer: Tracer = NULL_TRACER,
    dirty_model=None,
):
    """Simulation process: live-migrate ``vm`` to ``dst_node_id``.

    Performs pre-copy rounds as real network flows (so migration traffic
    contends with checkpoint traffic on the same links), then the
    stop-and-copy pause, then re-registers the VM on the destination.
    Returns a :class:`PrecopyResult`.

    ``dirty_model`` — optional
    :class:`~repro.workloads.dirtypages.WorkloadDirtyModel`: the bytes
    re-dirtied during each round follow the workload's saturating
    working-set curve instead of the synthetic ``vm.dirty_rate · t``
    line (see :meth:`PrecopyModel.estimate`).

    For functional VMs the image travels by reference-copy at the
    stop-and-copy point — the simulated payload equals the source
    bit-exactly, and the dirty log is preserved semantics-wise (cleared,
    as a real migration's final round leaves a clean slate).
    """
    sim = cluster.sim
    model = model or PrecopyModel(bandwidth=cluster.spec.node_bandwidth)
    src = vm.node_id
    if src is None:
        raise ValueError(f"vm {vm.vm_id} is not hosted anywhere")
    if src == dst_node_id:
        return PrecopyResult(0, 0.0, 0.0, 0.0, True)
    vm.begin_migration()
    tracer.emit(sim.now, "migration.start", vm=vm.vm_id, src=src, dst=dst_node_id)
    start = sim.now
    total = 0.0
    rounds = 0
    to_send = vm.memory_bytes
    converged = True
    dirty_rate = dirty_model.peak_rate if dirty_model is not None else vm.dirty_rate
    rho = model.rho(dirty_rate)
    while to_send > model.downtime_target_bytes and rounds < model.max_rounds:
        flow = cluster.topology.transfer(
            src, dst_node_id, to_send, label=f"migrate.vm{vm.vm_id}.r{rounds}"
        )
        try:
            yield flow
        except NetworkError:
            # source or destination died mid-round: cancel the migration;
            # the guest (if its host survived) keeps running at the source
            if vm.state == VMState.MIGRATING:
                vm.end_migration()
            tracer.emit(sim.now, "migration.aborted", vm=vm.vm_id)
            raise
        round_time = sim.now - start if rounds == 0 else flow.finished_at - flow.started_at
        total += to_send
        rounds += 1
        if dirty_model is not None:
            to_send = min(vm.memory_bytes, dirty_model.dirty_bytes(round_time))
        else:
            to_send = min(vm.memory_bytes, vm.dirty_rate * round_time)
        if rho >= 1.0 and rounds >= 2:
            converged = False
            break
    # stop-and-copy: guest pauses, residual moves, VM activates remotely
    downtime_start = sim.now
    if to_send > 0:
        flow = cluster.topology.transfer(
            src, dst_node_id, to_send, label=f"migrate.vm{vm.vm_id}.final"
        )
        try:
            yield flow
        except NetworkError:
            if vm.state == VMState.MIGRATING:
                vm.end_migration()
            tracer.emit(sim.now, "migration.aborted", vm=vm.vm_id)
            raise
        total += to_send
    yield sim.timeout(model.downtime_model.fixed_cost())
    downtime = sim.now - downtime_start
    cluster.node(src).evict(vm)
    vm.end_migration()
    cluster.node(dst_node_id).host(vm)
    tracer.emit(
        sim.now, "migration.done", vm=vm.vm_id, src=src, dst=dst_node_id,
        rounds=rounds, total_bytes=total, downtime=downtime,
    )
    return PrecopyResult(
        rounds=rounds,
        total_bytes=total,
        total_time=sim.now - start,
        downtime=downtime,
        converged=converged,
    )


def migration_time_estimate(
    image_bytes: float, dirty_rate: float, bandwidth: float
) -> float:
    """Quick closed-form total migration time (geometric sum).

    ``S/B · (1-ρ^{n+1})/(1-ρ)`` with the default round cap; infinite
    (math.inf) if ``ρ >= 1`` (non-convergent without throttling).
    """
    if dirty_rate >= bandwidth:
        return math.inf
    return PrecopyModel(bandwidth=bandwidth).estimate(image_bytes, dirty_rate).total_time
