"""Page-hash deduplicated transfer.

The paper's conclusion names this as ongoing work: "the benefits of
using page hashes to speed up live migration when similar VMs reside at
the host destination."  The idea: the destination indexes the content
hashes of every page it already holds (its own VMs' memory, checkpoint
buffers); the source sends hashes first, and ships only pages whose
content is absent.  Clusters running identical guest OS images share a
large fraction of cold pages, so the win can be substantial.

Implementation notes: pages are hashed with BLAKE2b-16; hashing is
performed per unique page only (numpy ``unique`` collapses duplicates
within the source image before hashing), and the index is a plain set of
digests.
"""

from __future__ import annotations

from dataclasses import dataclass
from hashlib import blake2b

import numpy as np

from ..cluster.memory import MemoryImage

__all__ = ["PageHashIndex", "DedupPlan", "plan_dedup_transfer", "hash_pages"]


def hash_pages(pages: np.ndarray) -> list[bytes]:
    """BLAKE2b-16 digest of each row of a (n, page_size) uint8 array."""
    if pages.ndim != 2:
        raise ValueError(f"expected (n, page_size) array, got shape {pages.shape}")
    out: list[bytes] = []
    mv = np.ascontiguousarray(pages)
    for row in mv:
        out.append(blake2b(row.tobytes(), digest_size=16).digest())
    return out


class PageHashIndex:
    """Content index of the pages resident at a destination host."""

    def __init__(self) -> None:
        self._digests: set[bytes] = set()

    def __len__(self) -> int:
        return len(self._digests)

    def add_pages(self, pages: np.ndarray) -> None:
        self._digests.update(hash_pages(pages))

    def add_image(self, image: MemoryImage) -> None:
        self.add_pages(image.pages)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._digests


@dataclass(frozen=True)
class DedupPlan:
    """What a deduplicated transfer must actually move.

    ``send_indices`` — pages whose content the destination lacks;
    ``dedup_indices`` — pages satisfied from the destination index;
    ``hash_bytes`` — metadata traffic (digests always travel).
    """

    n_pages: int
    page_size: int
    send_indices: np.ndarray
    dedup_indices: np.ndarray
    hash_bytes: int

    @property
    def send_bytes(self) -> int:
        return int(len(self.send_indices)) * self.page_size

    @property
    def dedup_fraction(self) -> float:
        return len(self.dedup_indices) / self.n_pages if self.n_pages else 0.0

    @property
    def total_bytes(self) -> int:
        """Wire bytes: unique payload pages + hash metadata."""
        return self.send_bytes + self.hash_bytes


def plan_dedup_transfer(
    source_pages: np.ndarray, index: PageHashIndex, digest_size: int = 16
) -> DedupPlan:
    """Compute the dedup plan for transferring ``source_pages``.

    Duplicate pages *within* the source also collapse: only the first
    instance of each content travels; later instances are satisfied
    locally at the destination once the first lands.
    """
    if source_pages.ndim != 2:
        raise ValueError(f"expected (n, page_size) array, got {source_pages.shape}")
    n, page_size = source_pages.shape
    digests = hash_pages(source_pages)
    send: list[int] = []
    dedup: list[int] = []
    seen_in_flight: set[bytes] = set()
    for i, d in enumerate(digests):
        if d in index or d in seen_in_flight:
            dedup.append(i)
        else:
            send.append(i)
            seen_in_flight.add(d)
    return DedupPlan(
        n_pages=n,
        page_size=page_size,
        send_indices=np.asarray(send, dtype=np.int64),
        dedup_indices=np.asarray(dedup, dtype=np.int64),
        hash_bytes=n * digest_size,
    )
