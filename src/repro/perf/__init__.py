"""Performance harness: scale scenarios, digests, regression checks.

``repro.perf`` owns the thousand-node scaling story: a canonical DVDC
scale scenario (:func:`~repro.perf.scale.run_scale_point`), bit-exact
run digests used by the differential/golden tests, the cancel-heavy
event-heap microbenchmark, and the ``BENCH_scale.json`` baseline
comparison behind ``repro bench scale`` and the perf-regression CI job.
"""

from .scale import (
    ScaleConfig,
    build_scale_scenario,
    compare_to_baseline,
    generate_bench,
    coding_throughput_bench,
    heap_cancel_bench,
    run_scale_point,
    scenario_digests,
)

__all__ = [
    "ScaleConfig",
    "build_scale_scenario",
    "compare_to_baseline",
    "generate_bench",
    "coding_throughput_bench",
    "heap_cancel_bench",
    "run_scale_point",
    "scenario_digests",
]
