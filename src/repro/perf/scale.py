"""The canonical DVDC scale scenario and its measurement harness.

One scenario, three consumers:

* ``benchmarks/bench_scale.py`` times it at 64/256/1024 nodes and writes
  ``BENCH_scale.json``;
* ``tests/test_golden_determinism.py`` digests a small instance and pins
  the digests against ``tests/golden/``;
* ``repro bench scale`` runs it from the CLI and gates PRs against the
  recorded baseline.

The scenario is a 4-VMs-per-node DVDC cluster running incremental
checkpoint epochs: each epoch every VM dirties a few pages from its own
named RNG stream, then one coordinated cycle captures deltas, exchanges
them to parity nodes, folds parity, and commits.  Every knob that the
perf work touches (fluid-flow allocator, COW snapshots, buffer pool) is
a parameter, so the same function measures the optimized and reference
paths and *proves them bit-identical* via :func:`scenario_digests`.
"""

from __future__ import annotations

import hashlib
import json
import math
import resource
import time
from dataclasses import dataclass, field

import numpy as np

from ..checkpoint.strategies import IncrementalCapture
from ..cluster import memory
from ..cluster.cluster import ClusterSpec, VirtualCluster
from ..controlplane.scheduler import PlacementEngine
from ..core.architectures import dvdc
from ..sim import Simulator, Tracer, NULL_TRACER
from ..sim.rng import RngRegistry

__all__ = [
    "ScaleConfig",
    "build_scale_scenario",
    "run_scale_point",
    "scenario_digests",
    "heap_cancel_bench",
    "coding_throughput_bench",
    "generate_bench",
    "compare_to_baseline",
]


@dataclass(frozen=True)
class ScaleConfig:
    """Parameters of one scale-scenario run."""

    n_nodes: int
    vms_per_node: int = 4
    group_size: int = 4
    epochs: int = 3
    seed: int = 0
    allocator: str = "incremental"
    cow: bool = True
    image_pages: int = 16
    page_size: int = 64
    dirty_pages_per_vm: int = 4
    trace: bool = False

    @property
    def n_vms(self) -> int:
        return self.n_nodes * self.vms_per_node


def build_scale_scenario(cfg: ScaleConfig, tracer: Tracer | None = None):
    """Construct (sim, cluster, checkpointer, rngs, tracer) for ``cfg``.

    ``tracer`` overrides the default (``Tracer()`` when ``cfg.trace``,
    else the null tracer) — the golden tests pass a telemetry ``Probe``
    here to export span timelines of the exact same scenario.
    """
    sim = Simulator()
    if tracer is None:
        tracer = Tracer() if cfg.trace else NULL_TRACER
    spec = ClusterSpec(n_nodes=cfg.n_nodes, allocator=cfg.allocator)
    rngs = RngRegistry(cfg.seed)
    old_cow = memory.DEFAULT_COW
    memory.DEFAULT_COW = cfg.cow
    try:
        cluster = VirtualCluster(sim, spec, tracer=tracer)
        # placement routed through the control plane's engine; on an
        # empty cluster its least-loaded greedy reproduces the classic
        # round-robin exactly (pinned by the golden digests)
        hosts = PlacementEngine(cluster).spread(cfg.n_vms)
        init = rngs.stream("image-init")
        for i in range(cfg.n_vms):
            vm = cluster.create_vm(
                hosts[i], 1e9, dirty_rate=2e5,
                image_pages=cfg.image_pages, page_size=cfg.page_size,
            )
            fill = min(512, vm.image.nbytes)
            vm.image.write(0, init.integers(0, 256, fill, dtype=np.uint8))
            vm.image.clear_dirty()
    finally:
        memory.DEFAULT_COW = old_cow
    ckpt = dvdc(
        cluster, group_size=cfg.group_size, strategy=IncrementalCapture(),
        tracer=tracer,
    )
    return sim, cluster, ckpt, rngs, tracer


def _dirty_epoch(cluster, rngs: RngRegistry, cfg: ScaleConfig) -> None:
    for vm in cluster.all_vms:
        rng = rngs.stream(f"dirty/vm{vm.vm_id}")
        idx = rng.integers(0, cfg.image_pages, size=cfg.dirty_pages_per_vm)
        vm.image.touch_pages(idx, rng)


def run_scale_point(
    cfg: ScaleConfig,
    max_wall: float | None = None,
    collect_digests: bool = False,
) -> dict:
    """Run the scenario and measure it.

    ``max_wall`` caps wall-clock seconds: the run stops mid-epoch once
    exceeded (``aborted: True``) but still reports events/sec over the
    events it did execute — how the intractably slow reference allocator
    is measured at 1024 nodes.  Construction/teardown are excluded from
    the timed window.
    """
    sim, cluster, ckpt, rngs, tracer = build_scale_scenario(cfg)
    epochs_done = 0
    aborted = False
    t0 = time.perf_counter()
    deadline = None if max_wall is None else t0 + max_wall
    for _ in range(cfg.epochs):
        _dirty_epoch(cluster, rngs, cfg)
        proc = sim.process(ckpt.run_cycle())
        if deadline is None:
            sim.run()
        else:
            # chunked run(): the deadline check lands every 256 events,
            # exactly like the historical per-step loop, without paying
            # per-event dispatch overhead in Python
            while True:
                before = sim.event_count
                sim.run(max_events=256)
                if sim.event_count - before < 256:
                    break  # queue drained inside the chunk
                if time.perf_counter() > deadline:
                    aborted = True
                    break
        if aborted:
            break
        if proc.ok is False:
            raise proc.value
        epochs_done += 1
    wall = time.perf_counter() - t0
    events = sim.event_count
    result = {
        "n_nodes": cfg.n_nodes,
        "n_vms": cfg.n_vms,
        "allocator": cfg.allocator,
        "cow": cfg.cow,
        "epochs_requested": cfg.epochs,
        "epochs_completed": epochs_done,
        "aborted": aborted,
        "events": events,
        "wall_seconds": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "epochs_per_sec": epochs_done / wall if (wall > 0 and not aborted) else None,
        "sim_time": sim.now,
        "heap_compactions": sim.compactions,
        # Linux ru_maxrss is KiB; process high-water mark, so across
        # several points in one process it only grows — warn-only metric
        "peak_rss_bytes": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024,
    }
    if collect_digests and not aborted:
        result["digests"] = scenario_digests(sim, cluster, ckpt, rngs, tracer)
    return result


# ----------------------------------------------------------------------
# bit-exactness digests
# ----------------------------------------------------------------------
def _hash() -> "hashlib._Hash":
    return hashlib.sha256()


def scenario_digests(sim, cluster, ckpt, rngs: RngRegistry | None = None,
                     tracer: Tracer | None = None) -> dict[str, str]:
    """SHA-256 digests of everything the perf work must not change.

    Keys: ``checkpoints`` (committed payload bytes), ``parity`` (parity
    block bytes + checksums), ``flows`` (completion times from the trace,
    when tracing was on), ``cycles`` (per-epoch latency/overhead floats),
    ``clock`` (final sim time + event count), ``rng`` (bit-generator
    states of every named stream).  Floats are hashed via ``float.hex``
    so the digests are exact, not round-trip-formatted.
    """
    out: dict[str, str] = {}

    h = _hash()
    for node in cluster.nodes:
        for vm_id in sorted(node.checkpoint_store):
            img = node.checkpoint_store[vm_id]
            h.update(f"ckpt {vm_id} {img.epoch} {img.kind.value}|".encode())
            if isinstance(img.payload, np.ndarray):
                h.update(img.payload.tobytes())
    out["checkpoints"] = h.hexdigest()

    h = _hash()
    for node in cluster.nodes:
        for group_id in sorted(node.parity_store):
            blk = node.parity_store[group_id]
            h.update(
                f"parity {group_id} {blk.epoch} {blk.checksum} "
                f"{sorted(blk.member_checksums.items())}|".encode()
            )
            if blk.data is not None:
                h.update(blk.data.tobytes())
    out["parity"] = h.hexdigest()

    if tracer is not None and tracer.records:
        h = _hash()
        for r in tracer.select(prefix="net.flow."):
            h.update(f"{r.kind} {r.time.hex()} {sorted(r.data.items())}|".encode())
        out["flows"] = h.hexdigest()

    h = _hash()
    for res in ckpt.history:
        h.update(
            f"cycle {res.epoch} {res.committed} {res.latency.hex()} "
            f"{res.overhead.hex()} {float(res.network_bytes).hex()}|".encode()
        )
    out["cycles"] = h.hexdigest()

    h = _hash()
    h.update(f"{sim.now.hex()} {sim.event_count}".encode())
    out["clock"] = h.hexdigest()

    if rngs is not None:
        h = _hash()
        state = rngs.__getstate__()
        h.update(json.dumps(state, sort_keys=True, default=str).encode())
        out["rng"] = h.hexdigest()
    return out


# ----------------------------------------------------------------------
# event-heap microbenchmark
# ----------------------------------------------------------------------
def heap_cancel_bench(n_events: int, cancel_fraction: float = 0.9,
                      seed: int = 0) -> dict:
    """Cancel-heavy schedule against one :class:`Simulator` heap.

    Emulates the fuzzer/allocator pattern — schedule, cancel most,
    reschedule — and reports wall time, peak heap size, and compaction
    count.  With lazy-deletion compaction the peak heap stays within a
    constant factor of the *live* event count, keeping each operation
    O(log live); without it the heap grows with total cancellations.
    """
    rng = np.random.default_rng(seed)
    sim = Simulator()
    live: list = []
    peak_heap = 0
    executed = 0
    t0 = time.perf_counter()
    delays = rng.random(n_events)
    cancels = rng.random(n_events) < cancel_fraction
    for i in range(n_events):
        h = sim.schedule(float(delays[i]), _noop)
        if cancels[i]:
            h.cancel()
        else:
            live.append(h)
        if len(live) >= 64:
            # drain a batch so the live set stays bounded, like a real run
            sim.run(max_events=32)
            executed += 32
            live = [x for x in live if not x.fired]
        peak_heap = max(peak_heap, sim.heap_size)
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "n_events": n_events,
        "cancel_fraction": cancel_fraction,
        "wall_seconds": wall,
        "ops_per_sec": n_events / wall if wall > 0 else 0.0,
        "peak_heap": peak_heap,
        "compactions": sim.compactions,
        "executed": sim.event_count,
    }


def _noop() -> None:
    pass


# ----------------------------------------------------------------------
# BENCH_scale.json generation
def coding_throughput_bench(k: int = 8, m: int = 2,
                            member_bytes: int = 1 << 20,
                            rounds: int = 3) -> dict:
    """Encode/decode throughput of RS(k,m) next to the XOR parity path.

    Times best-of-``rounds`` passes over ``k`` members of
    ``member_bytes`` each: a full encode, and a decode of a
    double-member erasure for RS (single-member for XOR).  Absolute
    MB/s is host-dependent; the RS-vs-XOR *ratio* is the
    hardware-independent number the regression gate checks.

    The XOR kernels finish a quick-size pass in microseconds, where a
    single ``perf_counter`` delta is mostly noise — each measurement
    therefore repeats its stage until ~5 ms of wall clock accumulates
    and reports the per-pass time, so the ratio is stable enough to
    gate on.
    """
    from ..coding import ReedSolomonScheme, XorScheme

    rng = np.random.default_rng(0)
    members = [
        rng.integers(0, 256, member_bytes, dtype=np.uint8) for _ in range(k)
    ]
    rs = ReedSolomonScheme(m=m, k_hint=k)
    xor = XorScheme()
    data_bytes = float(k * member_bytes)
    min_wall = 5e-3

    def best(fn) -> float:
        # calibrate repetitions so one measurement spans >= min_wall
        t0 = time.perf_counter()
        fn()
        once = max(time.perf_counter() - t0, 1e-9)
        reps = max(1, int(math.ceil(min_wall / once)))
        elapsed = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            for _ in range(reps):
                fn()
            elapsed.append((time.perf_counter() - t0) / reps)
        return min(elapsed)

    rs_shards = rs.encode(members)       # warm the Cauchy matrix cache
    xor_shards = xor.encode(members)
    rs_erased = [None, None] + members[2:] if k > 2 else [None] * k
    xor_erased = [None] + members[1:]

    rs_encode = best(lambda: rs.encode(members))
    rs_decode = best(
        lambda: rs.reconstruct(rs_erased, rs_shards, nbytes=member_bytes)
    )
    xor_encode = best(lambda: xor.encode(members))
    xor_decode = best(
        lambda: xor.reconstruct(xor_erased, xor_shards, nbytes=member_bytes)
    )
    return {
        "k": k,
        "m": m,
        "member_bytes": member_bytes,
        "rs_encode_mbps": data_bytes / rs_encode / 1e6,
        "rs_decode_mbps": data_bytes / rs_decode / 1e6,
        "xor_encode_mbps": data_bytes / xor_encode / 1e6,
        "xor_decode_mbps": data_bytes / xor_decode / 1e6,
        "rs_vs_xor_encode_ratio": xor_encode / rs_encode,
        "rs_vs_xor_decode_ratio": xor_decode / rs_decode,
    }


# ----------------------------------------------------------------------
#: Node counts of the full sweep.  The calendar-queue engine extends the
#: paper-scale story past 1024 nodes to 4096 and 10240 (10k nodes /
#: 40960 VMs); --quick runs the 64-node anchor plus the 4096-node
#: calendar-queue point so PR gating covers the large-scale path too.
FULL_NODES = (64, 256, 1024, 4096, 10240)
QUICK_NODES = (64, 4096)
#: Above this size the reference allocator cannot finish an epoch in
#: reasonable time; it is measured events/sec over a capped window and
#: epoch throughput is derived (both allocators execute bit-identical
#: event streams, so events/epoch transfers exactly).
REF_FULL_MAX_NODES = 64
REF_WALL_CAP = 20.0


def generate_bench(quick: bool = False, epochs: int = 3,
                   ref_cap: float = REF_WALL_CAP,
                   log=lambda msg: None) -> dict:
    """Run the scale sweep and return the ``BENCH_scale.json`` payload.

    Every generation starts with a differential run at 64 nodes proving
    the optimized paths bit-identical to the reference allocator (and COW
    to plain copies) — a bench whose numbers describe a *wrong* simulator
    would be worse than no bench.
    """
    nodes = QUICK_NODES if quick else FULL_NODES
    log("differential check at 64 nodes (incremental vs reference, COW vs copy)")
    diff_cfg = ScaleConfig(n_nodes=64, epochs=2, trace=True)
    digests = {
        "incremental": run_scale_point(diff_cfg, collect_digests=True)["digests"],
        "reference": run_scale_point(
            ScaleConfig(n_nodes=64, epochs=2, allocator="reference", trace=True),
            collect_digests=True,
        )["digests"],
        "no_cow": run_scale_point(
            ScaleConfig(n_nodes=64, epochs=2, cow=False, trace=True),
            collect_digests=True,
        )["digests"],
    }
    if not (digests["incremental"] == digests["reference"] == digests["no_cow"]):
        raise RuntimeError(
            f"differential check failed — optimized paths are not "
            f"bit-identical: {digests}"
        )
    points = []
    for n in nodes:
        log(f"{n} nodes: incremental allocator, {epochs} epochs")
        inc = run_scale_point(ScaleConfig(n_nodes=n, epochs=epochs))
        cap = None if n <= REF_FULL_MAX_NODES else ref_cap
        log(f"{n} nodes: reference allocator"
            + (f" (capped at {cap:.0f}s wall)" if cap else ""))
        ref = run_scale_point(
            ScaleConfig(n_nodes=n, epochs=epochs, allocator="reference"),
            max_wall=cap,
        )
        events_per_epoch = inc["events"] / max(inc["epochs_completed"], 1)
        ref_epochs_per_sec = (
            ref["epochs_per_sec"]
            if ref["epochs_per_sec"]
            else ref["events_per_sec"] / events_per_epoch
        )
        speedup = (
            inc["events_per_sec"] / ref["events_per_sec"]
            if ref["events_per_sec"]
            else None
        )
        points.append({
            "n_nodes": n,
            "n_vms": inc["n_vms"],
            "epochs": inc["epochs_completed"],
            "events": inc["events"],
            "events_per_sec": inc["events_per_sec"],
            "epochs_per_sec": inc["epochs_per_sec"],
            "peak_rss_bytes": inc["peak_rss_bytes"],
            "heap_compactions": inc["heap_compactions"],
            "reference_events_per_sec": ref["events_per_sec"],
            "reference_epochs_per_sec": ref_epochs_per_sec,
            "reference_capped": bool(ref["aborted"]),
            "speedup_vs_reference": speedup,
        })
    log("event-heap cancel-heavy microbenchmark")
    heap = heap_cancel_bench(200_000 if not quick else 50_000)
    log("RS(8,2) vs XOR coding throughput")
    coding = coding_throughput_bench(
        member_bytes=(1 << 20) if not quick else (1 << 18)
    )
    return {
        "bench": "scale",
        "quick": quick,
        "config": {
            "vms_per_node": 4, "group_size": 4, "epochs": epochs, "seed": 0,
            "image_pages": 16, "page_size": 64, "dirty_pages_per_vm": 4,
        },
        "differential_digests_identical": True,
        "points": points,
        "heap_bench": heap,
        "coding_bench": coding,
    }


# ----------------------------------------------------------------------
# baseline comparison (the CI regression gate)
# ----------------------------------------------------------------------
def compare_to_baseline(current: dict, baseline: dict,
                        tolerance: float = 0.20) -> tuple[list[str], list[str]]:
    """Compare a fresh bench result against a recorded baseline.

    Returns ``(failures, warnings)``.  The *hard* gate is hardware
    independent: the incremental-vs-reference speedup ratio at each
    common node count must not regress by more than ``tolerance``.
    Absolute throughput and RSS vary with the host, so they only warn.
    """
    failures: list[str] = []
    warnings: list[str] = []
    base_points = {p["n_nodes"]: p for p in baseline.get("points", [])}
    for point in current.get("points", []):
        n = point["n_nodes"]
        base = base_points.get(n)
        if base is None:
            continue
        cur_ratio = point.get("speedup_vs_reference")
        base_ratio = base.get("speedup_vs_reference")
        if cur_ratio and base_ratio:
            if cur_ratio < base_ratio * (1.0 - tolerance):
                failures.append(
                    f"{n} nodes: incremental/reference speedup regressed "
                    f"{base_ratio:.1f}x -> {cur_ratio:.1f}x "
                    f"(tolerance {tolerance:.0%})"
                )
        cur_eps = point.get("events_per_sec")
        base_eps = base.get("events_per_sec")
        if cur_eps and base_eps and cur_eps < base_eps * (1.0 - tolerance):
            warnings.append(
                f"{n} nodes: absolute throughput {base_eps:,.0f} -> "
                f"{cur_eps:,.0f} events/s (host-dependent; warn only)"
            )
        cur_rss = point.get("peak_rss_bytes")
        base_rss = base.get("peak_rss_bytes")
        if cur_rss and base_rss and cur_rss > base_rss * (1.0 + tolerance):
            warnings.append(
                f"{n} nodes: peak RSS {base_rss / 1e6:.0f}MB -> "
                f"{cur_rss / 1e6:.0f}MB (noisy; warn only)"
            )
    cur_coding = current.get("coding_bench")
    base_coding = baseline.get("coding_bench")
    if cur_coding and base_coding:
        for stage in ("encode", "decode"):
            cur_ratio = cur_coding.get(f"rs_vs_xor_{stage}_ratio")
            base_ratio = base_coding.get(f"rs_vs_xor_{stage}_ratio")
            # ratio = RS throughput as a fraction of XOR throughput on
            # the same host; RS getting *slower* drops the ratio
            if cur_ratio and base_ratio and cur_ratio < base_ratio * (1.0 - tolerance):
                failures.append(
                    f"coding: RS(8,2) {stage} regressed vs XOR "
                    f"{base_ratio:.3f} -> {cur_ratio:.3f} of XOR throughput "
                    f"(tolerance {tolerance:.0%})"
                )
            cur_mbps = cur_coding.get(f"rs_{stage}_mbps")
            base_mbps = base_coding.get(f"rs_{stage}_mbps")
            if cur_mbps and base_mbps and cur_mbps < base_mbps * (1.0 - tolerance):
                warnings.append(
                    f"coding: RS(8,2) {stage} {base_mbps:,.0f} -> "
                    f"{cur_mbps:,.0f} MB/s (host-dependent; warn only)"
                )
    return failures, warnings
