"""Generator-based simulation processes (a small simpy-like layer).

A *process* is a Python generator driven by the event heap in
:mod:`repro.sim.engine`.  Processes ``yield`` awaitables:

* :class:`Timeout` — resume after a simulated delay;
* :class:`SimEvent` — resume when some other actor triggers it;
* another :class:`Process` — resume when it terminates (its return value
  becomes the value of the ``yield`` expression);
* :class:`AllOf` / :class:`AnyOf` — composite conditions.

Failure propagates: if a yielded event *fails* with an exception, the
exception is thrown into the waiting generator, where it can be caught
with ordinary ``try/except``.  Processes can also be interrupted from the
outside with :meth:`Process.interrupt`, which raises :class:`Interrupt`
inside them — the mechanism used to model machine crashes killing
in-flight checkpoints and migrations.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from .engine import NORMAL, URGENT, Simulator

__all__ = [
    "SimEvent",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "ProcessError",
]

_PENDING = object()


class ProcessError(RuntimeError):
    """Structural misuse of the process layer."""


class Interrupt(Exception):
    """Raised inside a process that another actor interrupted.

    Attributes
    ----------
    cause:
        Arbitrary payload describing why (e.g. a failure event record).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class SimEvent:
    """A one-shot event that processes can wait on.

    The event starts untriggered.  Exactly one of :meth:`succeed` or
    :meth:`fail` may be called; afterwards the event is *triggered* and
    all registered callbacks run at the current simulated time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.callbacks: list[Callable[["SimEvent"], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool | None:
        """True if succeeded, False if failed, None if untriggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise ProcessError("event value not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "SimEvent":
        self._trigger(True, value)
        return self

    def fail(self, exc: BaseException) -> "SimEvent":
        if not isinstance(exc, BaseException):
            raise ProcessError(f"fail() requires an exception, got {exc!r}")
        self._trigger(False, exc)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self.triggered:
            raise ProcessError(f"{self!r} already triggered")
        self._ok = ok
        self._value = value
        # Run callbacks at the current timestamp, before ordinary events,
        # so that chains of zero-delay causality resolve deterministically.
        self.sim.schedule(0.0, self._process_callbacks, priority=URGENT)

    def _process_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for cb in callbacks:
                cb(self)

    def subscribe(self, callback: Callable[["SimEvent"], None]) -> None:
        """Register ``callback(event)`` to run when the event triggers.

        If the event has already been processed the callback runs at the
        current time via a zero-delay event (never synchronously), keeping
        callback ordering independent of subscription timing.
        """
        if self.callbacks is None:
            self.sim.schedule(0.0, callback, self, priority=URGENT)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state}>"


class Timeout(SimEvent):
    """Event that succeeds automatically after ``delay`` seconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: Simulator, delay: float, value: Any = None):
        super().__init__(sim)
        self.delay = float(delay)
        sim.schedule(self.delay, self._expire, value, priority=NORMAL)

    def _expire(self, value: Any) -> None:
        if not self.triggered:
            self.succeed(value)


class Process(SimEvent):
    """A running generator coroutine.

    The process is itself a :class:`SimEvent`: it succeeds with the
    generator's return value when the generator finishes, or fails with
    the escaping exception.  Yield a Process to join it.
    """

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(self, sim: Simulator, generator: Generator, name: str | None = None):
        if not hasattr(generator, "send"):
            raise ProcessError(f"Process requires a generator, got {generator!r}")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: SimEvent | None = None
        # Start on the next zero-delay tick so construction order does not
        # leak into execution order at the same timestamp.
        sim.schedule(0.0, self._resume, None, priority=NORMAL)

    @property
    def alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A no-op on a finished process.  The interrupt is delivered through
        the event the process is waiting on, which is abandoned.
        """
        if not self.alive:
            return
        self.sim.schedule(0.0, self._deliver_interrupt, cause, priority=URGENT)

    def _deliver_interrupt(self, cause: Any) -> None:
        if not self.alive:
            return
        self._waiting_on = None  # abandon whatever we were waiting for
        self._step(lambda: self.generator.throw(Interrupt(cause)))

    def _resume(self, event: SimEvent | None) -> None:
        # Stale wakeup: the process was interrupted or moved on.
        if event is not None and event is not self._waiting_on:
            return
        self._waiting_on = None
        # _step inlined with send/throw dispatched directly: this runs
        # once per yield of every process, and allocating a closure per
        # resume is measurable at cluster scale.
        try:
            if event is None:
                target = self.generator.send(None)
            elif event.ok is False:
                target = self.generator.throw(event.value)
            else:
                target = self.generator.send(event.value)
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as a clean kill.
            if not self.triggered:
                self.succeed(None)
            return
        except BaseException as exc:
            if not self.triggered:
                self.fail(exc)
            return
        if not isinstance(target, SimEvent):
            self.generator.close()
            if not self.triggered:
                self.fail(ProcessError(f"process yielded non-event {target!r}"))
            return
        self._waiting_on = target
        target.subscribe(self._resume)

    def _step(self, advance: Callable[[], Any]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as a clean kill.
            if not self.triggered:
                self.succeed(None)
            return
        except BaseException as exc:
            if not self.triggered:
                self.fail(exc)
            return
        if not isinstance(target, SimEvent):
            self.generator.close()
            if not self.triggered:
                self.fail(ProcessError(f"process yielded non-event {target!r}"))
            return
        self._waiting_on = target
        target.subscribe(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name} {'alive' if self.alive else 'done'}>"


class _Condition(SimEvent):
    """Base for AllOf/AnyOf: waits on several events at once."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: Simulator, events: Iterable[SimEvent]):
        super().__init__(sim)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        self._remaining = len(self.events)
        for ev in self.events:
            ev.subscribe(self._on_child)

    def _on_child(self, event: SimEvent) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _results(self) -> dict[int, Any]:
        return {
            i: ev.value
            for i, ev in enumerate(self.events)
            if ev.triggered and ev.ok
        }


class AllOf(_Condition):
    """Succeeds when every child succeeds; fails fast on the first failure.

    Value is ``{index: child_value}`` for all children.
    """

    __slots__ = ()

    def _on_child(self, event: SimEvent) -> None:
        if self.triggered:
            return
        if event.ok is False:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._results())


class AnyOf(_Condition):
    """Succeeds when the first child succeeds (value: ``{index: value}``
    of all children triggered so far); fails only if *all* children fail.
    """

    __slots__ = ()

    def _on_child(self, event: SimEvent) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(self._results())
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.fail(event.value)
