"""Discrete-event simulation core.

The engine is a classic event-heap simulator: callbacks are scheduled at
absolute simulated times and executed in nondecreasing time order.  Ties
are broken first by an integer *priority* (lower runs first) and then by
insertion order, which makes runs fully deterministic for a fixed seed.

Two programming styles sit on top of this module:

* callback style — :meth:`Simulator.schedule` / :meth:`Simulator.at`
* process style — generator coroutines driven by :mod:`repro.sim.process`

The engine deliberately knows nothing about processes; it only fires
:class:`EventHandle` callbacks.  This keeps the hot loop small (a single
``heappop`` plus a function call) which matters for the Monte-Carlo
validation runs that execute millions of events.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "EventHandle",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "URGENT",
    "NORMAL",
    "LATE",
]

#: Priority for bookkeeping callbacks that must run before same-time work.
URGENT = 0
#: Default priority.
NORMAL = 1
#: Priority for observers that must see the post-state of a timestamp.
LATE = 2


class SimulationError(RuntimeError):
    """Raised for structural misuse of the simulator (e.g. time travel)."""


class StopSimulation(Exception):
    """Raised inside a callback to halt :meth:`Simulator.run` immediately."""


@dataclass(order=True)
class _HeapEntry:
    time: float
    priority: int
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """A scheduled callback that can be cancelled before it fires.

    Instances are returned by :meth:`Simulator.schedule`; user code should
    treat them as opaque except for :meth:`cancel` and :attr:`time`.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "fired", "_sim")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple,
                 sim: "Simulator | None" = None):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent; a no-op if the
        event already fired."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<EventHandle t={self.time:.6g} {name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start:
        Initial value of the simulated clock (seconds by convention
        throughout this package).

    Notes
    -----
    The clock only moves when :meth:`run` or :meth:`step` executes events;
    scheduling is side-effect free.  All times are floats in seconds.
    """

    #: Lazy-deletion compaction: cancelled entries stay buried in the heap
    #: until at least this many have accumulated *and* they make up half
    #: the heap; then one O(n) rebuild evicts them all.  Amortized, every
    #: heap operation stays O(log live) even under cancel-heavy schedules
    #: (the flow allocator cancels/reschedules completions constantly).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self, start: float = 0.0, probe: Any = None):
        self._now = float(start)
        self._heap: list[_HeapEntry] = []
        self._seq = itertools.count()
        self._running = False
        self._event_count = 0
        self._cancelled = 0
        self._compactions = 0
        self._probe = probe

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    @property
    def probe(self) -> Any:
        """The attached :class:`repro.telemetry.Probe`, or ``None``."""
        return self._probe

    def attach_probe(self, probe: Any) -> None:
        """Attach a telemetry probe; it observes every executed event.

        The hot loop guards on ``probe is not None and probe.enabled``,
        so an absent or disabled probe costs one attribute check per
        event (measured in ``benchmarks/bench_telemetry_overhead.py``).
        """
        self._probe = probe

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Number of callbacks executed so far (for tests/diagnostics)."""
        return self._event_count

    @property
    def heap_size(self) -> int:
        """Entries currently in the heap, including lazily-deleted ones."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled entries still buried in the heap."""
        return self._cancelled

    @property
    def compactions(self) -> int:
        """Heap rebuilds performed to evict cancelled entries."""
        return self._compactions

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= self.COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Entries are totally ordered by ``(time, priority, seq)``, so the
        re-heapified subset pops in exactly the order the original heap
        would have delivered it — compaction never changes execution
        order, only memory and pop cost.
        """
        self._heap = [e for e in self._heap if not e.handle.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be nonnegative and finite; zero-delay events run at
        the current timestamp after the currently executing callback
        returns, ordered by ``priority`` then FIFO.
        """
        if not (delay >= 0.0) or math.isinf(delay) or math.isnan(delay):
            raise SimulationError(f"invalid delay {delay!r}; must be finite and >= 0")
        return self.at(self._now + delay, fn, *args, priority=priority)

    def at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6g} before now={self._now:.6g}"
            )
        handle = EventHandle(time, fn, args, self)
        heapq.heappush(self._heap, _HeapEntry(time, priority, next(self._seq), handle))
        return handle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next pending event.

        Returns True if an event ran, False if the queue is empty.
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            handle = entry.handle
            if handle.cancelled:
                self._cancelled -= 1
                continue
            self._now = entry.time
            handle.fired = True
            self._event_count += 1
            handle.fn(*handle.args)
            if self._probe is not None and self._probe.enabled:
                self._probe.sim_event(len(self._heap))
            return True
        return False

    def run(self, until: float = math.inf, max_events: int | None = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        Returns the simulated time at which execution stopped.  When the
        queue drains the clock stays at the last executed event; when
        ``until`` is hit the clock is advanced to exactly ``until``.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                entry = self._heap[0]
                if entry.handle.cancelled:
                    heapq.heappop(self._heap)
                    self._cancelled -= 1
                    continue
                if entry.time > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(self._heap)
                self._now = entry.time
                entry.handle.fired = True
                self._event_count += 1
                try:
                    entry.handle.fn(*entry.handle.args)
                except StopSimulation:
                    break
                if self._probe is not None and self._probe.enabled:
                    self._probe.sim_event(len(self._heap))
                executed += 1
            else:
                # queue drained
                if not math.isinf(until) and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        while self._heap and self._heap[0].handle.cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1
        return self._heap[0].time if self._heap else math.inf

    def drain(self) -> int:
        """Cancel every pending event; returns how many were cancelled."""
        n = 0
        for entry in self._heap:
            handle = entry.handle
            if not handle.cancelled and not handle.fired:
                # set directly: the entries leave the heap wholesale below,
                # so routing through cancel()'s compaction logic is waste
                handle.cancelled = True
                n += 1
        self._heap.clear()
        self._cancelled = 0
        return n

    # ------------------------------------------------------------------
    # process-style convenience (implemented in repro.sim.process)
    # ------------------------------------------------------------------
    def process(self, generator) -> "Any":
        """Spawn a generator coroutine as a simulation process.

        Thin convenience wrapper; see :class:`repro.sim.process.Process`.
        """
        from .process import Process

        return Process(self, generator)

    def timeout(self, delay: float, value: Any = None) -> "Any":
        """Create a :class:`repro.sim.process.Timeout` event."""
        from .process import Timeout

        return Timeout(self, delay, value)

    def event(self) -> "Any":
        """Create an untriggered :class:`repro.sim.process.SimEvent`."""
        from .process import SimEvent

        return SimEvent(self)

    def run_processes(self, *generators: Iterable, until: float = math.inf) -> float:
        """Spawn each generator as a process, then run to completion."""
        for g in generators:
            self.process(g)
        return self.run(until=until)
