"""Discrete-event simulation core.

The engine executes callbacks scheduled at absolute simulated times in
nondecreasing time order.  Ties are broken first by an integer
*priority* (lower runs first) and then by insertion order, which makes
runs fully deterministic for a fixed seed.

Two programming styles sit on top of this module:

* callback style — :meth:`Simulator.schedule` / :meth:`Simulator.at`
* process style — generator coroutines driven by :mod:`repro.sim.process`

The engine deliberately knows nothing about processes; it only fires
:class:`EventHandle` callbacks.  This keeps the hot loop small, which
matters for the Monte-Carlo validation runs and the 10k-node scale
scenarios that execute millions of events.

Internal structure — calendar queue
-----------------------------------
The pending set is a two-tier *calendar queue* rather than one binary
heap (see ``docs/performance.md``):

* ``_cur`` — a small binary heap of plain ``(time, priority, seq,
  handle)`` tuples covering the *current region* of simulated time.
  ``heappop`` cost scales with the current region's population, not the
  total pending count.
* ``_future`` — a dict of unsorted buckets keyed by ``floor(time /
  width)``.  Scheduling into the future is an O(1) ``list.append``;
  a bucket is heapified exactly once, when the clock reaches it and the
  bucket merges into ``_cur``.

The queue starts in *pure-heap mode* (``_width is None``, everything in
``_cur``) and switches to bucketed mode only when the pending count
grows past a threshold — small simulations keep the classic heap's
constant factors.  Bucket width adapts deterministically to the observed
event-time distribution (the trigger depends only on queue state, which
is itself deterministic, so golden traces are unaffected).

Total order is preserved exactly: every entry carries the same
``(time, priority, seq)`` key as the historical single-heap engine, a
bucket's key is a true lower bound for every entry in it, and a bucket
is merged *before* any entry of ``_cur`` at or past that lower bound is
popped — so pops deliver the identical global sequence.

Cancellation stays lazy: cancelled entries are dropped when they
surface at the top of ``_cur``, or wholesale by an amortized O(n)
compaction sweep across both tiers.
"""

from __future__ import annotations

import itertools
import math
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Iterable

__all__ = [
    "EventHandle",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "URGENT",
    "NORMAL",
    "LATE",
]

#: Priority for bookkeeping callbacks that must run before same-time work.
URGENT = 0
#: Default priority.
NORMAL = 1
#: Priority for observers that must see the post-state of a timestamp.
LATE = 2

_INF = math.inf


class SimulationError(RuntimeError):
    """Raised for structural misuse of the simulator (e.g. time travel)."""


class StopSimulation(Exception):
    """Raised inside a callback to halt :meth:`Simulator.run` immediately."""


class EventHandle:
    """A scheduled callback that can be cancelled before it fires.

    Instances are returned by :meth:`Simulator.schedule`; user code should
    treat them as opaque except for :meth:`cancel` and :attr:`time`.
    """

    __slots__ = ("time", "fn", "args", "cancelled", "fired", "_sim")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple,
                 sim: "Simulator | None" = None):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent; a no-op if the
        event already fired."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not cancelled."""
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<EventHandle t={self.time:.6g} {name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start:
        Initial value of the simulated clock (seconds by convention
        throughout this package).

    Notes
    -----
    The clock only moves when :meth:`run` or :meth:`step` executes events;
    scheduling is side-effect free.  All times are floats in seconds.
    """

    #: Lazy-deletion compaction: cancelled entries stay buried in the queue
    #: until at least this many have accumulated *and* they make up half
    #: the pending set; then one O(n) sweep evicts them all.  Amortized,
    #: every queue operation stays O(log live) even under cancel-heavy
    #: schedules (the flow allocator cancels/reschedules completions
    #: constantly).
    COMPACT_MIN_CANCELLED = 64

    #: Pending-entry count at which the queue switches from pure-heap to
    #: bucketed (calendar) mode.  Below this the single heap's constant
    #: factors win; above it, O(1) future appends and region-local pops do.
    BUCKET_THRESHOLD = 4096

    #: Target entries per bucket when (re)sizing the calendar width.
    BUCKET_TARGET_FILL = 16

    #: A merged bucket larger than this forces a width halving sweep.
    BUCKET_SPLIT_SIZE = 8192

    def __init__(self, start: float = 0.0, probe: Any = None):
        self._now = float(start)
        # current-region heap of (time, priority, seq, handle) tuples
        self._cur: list[tuple[float, int, int, EventHandle]] = []
        # future buckets: floor(time/width) -> unsorted entry list
        self._future: dict[int, list[tuple[float, int, int, EventHandle]]] = {}
        self._keys: list[int] = []  # min-heap of _future keys
        self._width: float | None = None  # None => pure-heap mode
        self._cur_key = 0  # highest bucket key already merged into _cur
        self._size = 0  # total entries across both tiers (incl. cancelled)
        self._bucket_check = 0  # retry throttle for _enter_bucket_mode
        self._tiny_merges = 0  # consecutive merges of near-empty buckets
        self._seq = itertools.count()
        self._running = False
        self._event_count = 0
        self._cancelled = 0
        self._compactions = 0
        self._probe = probe

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    @property
    def probe(self) -> Any:
        """The attached :class:`repro.telemetry.Probe`, or ``None``."""
        return self._probe

    def attach_probe(self, probe: Any) -> None:
        """Attach a telemetry probe; it observes every executed event.

        The hot loop guards on ``probe is not None and probe.enabled``,
        so an absent or disabled probe costs one attribute check per
        event (measured in ``benchmarks/bench_telemetry_overhead.py``).
        """
        self._probe = probe

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def event_count(self) -> int:
        """Number of callbacks executed so far (for tests/diagnostics)."""
        return self._event_count

    @property
    def heap_size(self) -> int:
        """Entries currently pending, including lazily-deleted ones."""
        return self._size

    @property
    def cancelled_pending(self) -> int:
        """Cancelled entries still buried in the queue."""
        return self._cancelled

    @property
    def compactions(self) -> int:
        """Queue sweeps performed to evict cancelled entries."""
        return self._compactions

    def _note_cancel(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= self.COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= self._size
        ):
            self._compact()

    def _compact(self) -> None:
        """Sweep cancelled entries out of both tiers.

        Entries are totally ordered by ``(time, priority, seq)``, so the
        re-heapified subset pops in exactly the order the original queue
        would have delivered it — compaction never changes execution
        order, only memory and pop cost.  ``_cur`` is filtered *in
        place*: the run loop holds a direct reference to the list.
        """
        cur = self._cur
        cur[:] = [e for e in cur if not e[3].cancelled]
        heapify(cur)
        size = len(cur)
        future = self._future
        if future:
            for k in list(future):
                kept = [e for e in future[k] if not e[3].cancelled]
                if kept:
                    future[k] = kept
                    size += len(kept)
                else:
                    del future[k]
            self._keys[:] = future.keys()
            heapify(self._keys)
        self._size = size
        self._cancelled = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # calendar plumbing
    # ------------------------------------------------------------------
    def _bucket_key(self, time: float, width: float) -> int:
        """Bucket index whose lower bound ``k * width`` never exceeds
        ``time`` (float division can round either way; a key that
        rounded *up* would break the merge condition's lower-bound
        argument, so nudge it back down)."""
        k = int(time / width)
        if k * width > time:
            k -= 1
        return k

    def _push(self, time: float, priority: int, handle: EventHandle) -> None:
        entry = (time, priority, next(self._seq), handle)
        width = self._width
        if width is None:
            heappush(self._cur, entry)
            self._size += 1
            if self._size >= self.BUCKET_THRESHOLD and self._size >= self._bucket_check:
                self._enter_bucket_mode()
            return
        k = self._bucket_key(time, width)
        if k <= self._cur_key:
            heappush(self._cur, entry)
        else:
            bucket = self._future.get(k)
            if bucket is None:
                self._future[k] = [entry]
                heappush(self._keys, k)
            else:
                bucket.append(entry)
        self._size += 1

    def _enter_bucket_mode(self) -> None:
        """Switch from pure-heap to calendar mode, sizing the width from
        the currently pending time span."""
        cur = self._cur
        horizon = max(e[0] for e in cur)
        span = horizon - self._now
        if span <= 0.0 or not math.isfinite(span):
            # everything sits at one timestamp; buckets can't help right
            # now — back off so the O(n) scan stays amortized O(1)
            self._bucket_check = self._size * 2
            return
        width = span * self.BUCKET_TARGET_FILL / max(len(cur), 1)
        if not self._set_width(width):
            self._bucket_check = self._size * 2

    def _set_width(self, width: float) -> bool:
        """(Re)bucket every pending entry under ``width``.

        O(n); triggered only by deterministic queue-shape conditions, so
        it occurs at identical points in identical runs.  Returns False
        — leaving every structure untouched — when ``width`` is unusable
        or so fine that a pending time would overflow its integer bucket
        key (``int(time/width)`` → inf for subnormal widths).
        """
        if width <= 0.0 or not math.isfinite(width):
            return False
        cur = self._cur
        try:
            cur_key = self._bucket_key(self._now, width)
            future: dict[int, list[tuple[float, int, int, EventHandle]]] = {}
            stay = []
            for e in itertools.chain(cur, *self._future.values()):
                k = self._bucket_key(e[0], width)
                if k <= cur_key:
                    stay.append(e)
                else:
                    b = future.get(k)
                    if b is None:
                        future[k] = [e]
                    else:
                        b.append(e)
        except OverflowError:
            return False
        self._width = width
        self._cur_key = cur_key
        cur[:] = stay
        heapify(cur)
        self._future = future
        self._keys = list(future.keys())
        heapify(self._keys)
        self._tiny_merges = 0
        return True

    def _merge_next_bucket(self) -> None:
        """Fold the earliest future bucket into the current-region heap,
        adapting the width when bucket sizes drift degenerate."""
        k = heappop(self._keys)
        bucket = self._future.pop(k)
        self._cur_key = k
        cur = self._cur
        cur.extend(bucket)
        heapify(cur)
        n = len(bucket)
        if n > self.BUCKET_SPLIT_SIZE:
            # one overstuffed bucket — width too coarse for the local
            # event density.  Size the new width from this bucket's own
            # time span; a zero-span spike (thousands of events at one
            # timestamp) cannot be split by any width, so leave the
            # width alone instead of shrinking toward float underflow.
            tmin = tmax = bucket[0][0]
            for e in bucket:
                t = e[0]
                if t < tmin:
                    tmin = t
                elif t > tmax:
                    tmax = t
            span = tmax - tmin
            if span > 0.0:
                self._set_width(span * self.BUCKET_TARGET_FILL / n)
            else:
                self._tiny_merges = 0
        elif n <= 1 and len(self._keys) > 64:
            self._tiny_merges += 1
            if self._tiny_merges >= 256:
                # long run of near-empty buckets — width too fine
                self._set_width(self._width * 8.0)
        else:
            self._tiny_merges = 0

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be nonnegative and finite; zero-delay events run at
        the current timestamp after the currently executing callback
        returns, ordered by ``priority`` then FIFO.
        """
        if not (delay >= 0.0) or delay == _INF:
            raise SimulationError(f"invalid delay {delay!r}; must be finite and >= 0")
        time = self._now + delay
        handle = EventHandle(time, fn, args, self)
        if delay == 0.0:
            # fast path: the current timestamp is always current-region
            self._cur_push(time, priority, handle)
        else:
            self._push(time, priority, handle)
        return handle

    def _cur_push(self, time: float, priority: int, handle: EventHandle) -> None:
        heappush(self._cur, (time, priority, next(self._seq), handle))
        self._size += 1
        if (
            self._width is None
            and self._size >= self.BUCKET_THRESHOLD
            and self._size >= self._bucket_check
        ):
            self._enter_bucket_mode()

    def at(
        self,
        time: float,
        fn: Callable[..., Any],
        *args: Any,
        priority: int = NORMAL,
    ) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if not (time >= self._now) or time == _INF:
            # the compound guard also rejects NaN (all comparisons false),
            # which would otherwise corrupt the queue's total order
            if math.isnan(time) or time == _INF:
                raise SimulationError(
                    f"cannot schedule at non-finite time {time!r}"
                )
            raise SimulationError(
                f"cannot schedule at t={time:.6g} before now={self._now:.6g}"
            )
        handle = EventHandle(time, fn, args, self)
        self._push(time, priority, handle)
        return handle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next pending event.

        Returns True if an event ran, False if the queue is empty.
        """
        cur = self._cur
        keys = self._keys
        while True:
            if keys and (not cur or cur[0][0] >= keys[0] * self._width):
                self._merge_next_bucket()
                keys = self._keys  # _set_width may have rebuilt the key heap
                continue
            if not cur:
                return False
            entry = heappop(cur)
            self._size -= 1
            handle = entry[3]
            if handle.cancelled:
                self._cancelled -= 1
                continue
            self._now = entry[0]
            handle.fired = True
            self._event_count += 1
            handle.fn(*handle.args)
            if self._probe is not None and self._probe.enabled:
                self._probe.sim_event(self._size)
            return True

    def run(self, until: float = math.inf, max_events: int | None = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` callbacks have executed.

        Returns the simulated time at which execution stopped.  When the
        queue drains the clock stays at the last executed event; when
        ``until`` is hit the clock is advanced to exactly ``until``.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        # _cur is filtered strictly in place (compaction, drain), so one
        # binding stays valid across callbacks; _keys can be rebuilt by a
        # width change, so it is re-fetched after every merge.
        cur = self._cur
        try:
            while True:
                keys = self._keys
                if keys and (not cur or cur[0][0] >= keys[0] * self._width):
                    self._merge_next_bucket()
                    continue
                if not cur:
                    # queue drained
                    if until != _INF and until > self._now:
                        self._now = until
                    break
                entry = cur[0]
                handle = entry[3]
                if handle.cancelled:
                    heappop(cur)
                    self._size -= 1
                    self._cancelled -= 1
                    continue
                time = entry[0]
                if time > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                heappop(cur)
                self._size -= 1
                self._now = time
                handle.fired = True
                self._event_count += 1
                try:
                    handle.fn(*handle.args)
                except StopSimulation:
                    break
                if self._probe is not None and self._probe.enabled:
                    self._probe.sim_event(self._size)
                executed += 1
        finally:
            self._running = False
        return self._now

    def peek(self) -> float:
        """Time of the next pending event, or ``inf`` if none."""
        cur = self._cur
        while True:
            keys = self._keys
            if keys and (not cur or cur[0][0] >= keys[0] * self._width):
                self._merge_next_bucket()
                continue
            if not cur:
                return math.inf
            if cur[0][3].cancelled:
                heappop(cur)
                self._size -= 1
                self._cancelled -= 1
                continue
            return cur[0][0]

    def drain(self) -> int:
        """Cancel every pending event; returns how many were cancelled."""
        n = 0
        for entry in itertools.chain(self._cur, *self._future.values()):
            handle = entry[3]
            if not handle.cancelled and not handle.fired:
                # set directly: the entries leave the queue wholesale below,
                # so routing through cancel()'s compaction logic is waste
                handle.cancelled = True
                n += 1
        self._cur.clear()
        self._future.clear()
        self._keys.clear()
        self._size = 0
        self._cancelled = 0
        return n

    # ------------------------------------------------------------------
    # process-style convenience (implemented in repro.sim.process)
    # ------------------------------------------------------------------
    def process(self, generator) -> "Any":
        """Spawn a generator coroutine as a simulation process.

        Thin convenience wrapper; see :class:`repro.sim.process.Process`.
        """
        from .process import Process

        return Process(self, generator)

    def timeout(self, delay: float, value: Any = None) -> "Any":
        """Create a :class:`repro.sim.process.Timeout` event."""
        from .process import Timeout

        return Timeout(self, delay, value)

    def event(self) -> "Any":
        """Create an untriggered :class:`repro.sim.process.SimEvent`."""
        from .process import SimEvent

        return SimEvent(self)

    def run_processes(self, *generators: Iterable, until: float = math.inf) -> float:
        """Spawn each generator as a process, then run to completion."""
        for g in generators:
            self.process(g)
        return self.run(until=until)
