"""Event tracing for simulations.

A :class:`Tracer` collects timestamped, typed records during a run.
Components emit records with :meth:`Tracer.emit`; analysis code filters
them afterwards.  Tracing is optional everywhere — components accept a
``tracer=None`` and the null tracer makes ``emit`` a no-op — so the hot
Monte-Carlo loops pay nothing when tracing is off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = ["TraceRecord", "Tracer", "NULL_TRACER"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped occurrence.

    ``kind`` is a dotted event type (``"checkpoint.commit"``,
    ``"failure.node"``, ``"migration.downtime"`` …); ``data`` carries the
    event payload as a plain dict.
    """

    time: float
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]


class Tracer:
    """Accumulates :class:`TraceRecord` objects with cheap filtering."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: list[TraceRecord] = []

    def emit(self, time: float, kind: str, **data: Any) -> None:
        if self.enabled:
            self.records.append(TraceRecord(time, kind, data))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def select(
        self,
        kind: str | None = None,
        prefix: str | None = None,
        where: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """Filter records by exact kind, kind prefix, and/or predicate."""
        out = self.records
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        if prefix is not None:
            out = [r for r in out if r.kind.startswith(prefix)]
        if where is not None:
            out = [r for r in out if where(r)]
        return list(out) if out is self.records else out

    def count(self, kind: str) -> int:
        return sum(1 for r in self.records if r.kind == kind)

    def times(self, kind: str) -> list[float]:
        return [r.time for r in self.records if r.kind == kind]

    def clear(self) -> None:
        self.records.clear()


class _NullTracer(Tracer):
    """Tracer that drops everything; shared singleton.

    Because the singleton is the default argument of dozens of
    constructors, it must be *truly* inert: it exposes no mutable state
    (``records`` is an empty tuple, not a shared list), ``enabled``
    cannot be flipped on, and ``clear``/``select`` touch nothing — so no
    caller can accidentally leak records into, or wipe state through,
    the shared instance.
    """

    def __init__(self) -> None:
        # deliberately no super().__init__ — a null tracer holds no state
        pass

    @property
    def enabled(self) -> bool:  # type: ignore[override]
        return False

    @enabled.setter
    def enabled(self, value: bool) -> None:
        pass  # permanently disabled

    @property
    def records(self) -> tuple:  # type: ignore[override]
        return ()

    def emit(self, time: float, kind: str, **data: Any) -> None:  # noqa: D102
        pass

    def select(
        self,
        kind: str | None = None,
        prefix: str | None = None,
        where: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        return []

    def clear(self) -> None:
        pass


#: Shared do-nothing tracer; safe default argument.
NULL_TRACER = _NullTracer()
