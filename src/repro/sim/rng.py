"""Seeded random-number streams.

Every stochastic component in the package draws from its own named
stream derived from a single master seed, so that (a) runs are exactly
reproducible, and (b) changing how many draws one component makes does
not perturb any other component — the property needed for paired
variance-reduced comparisons (same failure trace under diskful and
diskless policies).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream name.

    Uses BLAKE2 over the pair, so streams are statistically independent
    and insensitive to registration order.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(int(master_seed).to_bytes(8, "little", signed=False))
    h.update(name.encode("utf-8"))
    return int.from_bytes(h.digest(), "little")


class RngRegistry:
    """Factory of named, independently seeded numpy Generators.

    >>> rngs = RngRegistry(42)
    >>> failures = rngs.stream("failures")
    >>> workload = rngs.stream("workload/vm0")

    Asking twice for the same name returns the *same* Generator object
    (so components can share a stream deliberately); use ``fresh=True``
    to get a re-seeded copy positioned at the start of the stream.
    """

    def __init__(self, master_seed: int = 0):
        if master_seed < 0:
            raise ValueError(f"master seed must be >= 0, got {master_seed}")
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def seed_for(self, name: str) -> int:
        return derive_seed(self.master_seed, name)

    def stream(self, name: str, fresh: bool = False) -> np.random.Generator:
        if fresh or name not in self._streams:
            gen = np.random.default_rng(self.seed_for(name))
            if fresh:
                return gen
            self._streams[name] = gen
        return self._streams[name]

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose master seed is derived from ``name`` —
        used to give each Monte-Carlo replication its own universe."""
        return RngRegistry(self.seed_for(name))

    def spawn_many(self, prefix: str, n: int) -> list["RngRegistry"]:
        """``n`` independent child registries ``prefix/0 .. prefix/n-1``.

        The i-th child equals ``spawn(f"{prefix}/{i}")`` exactly, so a
        campaign worker handed only ``(master_seed, prefix, i)`` can
        rebuild its universe without seeing its siblings — the property
        that makes parallel fan-out bit-identical to a serial loop.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return [self.spawn(f"{prefix}/{i}") for i in range(n)]

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    # Registries cross process boundaries in campaign workers.  State is
    # just the master seed plus each stream's bit-generator state, all of
    # which numpy pickles natively — the explicit methods pin that
    # contract so a future cache attribute cannot silently break it.
    def __getstate__(self) -> dict:
        return {
            "master_seed": self.master_seed,
            "streams": {
                name: gen.bit_generator.state
                for name, gen in self._streams.items()
            },
        }

    def __setstate__(self, state: dict) -> None:
        self.master_seed = state["master_seed"]
        self._streams = {}
        for name, bg_state in state["streams"].items():
            gen = np.random.default_rng(self.seed_for(name))
            gen.bit_generator.state = bg_state
            self._streams[name] = gen
