"""Discrete-event simulation substrate.

Public surface:

* :class:`Simulator` — event heap and clock;
* :class:`Process`, :class:`SimEvent`, :class:`Timeout`, :class:`Interrupt`,
  :class:`AllOf`, :class:`AnyOf` — generator-coroutine process layer;
* :class:`Resource`, :class:`Store`, :class:`Container` — shared resources;
* :class:`RngRegistry` — named deterministic random streams;
* :class:`Tracer` — optional event tracing.
"""

from .engine import (
    LATE,
    NORMAL,
    URGENT,
    EventHandle,
    SimulationError,
    Simulator,
    StopSimulation,
)
from .process import (
    AllOf,
    AnyOf,
    Interrupt,
    Process,
    ProcessError,
    SimEvent,
    Timeout,
)
from .resources import Container, Resource, ResourceError, Store
from .rng import RngRegistry, derive_seed
from .trace import NULL_TRACER, TraceRecord, Tracer

__all__ = [
    "Simulator",
    "SimulationError",
    "StopSimulation",
    "EventHandle",
    "URGENT",
    "NORMAL",
    "LATE",
    "SimEvent",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "ProcessError",
    "Resource",
    "Store",
    "Container",
    "ResourceError",
    "RngRegistry",
    "derive_seed",
    "Tracer",
    "TraceRecord",
    "NULL_TRACER",
]
