"""Shared resources for simulation processes.

Three primitives cover everything the cluster substrate needs:

* :class:`Resource` — counting semaphore with FIFO queueing (CPU slots,
  NAS service channels, per-node checkpoint agents);
* :class:`Store` — unbounded FIFO of Python objects with blocking get
  (message queues between hypervisors);
* :class:`Container` — continuous-quantity tank with blocking put/get
  (memory reservations for in-flight checkpoint buffers).

All waits are ordinary :class:`~repro.sim.process.SimEvent` objects, so a
process waiting on a resource can still be interrupted (the request is
then abandoned and must be cancelled with the returned handle).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from .engine import Simulator
from .process import SimEvent

__all__ = ["Resource", "Store", "Container", "ResourceError"]


class ResourceError(RuntimeError):
    """Misuse of a resource (e.g. releasing more than was acquired)."""


class _Request(SimEvent):
    """A pending acquisition; yielded by processes, cancellable."""

    __slots__ = ("amount", "abandoned")

    def __init__(self, sim: Simulator, amount: float = 1):
        super().__init__(sim)
        self.amount = amount
        self.abandoned = False

    def abandon(self) -> None:
        """Withdraw an un-granted request (after an Interrupt)."""
        self.abandoned = True


class Resource:
    """Counting semaphore with FIFO grant order.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ... hold the resource ...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ResourceError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self.in_use = 0
        self._queue: Deque[_Request] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        return sum(1 for r in self._queue if not r.abandoned)

    def request(self) -> _Request:
        """Return an event that succeeds once a unit is granted."""
        req = _Request(self.sim)
        if self.in_use < self.capacity and not self._queue:
            self.in_use += 1
            req.succeed(self)
        else:
            self._queue.append(req)
        return req

    def release(self) -> None:
        """Return one unit and grant it to the next FIFO waiter."""
        if self.in_use <= 0:
            raise ResourceError("release() without matching grant")
        while self._queue:
            nxt = self._queue.popleft()
            if nxt.abandoned:
                continue
            nxt.succeed(self)  # unit transfers directly to the waiter
            return
        self.in_use -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Resource {self.in_use}/{self.capacity} q={self.queue_length}>"


class Store:
    """Unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks; ``get`` returns an event whose value is the
    item.  Items are matched to getters FIFO-to-FIFO.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[_Request] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        while self._getters:
            getter = self._getters.popleft()
            if getter.abandoned:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> _Request:
        req = _Request(self.sim)
        if self._items:
            req.succeed(self._items.popleft())
        else:
            self._getters.append(req)
        return req

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items (for tests and diagnostics)."""
        return list(self._items)


class Container:
    """Continuous-quantity tank (e.g. bytes of spare RAM).

    ``get(amount)`` blocks until the level covers the request; ``put``
    raises if the level would exceed capacity.  Grants are FIFO: a large
    blocked request blocks smaller later ones (no starvation).
    """

    def __init__(self, sim: Simulator, capacity: float, init: float = 0.0):
        if capacity <= 0:
            raise ResourceError(f"capacity must be > 0, got {capacity}")
        if not (0.0 <= init <= capacity):
            raise ResourceError(f"init {init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = float(capacity)
        self.level = float(init)
        self._getters: Deque[_Request] = deque()

    def put(self, amount: float) -> None:
        if amount < 0:
            raise ResourceError(f"cannot put negative amount {amount}")
        if self.level + amount > self.capacity + 1e-9:
            raise ResourceError(
                f"put({amount}) overflows capacity {self.capacity} (level {self.level})"
            )
        self.level = min(self.capacity, self.level + amount)
        self._drain()

    def get(self, amount: float) -> _Request:
        if amount < 0:
            raise ResourceError(f"cannot get negative amount {amount}")
        if amount > self.capacity:
            raise ResourceError(f"get({amount}) exceeds capacity {self.capacity}")
        req = _Request(self.sim, amount)
        self._getters.append(req)
        self._drain()
        return req

    def _drain(self) -> None:
        while self._getters:
            head = self._getters[0]
            if head.abandoned:
                self._getters.popleft()
                continue
            if head.amount <= self.level + 1e-12:
                self._getters.popleft()
                self.level -= head.amount
                head.succeed(head.amount)
            else:
                break
