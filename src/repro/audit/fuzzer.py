"""Seeded fault-schedule fuzzer for the diskless checkpoint protocol.

Random failure *times* (Poisson injectors) rarely land inside the narrow
windows where checkpoint protocols actually break — the barrier pause,
the exchange, the middle of a rebuild.  This fuzzer aims failures at
exactly those instants: a :class:`FaultSpec` names a protocol *phase*
(``mid_pause``, ``mid_exchange``, ``post_commit``, ``mid_recovery``,
``idle``) and a fractional position inside it, and the trial driver
converts that into a concrete ``kill_node`` at the adversarial moment.

One trial = one seeded schedule driven through ``n_cycles`` checkpoint
epochs of a :class:`~repro.core.dvdc.DisklessCheckpointer` with an
:class:`~repro.audit.auditor.Auditor` attached; every invariant is
swept after each cycle and recovery, strict sweeps plus a bit-exact
comparison against independently snapshotted images run at quiescent
points.  Double failures the single-parity code provably cannot absorb
end the trial as *unrecoverable* — that is the protocol saying no, not a
bug.  Everything else (invariant violation, unexpected exception) fails
the trial, and :func:`shrink` then removes faults one at a time to find
a minimal failing reproducer.

Everything is deterministic in ``seed``: schedules are drawn from
``default_rng([seed, ...])`` streams and the simulator is discrete-
event, so a ``(config, schedule, seed)`` triple replays exactly.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace

import numpy as np

from ..checkpoint.strategies import ForkedCapture, FullCapture, IncrementalCapture
from ..cluster.cluster import ClusterSpec, VirtualCluster
from ..core.architectures import checkpoint_node, dvdc, first_shot
from ..failures.injector import FailureEvent
from ..sim import NULL_TRACER, Simulator, Tracer
from ..telemetry import probe_of
from .auditor import Auditor
from .invariants import FATAL, Violation

__all__ = [
    "PHASES",
    "LAYOUTS",
    "FaultSpec",
    "FuzzConfig",
    "TrialResult",
    "FuzzResult",
    "draw_schedule",
    "canonical_schedule",
    "run_trial",
    "shrink",
    "fuzz",
]

#: protocol phases a fault can target, in within-cycle firing order
PHASES = ("idle", "mid_pause", "mid_exchange", "post_commit", "mid_recovery")

#: fault kinds: ``kill`` is the classic fail-stop crash; ``site`` is the
#: correlated whole-site outage (geo mode only); the rest are transient
#: (see :mod:`repro.resilience.faults`) and only drawn when
#: :attr:`FuzzConfig.transient` is set
KINDS = ("kill", "site", "flap", "degrade", "drop", "corrupt")

#: paper figures the fuzzer knows how to build
LAYOUTS = ("fig1", "fig3", "fig4")

#: RuntimeError messages that mean "legitimately unrecoverable under
#: single parity" rather than "bug" — raised by the recovery path when a
#: double failure (including crash + silent corruption) exceeds the
#: code's tolerance
_UNRECOVERABLE_MARKERS = (
    "beyond single-parity",
    "exceeds XOR parity",
    "unrecoverable with single parity",
    "no alive node",
    "no eligible parity node",
    "has no committed checkpoint",
    "silently corrupt",
    # generalized schemes raise "... \u2014 beyond <scheme> tolerance <t>" only
    # when the erasure pattern provably exceeds the active code's tolerance;
    # an RS(k,2) double fault that fails recovery does NOT match and is a bug
    "\u2014 beyond",
)


@dataclass(frozen=True)
class FaultSpec:
    """One adversarially-timed fault.

    ``frac`` positions the fault inside the targeted phase window
    (0 = its start, 1 = its end); ``cycle`` indexes the checkpoint
    cycle the fault belongs to.  ``kind`` defaults to the classic node
    kill; transient kinds carry a ``duration`` (flap/degrade outage
    length, seconds) and ``severity`` (degrade bandwidth factor).
    """

    cycle: int
    phase: str
    node: int
    frac: float
    kind: str = "kill"
    duration: float = 0.5
    severity: float = 0.5

    def __post_init__(self):
        if self.phase not in PHASES:
            raise ValueError(f"unknown phase {self.phase!r}")
        if not (0.0 <= self.frac <= 1.0):
            raise ValueError(f"frac must be in [0, 1], got {self.frac}")
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {KINDS}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        if not (0 < self.severity <= 1):
            raise ValueError(f"severity must be in (0, 1], got {self.severity}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"cycle {self.cycle}: {self.kind} node {self.node} "
            f"at {self.phase}+{self.frac:.2f}"
        )


@dataclass(frozen=True)
class FuzzConfig:
    """Cluster + workload shape for one fuzzing campaign."""

    layout: str = "fig4"
    n_nodes: int = 4
    vms_per_node: int = 3
    n_cycles: int = 4
    max_faults: int = 2
    interval: float = 120.0
    vm_memory: float = 256e6
    image_pages: int = 32
    page_size: int = 128
    heterogeneous: bool = False
    strategy: str = "forked"
    #: widen the fault vocabulary to transient kinds (flap/degrade/drop/
    #: corrupt) and run the checkpointer with a retry policy + scrubber
    transient: bool = False
    #: erasure-coding scheme spec (see :func:`repro.coding.parse_scheme`);
    #: the recoverable-vs-unrecoverable classifier follows its tolerance
    scheme: str = "xor"
    #: >= 2 turns geo mode on: the cluster becomes that many sites on a
    #: :class:`~repro.geo.topology.GeoTopology`, schedules gain ``site``
    #: faults, and the fate-vs-bug classifier goes tolerance-aware
    geo_sites: int = 0
    #: placement policy under geo mode: ``geo-spread`` (site-orthogonal
    #: groups — a site kill is survivable in-tolerance) or ``remus-async``
    #: (local parity + remote copies — a site kill beyond tolerance must
    #: salvage everything its copies covered, or it is a bug)
    geo_policy: str = "geo-spread"

    def __post_init__(self):
        if self.layout not in LAYOUTS:
            raise ValueError(f"layout must be one of {LAYOUTS}, got {self.layout!r}")
        if self.n_nodes < 3:
            raise ValueError("fuzzing needs >= 3 nodes")
        if self.geo_sites:
            if self.geo_sites < 2:
                raise ValueError("geo mode needs >= 2 sites")
            if self.layout != "fig4":
                raise ValueError("geo mode requires the fig4 (DVDC) layout")
            if self.geo_policy not in ("geo-spread", "remus-async"):
                raise ValueError(
                    f"geo_policy must be geo-spread or remus-async, "
                    f"got {self.geo_policy!r}"
                )
        from ..coding import parse_scheme

        parse_scheme(self.scheme)  # fail fast on unknown specs


@dataclass
class TrialResult:
    """Outcome of one schedule driven to completion (or to a wall)."""

    seed: int
    config: FuzzConfig
    schedule: tuple[FaultSpec, ...]
    commits: int = 0
    aborts: int = 0
    recoveries: int = 0
    faults_fired: list[FailureEvent] = field(default_factory=list)
    transients_fired: list[FaultSpec] = field(default_factory=list)
    unrecoverable: str | None = None
    violations: list[Violation] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """True when the trial exposed a bug (never for clean runs or
        legitimately unrecoverable double failures)."""
        return bool(self.violations)


@dataclass
class FuzzResult:
    """Aggregate over a batch of seeds for one config."""

    config: FuzzConfig
    trials: list[TrialResult] = field(default_factory=list)
    elapsed: float = 0.0
    budget_exhausted: bool = False

    @property
    def failures(self) -> list[TrialResult]:
        return [t for t in self.trials if t.failed]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def n_violations(self) -> int:
        return sum(len(t.violations) for t in self.trials)


# ----------------------------------------------------------------------
# schedule generation
# ----------------------------------------------------------------------
def draw_schedule(rng: np.random.Generator, config: FuzzConfig) -> tuple[FaultSpec, ...]:
    """Draw an adversarial fault schedule.

    Phase choice is uniform (every window gets pressure), node choice is
    uniform, position is kept off the exact window edges.  Up to
    ``max_faults`` faults may share a cycle — that is how back-to-back
    failures (the double-fault torture case) arise.

    With ``config.transient`` the kind is drawn too: kills keep a 40%
    share so the classic crash pressure stays, the rest splits evenly
    across the transient vocabulary.  ``corrupt`` is excluded for the
    incremental strategy — folding an increment into rotten parity is
    (correctly) refused by the protocol, which would stall every later
    epoch of the trial rather than exercise anything new.

    The kind/duration/severity draws happen *after* every base
    (cycle, phase, node, frac) draw, so for any seed the transient
    schedule aims at exactly the instants the classic one does — common
    random numbers across the two vocabularies.
    """
    n = int(rng.integers(0, config.max_faults + 1))
    bases = []
    for _ in range(n):
        cycle = int(rng.integers(0, config.n_cycles))
        phase = PHASES[int(rng.integers(0, len(PHASES)))]
        node = int(rng.integers(0, config.n_nodes))
        frac = float(rng.uniform(0.1, 0.9))
        bases.append((cycle, phase, node, frac))
    faults = []
    for cycle, phase, node, frac in bases:
        kind, duration, severity = "kill", 0.5, 0.5
        if config.transient:
            vocab = ["kill", "flap", "degrade", "drop"]
            if config.strategy != "incremental":
                vocab.append("corrupt")
            weights = [0.4] + [0.6 / (len(vocab) - 1)] * (len(vocab) - 1)
            kind = str(rng.choice(vocab, p=weights))
            duration = float(rng.uniform(0.05, 1.5))
            severity = float(rng.uniform(0.1, 0.9))
        if config.geo_sites:
            # geo draw comes LAST, gated on the mode, so classic (non-geo)
            # streams for the same seed are byte-identical — common random
            # numbers again.  ~30% of kills escalate to whole-site outages.
            if kind == "kill" and float(rng.uniform()) < 0.3:
                kind = "site"
        faults.append(FaultSpec(
            cycle=cycle, phase=phase, node=node, frac=frac,
            kind=kind, duration=duration, severity=severity,
        ))
    faults.sort(key=lambda f: (f.cycle, PHASES.index(f.phase), f.frac, f.node))
    return tuple(faults)


def canonical_schedule(config: FuzzConfig) -> tuple[FaultSpec, ...]:
    """The textbook single-failure case: one mid-interval kill of node 0
    partway through the run — the scenario of the paper's Section VI."""
    return (FaultSpec(cycle=config.n_cycles // 2, phase="idle", node=0, frac=0.5),)


# ----------------------------------------------------------------------
# trial driver
# ----------------------------------------------------------------------
_STRATEGIES = {
    "forked": ForkedCapture,
    "full": FullCapture,
    "incremental": IncrementalCapture,
}


def _build(config: FuzzConfig, seed: int, tracer: Tracer):
    """Deterministically build
    (sim, cluster, checkpointer, auditor, geo, domains, replicator) —
    the last three ``None`` outside geo mode."""
    from ..coding import parse_scheme

    sim = Simulator()
    geo = domains = None
    if config.geo_sites:
        from ..geo import GeoSpec, geo_cluster_spec

        geo = GeoSpec(n_nodes=config.n_nodes, n_sites=config.geo_sites)
        if config.geo_policy == "geo-spread":
            domains = geo.domain_map("site")
        spec = geo_cluster_spec(geo)
    else:
        spec = ClusterSpec(n_nodes=config.n_nodes)
    cluster = VirtualCluster(sim, spec, tracer=tracer)
    content = np.random.default_rng([seed, 0xC0])
    shape = np.random.default_rng([seed, 0x51])
    coding = parse_scheme(config.scheme)
    # fig1 reserves one VM-free node per parity shard; fig3 reserves the
    # dedicated checkpoint node (extra shards rotate over compute nodes);
    # fig4 computes everywhere
    reserve = coding.n_shards if config.layout == "fig1" else 1
    compute_nodes = (
        range(config.n_nodes - reserve) if config.layout in ("fig1", "fig3")
        else range(config.n_nodes)
    )
    per_node = 1 if config.layout == "fig1" else config.vms_per_node
    for node in compute_nodes:
        for _ in range(per_node):
            factor = (
                int(shape.choice([1, 2, 4])) if config.heterogeneous else 1
            )
            vm = cluster.create_vm(
                node,
                config.vm_memory * factor,
                image_pages=config.image_pages * factor,
                page_size=config.page_size,
            )
            vm.image.write(
                0,
                content.integers(
                    0, 256, vm.image.nbytes // 2, dtype=np.uint8
                ),
            )
            vm.image.clear_dirty()
    strategy = _STRATEGIES[config.strategy]()
    retry = retry_rng = None
    if config.transient:
        from ..resilience.retry import RetryPolicy

        # a budget that comfortably outlasts the longest drawn outage
        # (1.5 s): exhaustion stays possible but rare, and when it does
        # happen the protocol must degrade cleanly — that is the test
        retry = RetryPolicy(max_attempts=8, base_delay=0.05, max_delay=2.0)
        retry_rng = np.random.default_rng([seed, 0xBE])
    if config.layout == "fig1":
        ck = first_shot(
            cluster, strategy=strategy, tracer=tracer,
            retry=retry, retry_rng=retry_rng, scheme=coding,
        )
    elif config.layout == "fig3":
        ck = checkpoint_node(
            cluster, config.n_nodes - 1, strategy=strategy, tracer=tracer,
            retry=retry, retry_rng=retry_rng, scheme=coding,
        )
    else:
        ck = dvdc(
            cluster, strategy=strategy, tracer=tracer,
            retry=retry, retry_rng=retry_rng, scheme=coding,
            domains=domains,
        )
    replicator = None
    if geo is not None and config.geo_policy == "remus-async":
        from ..geo import RemusAsyncReplicator

        replicator = RemusAsyncReplicator(cluster, geo, ck, tracer=tracer)
    auditor = Auditor(
        cluster, ck.layout, tracer=tracer, scheme=coding, domains=domains,
    )
    ck.attach_auditor(auditor)
    return sim, cluster, ck, auditor, geo, domains, replicator


def run_trial(
    config: FuzzConfig,
    schedule: tuple[FaultSpec, ...],
    seed: int,
    tracer: Tracer = NULL_TRACER,
) -> TrialResult:
    """Drive one schedule through ``n_cycles`` epochs and audit throughout."""
    sim, cluster, ck, auditor, geo, domains, replicator = _build(
        config, seed, tracer
    )
    dirt = np.random.default_rng([seed, 0xD1])
    chaos = np.random.default_rng([seed, 0xCA])  # corruption targeting
    trial = TrialResult(seed=seed, config=config, schedule=schedule)
    expected: dict[int, np.ndarray] = {}
    pending: list[int] = []  # killed nodes awaiting recovery
    scrub = None
    if config.transient:
        from ..resilience.scrubber import Scrubber

        scrub = Scrubber(cluster, ck.layout, tracer=tracer, scheme=ck.scheme)

    def kill(node_id: int) -> None:
        if not cluster.node(node_id).alive:
            return  # already down: the fault is a no-op
        cluster.kill_node(node_id)
        trial.faults_fired.append(
            FailureEvent(time=sim.now, node_id=node_id,
                         ordinal=len(trial.faults_fired))
        )
        pending.append(node_id)

    def fire(f: FaultSpec) -> None:
        if f.kind == "kill":
            kill(f.node)
            return
        if f.kind == "site":
            # correlated outage: every node in the anchor's site goes down
            for nid in geo.nodes_in_site(geo.site_of(f.node)):
                kill(nid)
            return
        trial.transients_fired.append(f)
        topo = cluster.topology
        if f.kind == "flap":
            topo.set_node_links_up(f.node, False)
            sim.schedule(max(f.duration, 1e-9), topo.set_node_links_up, f.node, True)
        elif f.kind == "degrade":
            topo.scale_node_bandwidth(f.node, f.severity)
            sim.schedule(max(f.duration, 1e-9), topo.scale_node_bandwidth, f.node, 1.0)
        elif f.kind == "drop":
            topo.drop_node_flows(f.node)
        elif f.kind == "corrupt":
            from ..resilience.faults import corrupt_node_state

            corrupt_node_state(cluster, f.node, chaos)

    def snapshot_committed() -> None:
        expected.clear()
        for vm in cluster.all_vms:
            if vm.node_id is None:
                continue
            img = cluster.hypervisor(vm.node_id).committed(vm.vm_id)
            if img is not None and img.payload is not None:
                expected[vm.vm_id] = img.payload_flat().copy()

    class Unrecoverable(Exception):
        pass

    def recover_classified(node: int):
        try:
            yield from ck.recover(node)
        except RuntimeError as exc:
            if any(m in str(exc) for m in _UNRECOVERABLE_MARKERS):
                raise Unrecoverable(str(exc)) from exc
            raise
        trial.recoveries += 1

    def salvage_and_converge(cycle: int):
        """Remote-copy salvage of a beyond-tolerance loss (remus-async).

        Tolerance-aware classification: state inside the replication lag
        window (no copy yet) or whose standby also died is *fate*; a VM
        the replicator held a live copy for MUST come back — losing it
        anyway is a bug.  Afterwards repair everything, converge epochs
        with one fresh cycle, and re-baseline the bit-exact snapshots
        (salvaged state legitimately rolled back past them).
        """
        report = yield from replicator.salvage_cluster()
        trial.recoveries += 1
        for vm_id in report.unsalvageable:
            copy = replicator.copies.get(vm_id)
            if copy is not None and cluster.node(copy.node_id).alive:
                trial.violations.append(Violation(
                    "remus-coverage", FATAL, f"vm {vm_id}",
                    "lost despite a live remote copy at epoch "
                    f"{copy.epoch} on node {copy.node_id} — remus-async "
                    "should have covered it after its lag window",
                ))
        for n in cluster.nodes:
            if not n.alive:
                cluster.repair_node(n.node_id)
                if n.node_id in pending:
                    pending.remove(n.node_id)
        still_lost = [
            vm.vm_id for vm in cluster.all_vms if vm.node_id is None
        ]
        if still_lost:
            raise Unrecoverable(
                f"site loss — beyond {ck.scheme.name} tolerance and "
                f"outside the replication window for vms {still_lost}"
            )
        # standby assignment ignores group structure, so salvage can pile
        # several elements of one group onto one node — re-home members
        # (node-granular respread), then let heal() re-place parity
        from ..geo import respread_groups

        yield from respread_groups(
            ck, cluster, geo.domain_map("node"), tracer
        )
        yield from ck.heal()
        expected.clear()
        result = yield from ck.run_cycle()
        if result.committed:
            trial.commits += 1
            snapshot_committed()
            yield from replicator.replicate_epoch()

    def drain(cycle: int, rec_est: float):
        """Recover + repair + heal until no failed node or VM remains.

        A transient outage can starve a rebuild (the retry budget runs
        dry, recovery returns with the VM still down — a classified,
        recoverable outcome).  The stall loop waits the outage out and
        re-runs recovery, bounded so a genuine bug still surfaces as a
        homeless-VM audit violation instead of a hang.
        """
        stalls = 0
        while True:
            if pending:
                node = pending.pop(0)
                for f in schedule:
                    if f.cycle == cycle and f.phase == "mid_recovery":
                        sim.schedule(max(f.frac * rec_est, 1e-9), fire, f)
                if scrub is not None:
                    scrub.scrub_once()
                try:
                    yield from recover_classified(node)
                except Unrecoverable:
                    if replicator is None:
                        raise
                    yield from salvage_and_converge(cycle)
                    continue
                cluster.repair_node(node)
                yield from ck.heal()
                continue
            recovered = all(vm.node_id is not None for vm in cluster.all_vms)
            if recovered or not config.transient or stalls >= 3:
                if (
                    recovered
                    and domains is not None
                    and all(n.alive for n in cluster.nodes)
                ):
                    # geo-spread: recovery during a site outage legally
                    # lands members co-sited; re-home them before the
                    # quiescent strict audit judges the layout per domain
                    from ..geo import respread_groups

                    yield from respread_groups(ck, cluster, domains, tracer)
                    yield from ck.heal()
                return
            stalls += 1
            yield sim.timeout(max(rec_est, 2.0))  # let the outage clear
            if pending:
                continue
            if scrub is not None:
                scrub.scrub_once()
            yield from recover_classified(-1)
            yield from ck.heal()

    def quiescent_audit(where: str) -> None:
        if pending or any(not n.alive for n in cluster.nodes):
            return
        if scrub is not None:
            report = scrub.scrub_once()
            if report.unrepairable:
                # two corruptions in one group (or corruption of the last
                # redundant copy): legitimately beyond single parity
                raise Unrecoverable(
                    f"silent corruption \u2014 beyond {ck.scheme.name} "
                    "tolerance: " + ", ".join(report.unrepairable)
                )
        auditor.run(ck.committed_epoch, context=f"quiescent:{where}", strict=True)
        for vm_id, want in expected.items():
            vm = cluster.vm(vm_id)
            if vm.node_id is None:
                continue
            img = cluster.hypervisor(vm.node_id).committed(vm_id)
            got = img.payload_flat() if img is not None and img.payload is not None else None
            if got is None or not np.array_equal(got, want):
                trial.violations.append(Violation(
                    "bit-exact", FATAL, f"vm {vm_id}",
                    f"committed image at {where} differs from the snapshot "
                    "taken at its commit point",
                ))

    def driver():
        # priming epoch: every trial starts from a committed checkpoint
        prime = yield from ck.run_cycle()
        assert prime.committed
        trial.commits += 1
        snapshot_committed()
        if replicator is not None:
            yield from replicator.replicate_epoch()
        pause_est = max(prime.overhead, 1e-3)
        cycle_est = max(prime.latency, pause_est * 2)
        rec_est = max(cycle_est - pause_est, 1e-3)

        for cycle in range(config.n_cycles):
            # -- dwell: the application runs and dirties memory ----------
            for f in schedule:
                if f.cycle == cycle and f.phase == "idle":
                    sim.schedule(f.frac * config.interval, fire, f)
            for vm in cluster.all_vms:
                if vm.node_id is not None and vm.image is not None:
                    vm.image.touch_pages(
                        dirt.integers(0, vm.image.n_pages, 4), dirt
                    )
            yield sim.timeout(config.interval)
            yield from drain(cycle, rec_est)

            # -- checkpoint, with faults aimed inside its windows --------
            for f in schedule:
                if f.cycle == cycle and f.phase == "mid_pause":
                    sim.schedule(max(f.frac * pause_est, 1e-9), fire, f)
                elif f.cycle == cycle and f.phase == "mid_exchange":
                    sim.schedule(
                        pause_est + f.frac * (cycle_est - pause_est), fire, f
                    )
            result = yield from ck.run_cycle()
            if result.committed:
                trial.commits += 1
                snapshot_committed()
            else:
                trial.aborts += 1
            for f in schedule:
                if f.cycle == cycle and f.phase == "post_commit":
                    fire(f)
            yield from drain(cycle, rec_est)
            quiescent_audit(f"cycle {cycle}")
            if replicator is not None and result.committed:
                # asynchronous ship-out: anything that dies before the
                # NEXT replication pass is inside the lag window (fate)
                yield from replicator.replicate_epoch()

        yield from drain(config.n_cycles, rec_est)
        quiescent_audit("end")

    proc = sim.process(driver())
    sim.run()
    if proc.ok is False:
        exc = proc.value
        if isinstance(exc, Unrecoverable):
            trial.unrecoverable = str(exc)
        else:
            trial.violations.append(Violation(
                "no-crash", FATAL, type(exc).__name__,
                f"trial crashed at t={sim.now:.3f}: {exc}",
            ))
    trial.violations.extend(auditor.violations)
    return trial


# ----------------------------------------------------------------------
# shrinking + campaign loop
# ----------------------------------------------------------------------
def shrink(
    config: FuzzConfig,
    schedule: tuple[FaultSpec, ...],
    seed: int,
    tracer: Tracer = NULL_TRACER,
) -> tuple[FaultSpec, ...]:
    """Greedy delta-debugging: repeatedly drop any single fault whose
    removal keeps the trial failing, until the schedule is 1-minimal."""
    current = tuple(schedule)
    progress = True
    while progress and len(current) > 1:
        progress = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1:]
            if run_trial(config, candidate, seed, tracer).failed:
                current = candidate
                progress = True
                break
    return current


def fuzz(
    config: FuzzConfig,
    seeds: int = 25,
    budget: float | None = None,
    shrink_failing: bool = True,
    tracer: Tracer = NULL_TRACER,
    base_seed: int = 0,
) -> FuzzResult:
    """Run ``seeds`` independent schedules against one config.

    ``budget`` (wall-clock seconds) stops the campaign early — partial
    results are still returned with ``budget_exhausted`` set.  Failing
    schedules are shrunk to minimal reproducers (stored back on the
    trial's ``schedule``; the original stays in ``violations`` context).
    """
    probe = probe_of(tracer)
    out = FuzzResult(config=config)
    t0 = _time.monotonic()
    for i in range(seeds):
        if budget is not None and _time.monotonic() - t0 > budget:
            out.budget_exhausted = True
            break
        seed = base_seed + i
        schedule = draw_schedule(
            np.random.default_rng([seed, 0x5C]), config
        )
        trial = run_trial(config, schedule, seed, tracer)
        probe.count(
            "repro_fuzz_trials_total",
            help="Fault-schedule fuzz trials run",
            layout=config.layout,
            outcome="failed" if trial.failed else (
                "unrecoverable" if trial.unrecoverable else "clean"
            ),
        )
        if trial.failed and shrink_failing and len(trial.schedule) > 1:
            trial.schedule = shrink(config, trial.schedule, seed, tracer)
        out.trials.append(trial)
    out.elapsed = _time.monotonic() - t0
    return out
