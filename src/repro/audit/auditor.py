"""The live audit hook: invariant sweeps wired into the protocol.

:class:`Auditor` plugs into :class:`~repro.core.dvdc.DisklessCheckpointer`
(``auditor=`` kwarg or ``attach_auditor``) and runs a full invariant
sweep after every cycle and every recovery, plus a lightweight sanity
check on capture outcomes at barrier resume.  The core stays import-free
of this module — the hooks are duck-typed (``post_cycle`` /
``post_recovery`` / ``post_capture``), so audit support costs nothing
when no auditor is attached.

Findings surface three ways: accumulated on :attr:`Auditor.reports`,
emitted as trace records, and counted in telemetry
(``repro_audits_total`` / ``repro_audit_violations_total``).
"""

from __future__ import annotations

from ..cluster.vm import VMState
from ..sim import NULL_TRACER, Tracer
from ..telemetry import probe_of
from .invariants import AuditReport, Violation, audit_cluster

__all__ = ["Auditor", "AuditError"]


class AuditError(RuntimeError):
    """Raised by :meth:`Auditor.assert_ok` when fatal violations exist."""


class Auditor:
    """Runs invariant sweeps against one checkpointer's cluster + layout.

    ``strict`` controls whether degraded observations (dead nodes,
    failed VMs, co-located placements awaiting ``heal()``) are promoted
    to fatal.  The in-protocol hooks always audit non-strict — mid-
    recovery states are legitimately degraded; run :meth:`run` with
    ``strict=True`` yourself at quiescent points.
    """

    def __init__(
        self,
        cluster,
        layout,
        tracer: Tracer = NULL_TRACER,
        strict: bool = False,
        scheme=None,
        domains=None,
    ):
        from ..coding import get_scheme

        self.cluster = cluster
        self.layout = layout
        self.tracer = tracer
        self.probe = probe_of(tracer)
        self.strict = strict
        self.scheme = get_scheme(scheme)
        #: optional FailureDomainMap: layout validity judged per domain
        self.domains = domains
        self.reports: list[AuditReport] = []
        self.n_audits = 0
        self.stale_captures_seen = 0

    # ------------------------------------------------------------------
    # core sweep
    # ------------------------------------------------------------------
    def run(
        self,
        committed_epoch: int,
        context: str = "manual",
        strict: bool | None = None,
    ) -> AuditReport:
        """One full invariant sweep; records, traces, and counts it."""
        report = audit_cluster(
            self.cluster,
            self.layout,
            committed_epoch,
            strict=self.strict if strict is None else strict,
            context=context,
            scheme=self.scheme,
            domains=self.domains,
        )
        self.reports.append(report)
        self.n_audits += 1
        self.probe.count(
            "repro_audits_total", help="Invariant sweeps run", context=context,
        )
        for v in report.violations:
            if v.severity == "fatal":
                self.probe.count(
                    "repro_audit_violations_total",
                    help="Fatal invariant violations found",
                    invariant=v.invariant,
                )
        if report.fatal:
            self.tracer.emit(
                self.cluster.sim.now, "audit.violations", context=context,
                fatal=[str(v) for v in report.fatal],
            )
        return report

    @property
    def violations(self) -> list[Violation]:
        """All fatal findings across every sweep so far."""
        return [v for r in self.reports for v in r.fatal]

    def assert_ok(self) -> None:
        """Raise :class:`AuditError` if any sweep found a fatal violation."""
        bad = self.violations
        if bad:
            raise AuditError(
                f"{len(bad)} invariant violation(s): "
                + "; ".join(str(v) for v in bad[:5])
            )

    # ------------------------------------------------------------------
    # protocol hooks (duck-typed from core/dvdc and checkpoint/coordinator)
    # ------------------------------------------------------------------
    def post_cycle(self, ck, result) -> AuditReport:
        context = "post_cycle" if result.committed else "post_abort"
        return self.run(ck.committed_epoch, context=context, strict=False)

    def post_recovery(self, ck, report) -> AuditReport:
        return self.run(ck.committed_epoch, context="post_recovery", strict=False)

    def post_capture(self, epoch: int, outcomes, dropped) -> None:
        """Barrier-resume sanity: no outcome may belong to a failed VM."""
        self.stale_captures_seen += len(dropped)
        for o in outcomes:
            if self.cluster.vm(o.image.vm_id).state == VMState.FAILED:
                v = Violation(
                    "capture-liveness", "fatal", f"vm {o.image.vm_id}",
                    f"capture outcome for epoch {epoch} returned for a "
                    "VM that failed inside the barrier window",
                )
                report = AuditReport(
                    checked_at=self.cluster.sim.now,
                    committed_epoch=epoch,
                    context="post_capture",
                )
                report.violations.append(v)
                self.reports.append(report)
                self.probe.count(
                    "repro_audit_violations_total",
                    help="Fatal invariant violations found",
                    invariant=v.invariant,
                )
