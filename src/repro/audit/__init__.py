"""Recoverability auditing: invariant checkers + fault-schedule fuzzer.

The verification layer for the paper's central claim — that after any
single node failure DVDC rebuilds lost VMs bit-exactly from survivors +
parity.  :mod:`repro.audit.invariants` states the claim as checkable
cluster-state invariants, :mod:`repro.audit.auditor` wires them into the
live protocol (``DisklessCheckpointer(..., auditor=...)``), and
:mod:`repro.audit.fuzzer` hammers the protocol with adversarially-timed
failure schedules and shrinks anything that breaks.

CLI: ``repro audit`` (one-shot sweep) and ``repro audit --fuzz``.
Catalog and usage: ``docs/invariants.md``.
"""

from .auditor import AuditError, Auditor
from .fuzzer import (
    LAYOUTS,
    PHASES,
    FaultSpec,
    FuzzConfig,
    FuzzResult,
    TrialResult,
    canonical_schedule,
    draw_schedule,
    fuzz,
    run_trial,
    shrink,
)
from .invariants import (
    AuditReport,
    Violation,
    audit_cluster,
    check_epoch_coherence,
    check_layout_validity,
    check_parity_coherence,
    check_single_failure_recoverable,
    check_two_phase_atomicity,
)

__all__ = [
    "Violation",
    "AuditReport",
    "audit_cluster",
    "check_parity_coherence",
    "check_layout_validity",
    "check_epoch_coherence",
    "check_two_phase_atomicity",
    "check_single_failure_recoverable",
    "Auditor",
    "AuditError",
    "PHASES",
    "LAYOUTS",
    "FaultSpec",
    "FuzzConfig",
    "TrialResult",
    "FuzzResult",
    "draw_schedule",
    "canonical_schedule",
    "run_trial",
    "shrink",
    "fuzz",
]
