"""Executable safety invariants for the diskless checkpoint protocol.

The paper's correctness claim (Sections IV & VI) is that after any
single node failure the lost VMs are rebuilt *bit-exactly* from
survivors + parity.  That claim decomposes into a handful of state
invariants that must hold whenever the cluster is quiescent (no failure
mid-flight, recovery drained):

* **parity coherence** — every group's stored parity block equals the
  padded XOR of its members' committed checkpoint payloads;
* **layout validity** — members of a group live on pairwise distinct
  nodes and the parity node hosts none of them (Fig. 2's orthogonality
  rules; may be *degraded* while a crashed node awaits repair);
* **epoch coherence** — every committed artifact (member image, parity
  block, VM epoch marker) agrees on ``committed_epoch``;
* **two-phase atomicity** — no artifact from an uncommitted epoch is
  observable (staged state never leaks past an abort);
* **single-failure recoverability** — the constructive form of parity
  coherence: actually reconstruct each member from the others + parity
  and compare bit-for-bit.

Checkers never raise on bad state; they return :class:`Violation`
records so the fuzzer can aggregate and shrink.  States that are
legitimately unauditable (a dead node, a failed VM awaiting rebuild)
yield *degraded* findings, which only count as violations under
``strict`` auditing — the mode used at quiescent points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import TYPE_CHECKING

import numpy as np

from ..cluster.xorsum import reconstruct_missing_padded, xor_reduce_padded
from ..coding import XorScheme, get_scheme, shard_key
from ..core.placement import validate_layout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.cluster import VirtualCluster
    from ..core.groups import GroupLayout

__all__ = [
    "Violation",
    "AuditReport",
    "audit_cluster",
    "check_parity_coherence",
    "check_layout_validity",
    "check_epoch_coherence",
    "check_two_phase_atomicity",
    "check_single_failure_recoverable",
]

FATAL = "fatal"
DEGRADED = "degraded"


@dataclass(frozen=True)
class Violation:
    """One invariant breach (or degraded observation).

    ``severity`` is ``"fatal"`` for genuine protocol bugs (wrong bytes,
    mixed epochs) and ``"degraded"`` for states that are expected while
    a failure is being absorbed (dead parity node, VM awaiting rebuild).
    """

    invariant: str
    severity: str
    subject: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.invariant}: {self.subject} — {self.detail}"


@dataclass
class AuditReport:
    """Outcome of one full invariant sweep."""

    checked_at: float
    committed_epoch: int
    context: str = ""
    strict: bool = False
    violations: list[Violation] = field(default_factory=list)

    @property
    def fatal(self) -> list[Violation]:
        return [v for v in self.violations if v.severity == FATAL]

    @property
    def degraded(self) -> list[Violation]:
        return [v for v in self.violations if v.severity == DEGRADED]

    @property
    def ok(self) -> bool:
        """No fatal findings (degraded states are tolerated unless the
        sweep ran strict, in which case they were already promoted)."""
        return not self.fatal


def _severity(strict: bool) -> str:
    return FATAL if strict else DEGRADED


def check_parity_coherence(
    cluster: "VirtualCluster",
    layout: "GroupLayout",
    strict: bool = False,
    scheme=None,
) -> list[Violation]:
    """Stored shards == the active scheme's encode of members' committed
    payloads (padded XOR for the default :class:`~repro.coding.XorScheme`)."""
    coding = get_scheme(scheme)
    if not isinstance(coding, XorScheme):
        return _check_shard_coherence(cluster, layout, strict, coding)
    out: list[Violation] = []
    for g in layout.groups:
        subject = f"group {g.group_id}"
        pnode = cluster.node(g.parity_node)
        if not pnode.alive:
            out.append(Violation(
                "parity-coherence", _severity(strict), subject,
                f"parity node {g.parity_node} is down",
            ))
            continue
        block = pnode.parity_store.get(g.group_id)
        if block is None:
            out.append(Violation(
                "parity-coherence", _severity(strict), subject,
                f"no parity block on node {g.parity_node}",
            ))
            continue
        payloads = []
        auditable = True
        for v in g.member_vm_ids:
            vm = cluster.vm(v)
            if vm.node_id is None:
                out.append(Violation(
                    "parity-coherence", _severity(strict), subject,
                    f"member vm {v} failed — group unauditable",
                ))
                auditable = False
                break
            img = cluster.hypervisor(vm.node_id).committed(v)
            if img is None:
                out.append(Violation(
                    "parity-coherence", _severity(strict), subject,
                    f"member vm {v} has no committed checkpoint",
                ))
                auditable = False
                break
            payloads.append(img.payload_flat() if img.payload is not None else None)
        if not auditable:
            continue
        if block.data is None or any(p is None for p in payloads):
            continue  # timing-only run: nothing functional to compare
        expect = xor_reduce_padded(payloads)
        got = block.data
        if got.shape[0] < expect.shape[0]:
            out.append(Violation(
                "parity-coherence", FATAL, subject,
                f"parity length {got.shape[0]} shorter than member XOR "
                f"length {expect.shape[0]}",
            ))
            continue
        if got.shape[0] > expect.shape[0] and got[expect.shape[0]:].any():
            out.append(Violation(
                "parity-coherence", FATAL, subject,
                "nonzero parity bytes beyond the members' padded extent",
            ))
            continue
        if not np.array_equal(got[: expect.shape[0]], expect):
            nbad = int(np.count_nonzero(got[: expect.shape[0]] != expect))
            out.append(Violation(
                "parity-coherence", FATAL, subject,
                f"parity differs from member XOR in {nbad} byte(s)",
            ))
    return out


#: cap on exhaustive erasure-pattern enumeration per group (deterministic
#: prefix is kept when a very wide group x tolerance combination overflows)
_MAX_ERASURE_PATTERNS = 1024


def _check_shard_coherence(cluster, layout, strict, coding) -> list[Violation]:
    """Multi-shard form of parity coherence: every stored shard equals the
    corresponding row of ``coding.encode`` over the committed payloads."""
    out: list[Violation] = []
    for g in layout.groups:
        subject = f"group {g.group_id}"
        blocks: list[tuple[int, object]] = []
        for j, pnode_id in enumerate(g.parity_nodes):
            pnode = cluster.node(pnode_id)
            if not pnode.alive:
                out.append(Violation(
                    "parity-coherence", _severity(strict), subject,
                    f"shard {j} home node {pnode_id} is down",
                ))
                continue
            block = pnode.parity_store.get(shard_key(g.group_id, j))
            if block is None:
                out.append(Violation(
                    "parity-coherence", _severity(strict), subject,
                    f"no shard {j} block on node {pnode_id}",
                ))
                continue
            blocks.append((j, block))
        payloads = []
        auditable = True
        for v in g.member_vm_ids:
            vm = cluster.vm(v)
            if vm.node_id is None:
                out.append(Violation(
                    "parity-coherence", _severity(strict), subject,
                    f"member vm {v} failed — group unauditable",
                ))
                auditable = False
                break
            img = cluster.hypervisor(vm.node_id).committed(v)
            if img is None:
                out.append(Violation(
                    "parity-coherence", _severity(strict), subject,
                    f"member vm {v} has no committed checkpoint",
                ))
                auditable = False
                break
            payloads.append(img.payload_flat() if img.payload is not None else None)
        if not auditable or not blocks:
            continue
        if any(p is None for p in payloads) or any(b.data is None for _, b in blocks):
            continue  # timing-only run: nothing functional to compare
        expect = coding.encode(payloads)
        for j, block in blocks:
            want, got = expect[j], block.data
            if got.shape[0] != want.shape[0]:
                out.append(Violation(
                    "parity-coherence", FATAL, subject,
                    f"shard {j} length {got.shape[0]} != encoded "
                    f"length {want.shape[0]}",
                ))
                continue
            if not np.array_equal(got, want):
                nbad = int(np.count_nonzero(got != want))
                out.append(Violation(
                    "parity-coherence", FATAL, subject,
                    f"shard {j} differs from {coding.name} encode "
                    f"in {nbad} byte(s)",
                ))
    return out


def _check_erasures_recoverable(cluster, layout, strict, coding) -> list[Violation]:
    """Constructive recoverability for every erasure pattern of size
    <= ``coding.tolerance`` touching at least one member: decode and
    compare the rebuilt members bit-exactly against committed payloads."""
    out: list[Violation] = []
    t, m = coding.tolerance, coding.n_shards
    for g in layout.groups:
        k = len(g.member_vm_ids)
        shards: list[np.ndarray] = []
        available = True
        for j, pnode_id in enumerate(g.parity_nodes):
            pnode = cluster.node(pnode_id)
            block = (
                pnode.parity_store.get(shard_key(g.group_id, j))
                if pnode.alive else None
            )
            if block is None or block.data is None:
                available = False
                break
            shards.append(block.data)
        if not available:
            continue  # availability handled by parity-coherence
        images = {}
        for v in g.member_vm_ids:
            vm = cluster.vm(v)
            img = (
                cluster.hypervisor(vm.node_id).committed(v)
                if vm.node_id is not None
                else None
            )
            if img is None or img.payload is None:
                images = None
                break
            images[v] = img.payload_flat()
        if images is None:
            continue  # unauditable; parity-coherence already flagged it
        member_list = [images[v] for v in g.member_vm_ids]
        length = max(p.shape[0] for p in member_list)
        patterns = [
            combo
            for r in range(1, t + 1)
            for combo in combinations(range(k + m), r)
            if any(slot < k for slot in combo)
        ]
        patterns = patterns[:_MAX_ERASURE_PATTERNS]
        for combo in patterns:
            mem = [None if i in combo else member_list[i] for i in range(k)]
            shd = [None if (k + j) in combo else shards[j] for j in range(m)]
            try:
                rebuilt = coding.reconstruct(mem, shd, nbytes=length)
            except Exception as exc:
                out.append(Violation(
                    "erasure-recoverable", FATAL, f"group {g.group_id}",
                    f"pattern {combo} within tolerance {t} failed to "
                    f"decode: {exc}",
                ))
                continue
            for i in combo:
                if i >= k:
                    continue
                want = member_list[i]
                got = rebuilt[i][: want.shape[0]]
                if not np.array_equal(got, want):
                    nbad = int(np.count_nonzero(got != want))
                    out.append(Violation(
                        "erasure-recoverable", FATAL,
                        f"vm {g.member_vm_ids[i]}",
                        f"pattern {combo}: rebuilt image differs from "
                        f"committed in {nbad} byte(s)",
                    ))
    return out


def check_layout_validity(
    cluster: "VirtualCluster",
    layout: "GroupLayout",
    strict: bool = False,
    scheme=None,
    domains=None,
) -> list[Violation]:
    """Orthogonality + parity independence (Fig. 2).

    Degraded placements are legal transients: with a node down, the only
    restore target may be the group's parity node
    (:func:`repro.core.recovery.choose_restore_node` falls back on
    purpose).  ``heal()`` repairs them once nodes return — so these are
    fatal only under ``strict`` (quiescent cluster, everything repaired).

    With ``domains`` set, orthogonality is judged per failure domain
    (geo-spread: no two elements of a group in one rack/site), not per
    node.
    """
    report = validate_layout(
        layout, cluster, tolerance=get_scheme(scheme).tolerance, domains=domains
    )
    return [
        Violation("layout-validity", _severity(strict), "layout", err)
        for err in report.errors
    ]


def check_epoch_coherence(
    cluster: "VirtualCluster",
    layout: "GroupLayout",
    committed_epoch: int,
    strict: bool = False,
) -> list[Violation]:
    """Every committed artifact agrees on ``committed_epoch``."""
    out: list[Violation] = []
    if committed_epoch < 0:
        return out  # nothing committed yet: trivially coherent
    for g in layout.groups:
        for j, pnode_id in enumerate(g.parity_nodes):
            pnode = cluster.node(pnode_id)
            if not pnode.alive:
                continue
            block = pnode.parity_store.get(shard_key(g.group_id, j))
            if block is not None and block.epoch != committed_epoch:
                out.append(Violation(
                    "epoch-coherence", FATAL, f"group {g.group_id}",
                    f"shard {j} epoch {block.epoch} != committed "
                    f"{committed_epoch}",
                ))
        for v in g.member_vm_ids:
            vm = cluster.vm(v)
            if vm.node_id is None:
                out.append(Violation(
                    "epoch-coherence", _severity(strict), f"vm {v}",
                    "failed — epoch unauditable",
                ))
                continue
            img = cluster.hypervisor(vm.node_id).committed(v)
            if img is None:
                out.append(Violation(
                    "epoch-coherence", _severity(strict), f"vm {v}",
                    "no committed checkpoint",
                ))
            elif img.epoch != committed_epoch:
                out.append(Violation(
                    "epoch-coherence", FATAL, f"vm {v}",
                    f"committed image epoch {img.epoch} != {committed_epoch}",
                ))
    return out


def check_two_phase_atomicity(
    cluster: "VirtualCluster",
    layout: "GroupLayout",
    committed_epoch: int,
    strict: bool = False,
) -> list[Violation]:
    """No artifact from an uncommitted (future) epoch is observable.

    An aborted cycle must leave *zero* trace: staged parity and staged
    member images for epoch ``e > committed_epoch`` leaking into node
    stores would mean the two-phase commit is not atomic.
    """
    out: list[Violation] = []
    for node in cluster.nodes:
        if not node.alive:
            continue
        for gid, block in node.parity_store.items():
            if block.epoch > committed_epoch:
                out.append(Violation(
                    "two-phase-atomicity", FATAL, f"group {gid}",
                    f"parity from uncommitted epoch {block.epoch} on node "
                    f"{node.node_id} (committed {committed_epoch})",
                ))
        for vm_id, img in node.checkpoint_store.items():
            if img.epoch > committed_epoch:
                out.append(Violation(
                    "two-phase-atomicity", FATAL, f"vm {vm_id}",
                    f"image from uncommitted epoch {img.epoch} on node "
                    f"{node.node_id} (committed {committed_epoch})",
                ))
    for vm in cluster.all_vms:
        if vm.epoch > committed_epoch:
            out.append(Violation(
                "two-phase-atomicity", FATAL, f"vm {vm.vm_id}",
                f"vm epoch marker {vm.epoch} ahead of committed "
                f"{committed_epoch}",
            ))
    return out


def check_single_failure_recoverable(
    cluster: "VirtualCluster",
    layout: "GroupLayout",
    strict: bool = False,
    scheme=None,
) -> list[Violation]:
    """Constructive recoverability: rebuild each member from the others
    + parity (the actual recovery computation) and compare bit-exactly
    against its committed payload.  For multi-shard schemes this widens
    to every erasure pattern of size <= the scheme's tolerance."""
    coding = get_scheme(scheme)
    if not isinstance(coding, XorScheme):
        return _check_erasures_recoverable(cluster, layout, strict, coding)
    out: list[Violation] = []
    for g in layout.groups:
        pnode = cluster.node(g.parity_node)
        block = pnode.parity_store.get(g.group_id) if pnode.alive else None
        if block is None or block.data is None:
            continue  # availability handled by parity-coherence
        images = {}
        for v in g.member_vm_ids:
            vm = cluster.vm(v)
            img = (
                cluster.hypervisor(vm.node_id).committed(v)
                if vm.node_id is not None
                else None
            )
            if img is None or img.payload is None:
                images = None
                break
            images[v] = img.payload_flat()
        if images is None:
            continue  # unauditable; parity-coherence already flagged it
        for v in g.member_vm_ids:
            survivors = [p for w, p in images.items() if w != v]
            try:
                rebuilt = reconstruct_missing_padded(
                    survivors, block.data, images[v].shape[0]
                )
            except ValueError as exc:
                out.append(Violation(
                    "single-failure-recoverable", FATAL, f"vm {v}",
                    f"reconstruction impossible: {exc}",
                ))
                continue
            if not np.array_equal(rebuilt, images[v]):
                nbad = int(np.count_nonzero(rebuilt != images[v]))
                out.append(Violation(
                    "single-failure-recoverable", FATAL, f"vm {v}",
                    f"rebuilt image differs from committed in {nbad} byte(s)",
                ))
    return out


def audit_cluster(
    cluster: "VirtualCluster",
    layout: "GroupLayout",
    committed_epoch: int,
    strict: bool = False,
    context: str = "",
    scheme=None,
    domains=None,
) -> AuditReport:
    """Run every invariant checker and aggregate the findings.

    ``strict=True`` promotes degraded observations (dead nodes, failed
    VMs, co-located placements) to fatal — use it only at quiescent
    points where the cluster is expected to be fully healthy.
    """
    report = AuditReport(
        checked_at=cluster.sim.now,
        committed_epoch=committed_epoch,
        context=context,
        strict=strict,
    )
    if committed_epoch < 0:
        return report  # nothing committed yet: nothing to audit
    report.violations.extend(
        check_parity_coherence(cluster, layout, strict, scheme=scheme)
    )
    report.violations.extend(
        check_layout_validity(cluster, layout, strict, scheme=scheme, domains=domains)
    )
    report.violations.extend(
        check_epoch_coherence(cluster, layout, committed_epoch, strict)
    )
    report.violations.extend(
        check_two_phase_atomicity(cluster, layout, committed_epoch, strict)
    )
    report.violations.extend(
        check_single_failure_recoverable(cluster, layout, strict, scheme=scheme)
    )
    return report
