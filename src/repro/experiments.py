"""High-level experiment harness.

The benches, examples, and CLI all run variations of two experiments:
*paired job comparisons* (several checkpointing methods over identical
failure traces) and *epoch microbenchmarks* (one cycle of each
architecture on an equivalent cluster).  This module is the single
implementation both lean on, and the programmatic entry point for
downstream studies::

    from repro.experiments import PairedJobStudy, MethodSpec

    study = PairedJobStudy(
        methods=[MethodSpec("dvdc"), MethodSpec("diskful")],
        work=4 * 3600, interval=600, node_mtbf=6 * 3600, seeds=10,
    )
    outcome = study.run()
    print(outcome.summary_table())
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .analysis.stats import summarize
from .analysis.tables import format_seconds, render_table
from .checkpoint.adaptive import AdaptivePolicy
from .checkpoint.diskful import DiskfulCheckpointer
from .checkpoint.strategies import ForkedCapture, IncrementalCapture
from .core.architectures import checkpoint_node, dvdc, first_shot
from .core.double_parity import (
    DoubleParityCheckpointer,
    build_double_parity_layout,
)
from .failures.distributions import Exponential, FailureDistribution
from .failures.injector import FailureInjector, FailureSchedule
from .workloads.app import CheckpointedJob, JobResult
from .workloads.generators import scaled_scenario

__all__ = ["MethodSpec", "JobOutcome", "StudyOutcome", "PairedJobStudy"]

#: Named method constructors: name -> (factory(cluster, incremental) -> ckpt)
_METHOD_NAMES = ("dvdc", "diskful", "dvdc_rdp", "checkpoint_node", "first_shot")


@dataclass(frozen=True)
class MethodSpec:
    """One checkpointing configuration to compare.

    ``name`` ∈ {dvdc, diskful, dvdc_rdp, checkpoint_node, first_shot}.
    ``incremental`` uses dirty-page capture where the method supports it
    (dvdc, diskful); ``overlap`` runs the job in latency-hiding mode.
    ``label`` defaults to a description of the flags.
    """

    name: str
    incremental: bool = True
    overlap: bool = False
    label: str | None = None

    def __post_init__(self) -> None:
        if self.name not in _METHOD_NAMES:
            raise ValueError(
                f"unknown method {self.name!r}; pick from {_METHOD_NAMES}"
            )

    @property
    def display(self) -> str:
        if self.label:
            return self.label
        bits = [self.name]
        if not self.incremental:
            bits.append("full")
        if self.overlap:
            bits.append("overlap")
        return "+".join(bits)

    def build(self, cluster):
        """Instantiate the checkpointer on a cluster."""
        strategy = IncrementalCapture() if self.incremental else ForkedCapture()
        if self.name == "dvdc":
            return dvdc(cluster, strategy=strategy)
        if self.name == "diskful":
            return DiskfulCheckpointer(cluster, strategy=strategy)
        if self.name == "dvdc_rdp":
            layout = build_double_parity_layout(
                cluster, group_size=max(1, cluster.n_nodes - 2)
            )
            return DoubleParityCheckpointer(cluster, layout)
        if self.name == "checkpoint_node":
            node = cluster.n_nodes - 1
            for vm in list(cluster.vms_on(node)):
                cluster.node(node).evict(vm)
                del cluster.vms[vm.vm_id]
            return checkpoint_node(cluster, node_id=node)
        # first_shot: thin to one VM per node, freeing the last node
        for node_id in range(cluster.n_nodes):
            vms = cluster.vms_on(node_id)
            drop = vms[1:] if node_id < cluster.n_nodes - 1 else vms
            for vm in drop:
                cluster.node(node_id).evict(vm)
                del cluster.vms[vm.vm_id]
        return first_shot(cluster)


@dataclass
class JobOutcome:
    """One (method, seed) cell of a study."""

    method: str
    seed: int
    result: JobResult
    #: serving-sidecar report (latency quantiles, loss, stalls) when the
    #: study ran with ``serving=...``; None otherwise
    serving: dict | None = None


@dataclass
class StudyOutcome:
    """All cells plus aggregation helpers."""

    cells: list[JobOutcome] = field(default_factory=list)
    work: float = 0.0

    def for_method(self, method: str) -> list[JobResult]:
        return [c.result for c in self.cells if c.method == method]

    def completion_rate(self, method: str) -> float:
        rs = self.for_method(method)
        return sum(r.completed for r in rs) / len(rs) if rs else float("nan")

    def mean_ratio(self, method: str) -> float:
        rs = [r.time_ratio for r in self.for_method(method) if r.completed]
        return float(np.mean(rs)) if rs else float("nan")

    def summary_table(self) -> str:
        methods = sorted({c.method for c in self.cells})
        rows = []
        for m in methods:
            rs = self.for_method(m)
            done = [r for r in rs if r.completed]
            ratios = [r.time_ratio for r in done]
            rows.append([
                m,
                f"{self.completion_rate(m) * 100:.0f}%",
                f"{np.mean(ratios):.3f}" if ratios else "-",
                f"{summarize(ratios).std:.3f}" if len(ratios) > 1 else "-",
                format_seconds(float(np.mean([r.checkpoint_time for r in done])))
                if done else "-",
                format_seconds(float(np.mean([r.lost_work for r in done])))
                if done else "-",
            ])
        return render_table(
            ["method", "completed", "mean T/T_ideal", "sd", "mean ckpt time",
             "mean lost work"],
            rows,
            title=f"paired study over {len({c.seed for c in self.cells})} "
                  "shared failure traces",
        )


class PairedJobStudy:
    """Run several methods over identical failure traces (CRN design).

    Parameters mirror the Fig. 5 setting by default.  Each seed draws
    one failure schedule; every method replays it exactly, so
    cross-method differences are pure protocol cost.
    """

    def __init__(
        self,
        methods: list[MethodSpec],
        work: float = 4 * 3600.0,
        interval: float | AdaptivePolicy = 600.0,
        node_mtbf: float = 6 * 3600.0,
        repair_time: float = 30.0,
        seeds: int = 5,
        n_nodes: int = 4,
        vms_per_node: int = 3,
        failure_dist: FailureDistribution | None = None,
        functional: bool = True,
        managed: bool = False,
        serving: dict | None = None,
    ):
        if not methods:
            raise ValueError("need at least one MethodSpec")
        if seeds < 1:
            raise ValueError("need at least one seed")
        if managed:
            unsupported = [m.name for m in methods if m.name != "dvdc"]
            if unsupported:
                raise ValueError(
                    "managed mode needs the dvdc single-parity protocol "
                    f"(XOR layout + healer); unsupported: {unsupported}"
                )
        self.managed = managed
        self.methods = methods
        self.work = float(work)
        self.interval = interval
        self.node_mtbf = float(node_mtbf)
        self.repair_time = float(repair_time)
        self.seeds = int(seeds)
        self.n_nodes = n_nodes
        self.vms_per_node = vms_per_node
        self.failure_dist = failure_dist or Exponential(1.0 / node_mtbf)
        self.functional = functional
        #: serving-sidecar config: ArrivalConfig fields plus optional
        #: ``clone`` and ``slo_p99``.  Every method cell then serves the
        #: identical open-loop request trace while the job runs, and the
        #: cell's JobOutcome carries the serving report.
        self.serving = dict(serving) if serving else None

    def _run_cell(self, spec: MethodSpec, seed: int) -> JobOutcome:
        # RDP needs room for two parity homes off the member nodes
        n_nodes = self.n_nodes
        if spec.name == "dvdc_rdp" and n_nodes < 4:
            raise ValueError("dvdc_rdp needs >= 4 nodes")
        sc = scaled_scenario(
            n_nodes, self.vms_per_node, seed=seed,
            functional=self.functional,
            image_pages=32 if self.functional else None,
            page_size=128,
        )
        rng = sc.rngs.stream("failure-trace")
        schedule = FailureSchedule.draw(
            rng, self.failure_dist, n_nodes,
            horizon=self.work * 10, repair_time=self.repair_time,
        )
        injector = FailureInjector(sc.sim, n_nodes, schedule=schedule)
        ck = spec.build(sc.cluster)
        controlplane = None
        if self.managed:
            # route failure handling through the coordinator: heartbeat
            # detection, fencing, recovery, healing, strict audits — the
            # job keeps only work accounting and checkpoint cadence
            from .controlplane import ControlPlane, ControlPlaneConfig

            controlplane = ControlPlane(
                sc.cluster, ck,
                config=ControlPlaneConfig(repair_time=self.repair_time),
            ).start()
        job = CheckpointedJob(
            sc.cluster, ck, work=self.work, interval=self.interval,
            injector=injector, repair_time=self.repair_time,
            overlap=spec.overlap, controlplane=controlplane,
        )
        serving = None
        if self.serving is not None:
            serving = self._build_serving(sc, ck, injector, job)
        injector.start()
        proc = job.start()
        if controlplane is not None:
            proc.subscribe(lambda ev: controlplane.stop())
        sc.sim.run(until=self.work * 100)
        if proc.ok is False:
            raise proc.value
        return JobOutcome(
            method=spec.display, seed=seed, result=job.result,
            serving=serving.report() if serving is not None else None,
        )

    def _build_serving(self, sc, ck, injector, job):
        """Attach a serving sidecar: the job owns checkpoint cadence and
        recovery; the sidecar serves traffic through those disruptions."""
        from .serving.arrivals import ArrivalConfig, OpenLoopArrivals
        from .serving.controller import SLAController
        from .serving.runtime import ServingRuntime

        cfg = dict(self.serving)
        clone = int(cfg.pop("clone", 1))
        slo_p99 = cfg.pop("slo_p99", None)
        runtime = ServingRuntime(
            sc,
            OpenLoopArrivals(ArrivalConfig(**cfg), sc.rngs),
            checkpointer=ck,
            injector=injector,
            job=job,
            repair_time=self.repair_time,
            clone=clone,
        )
        if slo_p99 is not None:
            # steer the *job's* checkpoint interval against the SLO
            runtime.controller = SLAController(job, float(slo_p99))
        runtime.start()
        return runtime

    def run(self) -> StudyOutcome:
        outcome = StudyOutcome(work=self.work)
        for seed in range(self.seeds):
            for spec in self.methods:
                outcome.cells.append(self._run_cell(spec, seed))
        return outcome
