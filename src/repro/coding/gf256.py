"""GF(256) arithmetic kernels for Reed–Solomon erasure coding.

The field is :math:`GF(2^8)` with the AES-adjacent primitive polynomial
``x^8 + x^4 + x^3 + x^2 + 1`` (0x11d), the conventional choice for
storage erasure codes.  Scalars are plain ints in ``range(256)``;
vectors are ``uint8`` numpy arrays.

Two lookup structures drive everything:

* ``GF_EXP`` / ``GF_LOG`` — the discrete log/antilog tables used for
  scalar multiply, divide, and inverse.
* ``MUL_TABLE`` — the full 256×256 product table.  Multiplying a whole
  buffer by a scalar coefficient is a single vectorized numpy gather
  (``MUL_TABLE[c][vec]``), which is what makes RS(k, m) encode a
  handful of fancy-index + XOR passes instead of a Python loop.

The matrix helpers (:func:`gf_matmul`, :func:`gf_matinv`) operate on
small ``k × k`` systematic-code matrices — Gauss–Jordan over GF(256) —
and are only ever applied to matrices whose invertibility the MDS
property guarantees.
"""

from __future__ import annotations

import numpy as np

#: Primitive polynomial for the field (x^8 + x^4 + x^3 + x^2 + 1).
GF_POLY = 0x11D

_exp = np.zeros(512, dtype=np.uint8)
_log = np.zeros(256, dtype=np.int32)
_x = 1
for _i in range(255):
    _exp[_i] = _x
    _log[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= GF_POLY
# Duplicate the cycle so gf_mul can skip the mod-255 reduction.
_exp[255:510] = _exp[:255]

#: Antilog table, doubled so ``GF_EXP[a + b]`` needs no ``% 255``.
GF_EXP = _exp
#: Discrete log table; ``GF_LOG[0]`` is unused (log of zero is undefined).
GF_LOG = _log


def gf_mul(a: int, b: int) -> int:
    """Scalar product ``a * b`` in GF(256)."""
    if a == 0 or b == 0:
        return 0
    return int(GF_EXP[int(GF_LOG[a]) + int(GF_LOG[b])])


def gf_inv(a: int) -> int:
    """Multiplicative inverse of ``a``; raises on ``a == 0``."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(GF_EXP[255 - int(GF_LOG[a])])


def gf_div(a: int, b: int) -> int:
    """Scalar quotient ``a / b`` in GF(256); raises on ``b == 0``."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(GF_EXP[int(GF_LOG[a]) - int(GF_LOG[b]) + 255])


def _build_mul_table() -> np.ndarray:
    """The full 256×256 product table via one outer log-sum gather."""
    logs = GF_LOG.astype(np.int64)
    table = GF_EXP[logs[:, None] + logs[None, :]].astype(np.uint8)
    table[0, :] = 0
    table[:, 0] = 0
    return table


#: ``MUL_TABLE[a][b] == a * b`` in GF(256); row gathers vectorize
#: coefficient-times-buffer products.
MUL_TABLE = _build_mul_table()
MUL_TABLE.setflags(write=False)


def gf_mul_vec(coeff: int, vec: np.ndarray) -> np.ndarray:
    """Vectorized ``coeff * vec`` over a uint8 buffer (table gather)."""
    if coeff == 0:
        return np.zeros_like(vec)
    if coeff == 1:
        return vec.copy()
    return MUL_TABLE[coeff][vec]


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256) for small uint8 matrices."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    n, k = a.shape
    k2, m = b.shape
    if k != k2:
        raise ValueError(f"shape mismatch {a.shape} @ {b.shape}")
    out = np.zeros((n, m), dtype=np.uint8)
    for i in range(n):
        row = a[i]
        acc = np.zeros(m, dtype=np.uint8)
        for j in range(k):
            c = int(row[j])
            if c:
                acc ^= MUL_TABLE[c][b[j]]
        out[i] = acc
    return out


def gf_matinv(m: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(256) by Gauss–Jordan elimination.

    Raises :class:`np.linalg.LinAlgError` if the matrix is singular —
    which for an MDS code's survivor submatrix would indicate a bug,
    not an unlucky erasure pattern.
    """
    m = np.asarray(m, dtype=np.uint8)
    n = m.shape[0]
    if m.shape != (n, n):
        raise ValueError(f"matrix must be square, got {m.shape}")
    aug = np.concatenate([m.copy(), np.eye(n, dtype=np.uint8)], axis=1)
    for col in range(n):
        pivot = next((r for r in range(col, n) if aug[r, col]), None)
        if pivot is None:
            raise np.linalg.LinAlgError("singular matrix over GF(256)")
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        inv_p = gf_inv(int(aug[col, col]))
        aug[col] = MUL_TABLE[inv_p][aug[col]]
        for r in range(n):
            if r != col and aug[r, col]:
                aug[r] ^= MUL_TABLE[int(aug[r, col])][aug[col]]
    return aug[:, n:].copy()


def cauchy_matrix(k: int, m: int) -> np.ndarray:
    """The ``m × k`` Cauchy block of a systematic RS generator.

    ``C[i][j] = 1 / (x_i + y_j)`` with ``x_i = k + i`` and ``y_j = j``
    — disjoint evaluation points, so every entry is defined and every
    square submatrix of ``[I_k ; C]`` is invertible (the MDS property).
    Requires ``k + m <= 256``.
    """
    if k < 1 or m < 1:
        raise ValueError(f"need k >= 1 and m >= 1, got k={k} m={m}")
    if k + m > 256:
        raise ValueError(f"RS over GF(256) needs k + m <= 256, got {k + m}")
    c = np.zeros((m, k), dtype=np.uint8)
    for i in range(m):
        for j in range(k):
            c[i, j] = gf_inv((k + i) ^ j)
    return c
