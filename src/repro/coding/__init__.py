"""Pluggable erasure-coding schemes (XOR, RDP, Reed–Solomon, replication).

See :mod:`repro.coding.schemes` for the :class:`CodingScheme` interface
and ``docs/coding.md`` for the scheme matrix and custom-scheme
registration.
"""

from .gf256 import (
    GF_EXP,
    GF_LOG,
    MUL_TABLE,
    cauchy_matrix,
    gf_div,
    gf_inv,
    gf_matinv,
    gf_matmul,
    gf_mul,
    gf_mul_vec,
)
from .schemes import (
    CodingScheme,
    ReedSolomonScheme,
    ReplicationScheme,
    RDPScheme,
    XorScheme,
    available_schemes,
    get_scheme,
    parse_scheme,
    register_scheme,
    shard_key,
)

__all__ = [
    "GF_EXP",
    "GF_LOG",
    "MUL_TABLE",
    "cauchy_matrix",
    "gf_div",
    "gf_inv",
    "gf_matinv",
    "gf_matmul",
    "gf_mul",
    "gf_mul_vec",
    "CodingScheme",
    "ReedSolomonScheme",
    "ReplicationScheme",
    "RDPScheme",
    "XorScheme",
    "available_schemes",
    "get_scheme",
    "parse_scheme",
    "register_scheme",
    "shard_key",
]
