"""Pluggable erasure-coding schemes for checkpoint parity groups.

:class:`CodingScheme` abstracts what ``core.dvdc`` historically
hard-coded: *one* XOR parity shard per RAID group.  A scheme maps the
``k`` member images of a group to ``m = n_shards`` parity shards placed
on ``m`` distinct non-member nodes, and can rebuild any erasure pattern
of at most :attr:`~CodingScheme.tolerance` lost elements (members and
shards alike).

Four schemes ship:

========== ========= ========== ================= =================
name       shards m  tolerance  storage overhead  exchange traffic
========== ========= ========== ================= =================
``xor``    1         1          1/k               1x
``rdp``    2         2          ~2/k              2x
``rs-k-m`` m         m          m/k               m×
``rep-n``  n−1       n−1        (n−1)·k/k         (n−1)×
========== ========= ========== ================= =================

All four are linear over GF(2) — ``encode(a ⊕ b) == encode(a) ⊕
encode(b)`` for fixed member count and coding length — which is what
lets the incremental small-write fold generalize: XOR the encode of the
*deltas* into the previous shards.

Buffers may have heterogeneous lengths; ``encode`` zero-pads to the
longest member (the padded-XOR convention the stack already uses) and
``reconstruct`` returns members at the scheme's working length, which
the caller trims to each member's own logical size.

Register additional schemes with :func:`register_scheme`; resolve specs
like ``"rs-8-2"`` with :func:`get_scheme`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..cluster.xorsum import as_u8, reconstruct_missing_padded, xor_reduce_padded
from .gf256 import MUL_TABLE, cauchy_matrix, gf_matinv


def _coding_error() -> "type[RuntimeError]":
    """:class:`repro.core.parity.ParityCodeError`, imported lazily.

    ``repro.core``'s package init imports :mod:`repro.core.dvdc`, which
    needs this package — a top-level import here would make the import
    graph order-dependent.  Deferring to call time breaks the cycle.
    """
    from ..core.parity import ParityCodeError

    return ParityCodeError

__all__ = [
    "CodingScheme",
    "XorScheme",
    "RDPScheme",
    "ReedSolomonScheme",
    "ReplicationScheme",
    "get_scheme",
    "parse_scheme",
    "register_scheme",
    "available_schemes",
    "shard_key",
]

#: Upper bound on shards-per-group baked into the shard_key packing.
MAX_SHARDS = 16


def shard_key(group_id: int, shard_index: int) -> int:
    """Parity-store key for shard ``shard_index`` of group ``group_id``.

    Shard 0 keeps the plain group id — bit-compatible with every
    existing single-parity code path.  Higher shards use negative keys
    (the convention ``core.double_parity`` introduced for its diagonal
    shard) packed so keys are unique across ``(group, shard)`` pairs.
    """
    if not 0 <= shard_index < MAX_SHARDS:
        raise ValueError(f"shard index {shard_index} out of range")
    if shard_index == 0:
        return group_id
    return -(group_id * MAX_SHARDS + shard_index)


def _pad_members(
    members: Sequence[np.ndarray | bytes], length: int | None = None
) -> tuple[list[np.ndarray], int]:
    """Zero-pad members to a common working length (the longest, or
    ``length`` when the caller pins it)."""
    bufs = [as_u8(m) for m in members]
    if not bufs:
        raise _coding_error()("empty member list")
    n = max(b.shape[0] for b in bufs)
    if length is not None:
        if length < n:
            raise _coding_error()(f"coding length {length} < longest member {n}")
        n = length
    out = []
    for b in bufs:
        if b.shape[0] == n:
            out.append(b)
        else:
            p = np.zeros(n, dtype=np.uint8)
            p[: b.shape[0]] = b
            out.append(p)
    return out, n


class CodingScheme:
    """Interface every coding scheme implements.

    Attributes
    ----------
    name:
        Registry spelling (``"xor"``, ``"rdp"``, ``"rs-8-2"``, ``"rep-3"``).
    n_shards:
        ``m`` — parity shards per group, each on a distinct non-member
        node.
    tolerance:
        Maximum simultaneous erasures (members + shards) the scheme
        repairs.
    linear:
        True when ``encode`` is GF(2)-linear at fixed ``(k, length)``,
        enabling the incremental delta fold.
    """

    name: str = "abstract"
    n_shards: int = 0
    tolerance: int = 0
    linear: bool = True

    def encode(self, members: Sequence[np.ndarray | bytes]) -> list[np.ndarray]:
        """Members (any lengths, zero-pad semantics) → ``m`` shards."""
        raise NotImplementedError

    def reconstruct(
        self,
        members: Sequence[np.ndarray | None],
        shards: Sequence[np.ndarray | None],
        nbytes: int | None = None,
    ) -> list[np.ndarray]:
        """Rebuild missing members from survivors + surviving shards.

        ``members`` is the full ``k``-list with ``None`` marking losses;
        ``shards`` likewise (length ``m``).  Rebuilt members come back at
        the scheme's working length — callers trim to each member's own
        logical size.  ``nbytes`` pins the working length when no shard
        survives to infer it from.

        Raises :class:`ParityCodeError` when the erasure pattern exceeds
        :attr:`tolerance`.
        """
        raise NotImplementedError

    def storage_overhead(self, k: int) -> float:
        """Extra bytes stored per group data byte (shards / members)."""
        raise NotImplementedError

    def traffic_factor(self, k: int) -> float:
        """Exchange bytes shipped per checkpoint byte (m-way fan-out)."""
        return float(self.n_shards)

    def shard_length(self, member_length: int, k: int) -> int:
        """Working shard length for members padded to ``member_length``."""
        return member_length

    def working_length(self, shard_length: int, k: int) -> int:
        """Member working (padded) length implied by a shard's length."""
        return shard_length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} m={self.n_shards} t={self.tolerance}>"


def _missing_count(
    members: Sequence[np.ndarray | None], shards: Sequence[np.ndarray | None]
) -> tuple[list[int], int]:
    lost_members = [i for i, m in enumerate(members) if m is None]
    lost_shards = sum(1 for s in shards if s is None)
    return lost_members, lost_shards


class XorScheme(CodingScheme):
    """Single-parity XOR (the paper's RAID-4/5 analogue), as a scheme.

    Delegates to the exact :mod:`repro.cluster.xorsum` kernels the
    checkpointer always used, so parity bytes are bit-identical to the
    pre-scheme code path (the golden ``scale64.json`` digests prove it).
    """

    name = "xor"
    n_shards = 1
    tolerance = 1

    def encode(self, members: Sequence[np.ndarray | bytes]) -> list[np.ndarray]:
        return [xor_reduce_padded(members)]

    def reconstruct(
        self,
        members: Sequence[np.ndarray | None],
        shards: Sequence[np.ndarray | None],
        nbytes: int | None = None,
    ) -> list[np.ndarray]:
        lost, lost_shards = _missing_count(members, shards)
        if len(lost) + lost_shards > self.tolerance:
            raise _coding_error()(
                f"xor tolerates 1 erasure, {len(lost) + lost_shards} lost"
            )
        if not lost:
            return [as_u8(m).copy() for m in members]  # type: ignore[arg-type]
        parity = shards[0]
        if parity is None:
            raise _coding_error()("cannot rebuild a member without the parity shard")
        parity = as_u8(parity)
        survivors = [as_u8(m) for m in members if m is not None]
        rebuilt = reconstruct_missing_padded(survivors, parity, parity.shape[0])
        return [
            rebuilt if i == lost[0] else as_u8(m).copy()
            for i, m in enumerate(members)
        ]

    def storage_overhead(self, k: int) -> float:
        return 1.0 / k


class RDPScheme(CodingScheme):
    """Row-Diagonal Parity re-expressed on the scheme interface.

    Wraps :class:`repro.core.parity.RDPCode` (one cached codec per
    member count), so shard bytes are identical to the standalone
    double-parity checkpointer's.
    """

    name = "rdp"
    n_shards = 2
    tolerance = 2

    def __init__(self) -> None:
        self._codes: dict[int, RDPCode] = {}

    def _code(self, k: int) -> RDPCode:
        code = self._codes.get(k)
        if code is None:
            from ..core.parity import RDPCode  # lazy: avoids import cycle

            code = self._codes[k] = RDPCode(k)
        return code

    def encode(self, members: Sequence[np.ndarray | bytes]) -> list[np.ndarray]:
        padded, _ = _pad_members(members)
        return self._code(len(padded)).encode(padded)

    def reconstruct(
        self,
        members: Sequence[np.ndarray | None],
        shards: Sequence[np.ndarray | None],
        nbytes: int | None = None,
    ) -> list[np.ndarray]:
        code = self._code(len(members))
        length = nbytes
        for s in shards:
            if s is not None:
                # Stripe length: members padded to it satisfy the same
                # row/diagonal equations as the encode-time columns.
                length = as_u8(s).shape[0]
                break
        survivors = [m for m in members if m is not None]
        if length is None and survivors:
            raw = max(as_u8(m).shape[0] for m in survivors)
            length = code._rowbytes(raw) * (code.p - 1)
        padded = [
            None if m is None else _pad_members([m], length)[0][0] for m in members
        ]
        return code.reconstruct(padded, list(shards), nbytes=length)

    def storage_overhead(self, k: int) -> float:
        return 2.0 / k

    def shard_length(self, member_length: int, k: int) -> int:
        code = self._code(k)
        return code._rowbytes(member_length) * (code.p - 1)


class ReedSolomonScheme(CodingScheme):
    """Systematic Reed–Solomon RS(k, m) over GF(256).

    Generator ``[I_k ; C]`` with ``C`` an ``m × k`` Cauchy block (any
    square submatrix invertible — the MDS property), so *any* ``m``
    erasures among the ``k + m`` elements are repairable.  Encode is
    vectorized: per coefficient, one ``MUL_TABLE`` gather over the whole
    member buffer plus an XOR accumulate.  Decode inverts the ``k × k``
    survivor submatrix by Gauss–Jordan over GF(256) and re-projects.

    ``k`` is bound per group at encode time (the spec's ``k`` — e.g. the
    8 in ``rs-8-2`` — is advisory, used for bench naming and overhead
    math); coefficient matrices are cached per member count.
    """

    def __init__(self, m: int = 2, k_hint: int = 8) -> None:
        if m < 1:
            raise ValueError(f"need m >= 1 parity shards, got {m}")
        self.n_shards = m
        self.tolerance = m
        self.k_hint = k_hint
        self.name = f"rs-{k_hint}-{m}"
        self._cauchy: dict[int, np.ndarray] = {}

    def _matrix(self, k: int) -> np.ndarray:
        mat = self._cauchy.get(k)
        if mat is None:
            mat = self._cauchy[k] = cauchy_matrix(k, self.n_shards)
        return mat

    def encode(self, members: Sequence[np.ndarray | bytes]) -> list[np.ndarray]:
        padded, length = _pad_members(members)
        cmat = self._matrix(len(padded))
        shards = []
        for i in range(self.n_shards):
            acc = np.zeros(length, dtype=np.uint8)
            for j, m in enumerate(padded):
                c = int(cmat[i, j])
                if c == 1:
                    acc ^= m
                elif c:
                    acc ^= MUL_TABLE[c][m]
            shards.append(acc)
        return shards

    def reconstruct(
        self,
        members: Sequence[np.ndarray | None],
        shards: Sequence[np.ndarray | None],
        nbytes: int | None = None,
    ) -> list[np.ndarray]:
        k = len(members)
        lost, lost_shards = _missing_count(members, shards)
        if len(lost) + lost_shards > self.tolerance:
            raise _coding_error()(
                f"{self.name} tolerates {self.tolerance} erasures, "
                f"{len(lost) + lost_shards} lost"
            )
        if not lost:
            return [as_u8(m).copy() for m in members]  # type: ignore[arg-type]
        length = nbytes
        for s in shards:
            if s is not None:
                length = as_u8(s).shape[0]
                break
        if length is None:
            raise _coding_error()("no surviving shard; pass nbytes")
        cmat = self._matrix(k)
        # Generator rows: identity for members, Cauchy rows for shards.
        # Pick k surviving rows, invert, solve for the data vector.
        rows: list[np.ndarray] = []
        rhs: list[np.ndarray] = []
        for j, m in enumerate(members):
            if m is not None:
                row = np.zeros(k, dtype=np.uint8)
                row[j] = 1
                rows.append(row)
                rhs.append(_pad_members([m], length)[0][0])
        for i, s in enumerate(shards):
            if s is not None and len(rows) < k:
                rows.append(cmat[i])
                rhs.append(as_u8(s))
        if len(rows) < k:
            raise _coding_error()(
                f"{self.name}: only {len(rows)} survivors for {k} unknowns"
            )
        inv = gf_matinv(np.stack(rows[:k]))
        rhs_mat = rhs[:k]
        out = list(members)
        for j in lost:
            acc = np.zeros(length, dtype=np.uint8)
            for c_idx in range(k):
                c = int(inv[j, c_idx])
                if c == 1:
                    acc ^= rhs_mat[c_idx]
                elif c:
                    acc ^= MUL_TABLE[c][rhs_mat[c_idx]]
            out[j] = acc
        return [as_u8(m).copy() if i not in lost else out[i] for i, m in enumerate(out)]

    def storage_overhead(self, k: int) -> float:
        return self.n_shards / k


class ReplicationScheme(CodingScheme):
    """Replication-n: every shard is a full copy of the group's data.

    Each of the ``m = n − 1`` shards concatenates all ``k`` members
    (padded to the longest), so *one* surviving shard rebuilds the whole
    group: any erasure pattern that leaves a shard — or all members —
    alive is repairable, hence tolerance ``n − 1``.  Storage and traffic
    cost are what production VM stacks (Ceph-style 3-way replication)
    pay for the same property.
    """

    def __init__(self, n: int = 3) -> None:
        if n < 2:
            raise ValueError(f"replication needs n >= 2 copies, got {n}")
        self.copies = n
        self.n_shards = n - 1
        self.tolerance = n - 1
        self.name = f"rep-{n}"

    def encode(self, members: Sequence[np.ndarray | bytes]) -> list[np.ndarray]:
        padded, length = _pad_members(members)
        flat = np.concatenate(padded) if len(padded) > 1 else padded[0].copy()
        return [flat.copy() for _ in range(self.n_shards)]

    def reconstruct(
        self,
        members: Sequence[np.ndarray | None],
        shards: Sequence[np.ndarray | None],
        nbytes: int | None = None,
    ) -> list[np.ndarray]:
        k = len(members)
        lost, _ = _missing_count(members, shards)
        if not lost:
            return [as_u8(m).copy() for m in members]  # type: ignore[arg-type]
        source = next((s for s in shards if s is not None), None)
        if source is None:
            raise _coding_error()(
                f"{self.name}: members lost and no replica shard survives"
            )
        flat = as_u8(source)
        if flat.shape[0] % k:
            raise _coding_error()(
                f"{self.name}: replica length {flat.shape[0]} not divisible by k={k}"
            )
        length = flat.shape[0] // k
        return [
            as_u8(m).copy() if m is not None else flat[i * length : (i + 1) * length].copy()
            for i, m in enumerate(members)
        ]

    def storage_overhead(self, k: int) -> float:
        return float(self.n_shards)

    def shard_length(self, member_length: int, k: int) -> int:
        return member_length * k

    def working_length(self, shard_length: int, k: int) -> int:
        return shard_length // k


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, Callable[[], CodingScheme]] = {}


def register_scheme(name: str, factory: Callable[[], CodingScheme]) -> None:
    """Register a custom scheme under ``name`` for :func:`get_scheme`.

    ``factory`` is a zero-argument callable returning a fresh scheme
    instance (schemes carry per-k codec caches, so instances should not
    be shared across unrelated checkpointers unless that is intended).
    """
    _REGISTRY[name] = factory


def available_schemes() -> list[str]:
    """Registered scheme names plus the parametric spec families."""
    return sorted(_REGISTRY) + ["rs-<k>-<m>", "rep-<n>"]


register_scheme("xor", XorScheme)
register_scheme("rdp", RDPScheme)
register_scheme("rs-8-2", lambda: ReedSolomonScheme(m=2, k_hint=8))
register_scheme("rep-3", lambda: ReplicationScheme(3))


def parse_scheme(spec: str) -> CodingScheme:
    """Resolve a scheme spec string: registry name, ``rs-<k>-<m>``, or
    ``rep-<n>``."""
    factory = _REGISTRY.get(spec)
    if factory is not None:
        return factory()
    parts = spec.split("-")
    try:
        if parts[0] == "rs" and len(parts) == 3:
            return ReedSolomonScheme(m=int(parts[2]), k_hint=int(parts[1]))
        if parts[0] == "rep" and len(parts) == 2:
            return ReplicationScheme(int(parts[1]))
    except ValueError:
        pass
    raise ValueError(
        f"unknown coding scheme {spec!r}; known: {', '.join(available_schemes())}"
    )


def get_scheme(spec: "str | CodingScheme | None") -> CodingScheme:
    """Coerce a spec (string, instance, or None → xor) to a scheme."""
    if spec is None:
        return XorScheme()
    if isinstance(spec, CodingScheme):
        return spec
    return parse_scheme(spec)
