"""Fluid-flow network links with max-min fair bandwidth sharing.

Transfers are modeled as *fluid flows*: a flow on a set of links makes
progress at a rate set by max-min fair allocation (progressive filling)
across all concurrently active flows.  This captures exactly the effect
Fig. 5 turns on — N checkpoint streams converging on one NAS ingress
link serialize to ``bw/N`` each, while DVDC's peer-to-peer exchanges
ride separate node links in parallel.

Two allocators implement the same max-min fair solution:

* ``"incremental"`` (default) — when a flow starts, finishes, or a link
  changes, only the *affected component* is recomputed: the flows
  transitively connected to the changed links through shared links.
  Disjoint components keep their rates (max-min fairness is separable
  across link-disjoint flow sets), so a thousand-node cluster running
  parallel group exchanges pays per-group cost, not per-cluster cost.
* ``"reference"`` — recomputes every active flow on every change, the
  original from-scratch algorithm.  Kept as the bit-exactness oracle:
  ``tests/test_golden_determinism.py`` proves both allocators produce
  identical rates, completion times, and traces.

Flow progress uses an *anchor* representation: ``remaining`` bytes are
stored as of the instant the flow's rate last changed, and interpolated
on read.  A flow whose rate is unchanged by a reallocation is not
touched at all — its completion event stays scheduled — which is what
makes the incremental allocator bit-identical to the reference one.
"""

from __future__ import annotations

import math
import operator
from typing import Iterable, Sequence

from ..sim import NULL_TRACER, Simulator, SimEvent, Tracer
from ..sim.engine import EventHandle
from ..telemetry import probe_of

__all__ = ["Link", "Flow", "Network", "NetworkError", "TransientNetworkError"]

#: Valid values for ``Network(allocator=...)``.
ALLOCATORS = ("incremental", "reference")


class NetworkError(RuntimeError):
    """Structural misuse of the network layer."""


class TransientNetworkError(NetworkError):
    """A transfer failed for a *transient* reason — link flap, dropped
    stream, per-attempt timeout — and retrying it may succeed.

    Distinct from a plain :class:`NetworkError` (structural misuse, or a
    flow torn down because its endpoint node crashed), which retrying
    cannot fix.  The :mod:`repro.resilience.retry` layer retries only
    this subclass.
    """


class Link:
    """A unidirectional link with fixed capacity.

    Parameters
    ----------
    name:
        Diagnostic label (e.g. ``"node3.tx"`` or ``"nas.rx"``).
    bandwidth:
        Capacity in bytes/second.
    latency:
        One-way propagation + protocol setup delay in seconds, charged
        once per flow traversing the link.
    """

    __slots__ = (
        "name", "bandwidth", "nominal_bandwidth", "latency", "flows", "up",
        "index",
    )

    def __init__(self, name: str, bandwidth: float, latency: float = 0.0,
                 index: int = 0):
        if not bandwidth > 0:
            raise NetworkError(f"bandwidth must be > 0, got {bandwidth}")
        if latency < 0:
            raise NetworkError(f"latency must be >= 0, got {latency}")
        self.name = name
        self.bandwidth = float(bandwidth)
        #: design capacity; ``bandwidth`` may sit below it while degraded
        self.nominal_bandwidth = float(bandwidth)
        self.latency = float(latency)
        #: insertion-ordered set of flows crossing the link (dict keys —
        #: admission order, which makes every iteration deterministic)
        self.flows: dict["Flow", None] = {}
        #: False while the link is flapped down; flows cannot cross it
        self.up = True
        #: creation order; deterministic tie-break in progressive filling
        self.index = index

    @property
    def utilization(self) -> float:
        """Fraction of capacity currently allocated (0..1)."""
        return sum(f.rate for f in self.flows) / self.bandwidth

    @property
    def degraded(self) -> bool:
        return self.bandwidth < self.nominal_bandwidth

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "" if self.up else " DOWN"
        return (
            f"<Link {self.name}{state} {self.bandwidth:.3g} B/s "
            f"{len(self.flows)} flows>"
        )


class Flow(SimEvent):
    """An in-progress transfer; succeeds with itself when delivery completes.

    The event value is the flow, so processes can ``flow = yield flow``.
    Cancel in-flight (e.g. sender crashed) with :meth:`abort` — the event
    then *fails* with :class:`NetworkError`.
    """

    __slots__ = (
        "path",
        "size",
        "rate",
        "started_at",
        "finished_at",
        "_anchor_remaining",
        "_anchor_time",
        "_completion",
        "_order",
        "network",
        "label",
    )

    def __init__(self, network: "Network", path: Sequence[Link], size: float, label: str):
        super().__init__(network.sim)
        self.network = network
        self.path = tuple(path)
        self.size = float(size)
        self.rate = 0.0
        self.label = label
        self.started_at = network.sim.now
        self.finished_at: float | None = None
        # anchor representation: bytes left as of _anchor_time at `rate`
        self._anchor_remaining = float(size)
        self._anchor_time = network.sim.now
        self._completion: EventHandle | None = None
        #: admission sequence; reallocation visits flows in this order so
        #: both allocators reschedule same-time completions identically
        self._order = 0

    @property
    def active(self) -> bool:
        return not self.triggered

    @property
    def remaining(self) -> float:
        """Bytes left right now (interpolated from the anchor)."""
        if self.rate <= 0.0:
            return self._anchor_remaining
        dt = self.network.sim.now - self._anchor_time
        if dt <= 0.0:
            return self._anchor_remaining
        return max(0.0, self._anchor_remaining - dt * self.rate)

    @property
    def transferred(self) -> float:
        return self.size - self.remaining

    def abort(self, reason: str = "aborted", transient: bool = False) -> None:
        """Cancel the transfer; the waiting process sees a NetworkError.

        ``transient=True`` fails the flow with
        :class:`TransientNetworkError` instead — the signal that a retry
        (same endpoints, fresh flow) may succeed.
        """
        if self.triggered:
            return
        exc_type = TransientNetworkError if transient else NetworkError
        self.network._finish_flow(self, error=exc_type(f"flow {self.label}: {reason}"))

    def _sync_progress(self, now: float) -> None:
        """Re-anchor ``remaining`` at ``now`` (call only when the rate is
        about to change, or at the flow's end — intermediate re-anchors
        would perturb the float trajectory)."""
        dt = now - self._anchor_time
        if dt > 0.0 and self.rate > 0.0:
            self._anchor_remaining = max(0.0, self._anchor_remaining - dt * self.rate)
        self._anchor_time = now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Flow {self.label} {self.transferred:.3g}/{self.size:.3g}B "
            f"@{self.rate:.3g}B/s>"
        )


class Network:
    """Set of links plus the global max-min fair rate allocator.

    ``allocator`` selects the reallocation strategy (see module
    docstring): ``"incremental"`` (component-scoped, default) or
    ``"reference"`` (global recompute, the bit-exactness oracle).
    """

    def __init__(self, sim: Simulator, tracer: Tracer = NULL_TRACER,
                 allocator: str = "incremental"):
        if allocator not in ALLOCATORS:
            raise NetworkError(
                f"unknown allocator {allocator!r}; expected one of {ALLOCATORS}"
            )
        self.sim = sim
        self.tracer = tracer
        self.allocator = allocator
        self._probe = probe_of(tracer)
        self.links: dict[str, Link] = {}
        self._active: dict[Flow, None] = {}
        self._flow_seq = 0
        self._admit_seq = 0
        self._link_seq = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_link(self, name: str, bandwidth: float, latency: float = 0.0) -> Link:
        if name in self.links:
            raise NetworkError(f"duplicate link name {name!r}")
        link = Link(name, bandwidth, latency, index=self._link_seq)
        self._link_seq += 1
        self.links[name] = link
        return link

    def link(self, name: str) -> Link:
        try:
            return self.links[name]
        except KeyError:
            raise NetworkError(f"unknown link {name!r}") from None

    # ------------------------------------------------------------------
    # link health (transient-fault surface)
    # ------------------------------------------------------------------
    def set_link_up(self, link: Link | str, up: bool, reason: str = "link down") -> int:
        """Flap a link down (aborting its in-flight flows with
        :class:`TransientNetworkError`) or back up.  Returns the number
        of flows torn down.  Idempotent."""
        lk = self.link(link) if isinstance(link, str) else link
        if lk.up == up:
            return 0
        lk.up = up
        torn = 0
        if not up:
            for flow in list(lk.flows):
                flow.abort(f"{reason} ({lk.name})", transient=True)
                torn += 1
        self.tracer.emit(
            self.sim.now, "net.link.up" if up else "net.link.down", link=lk.name,
        )
        self._probe.count(
            "repro_net_link_transitions_total",
            help="Link up/down transitions",
            link=lk.name, to="up" if up else "down",
        )
        return torn

    def set_link_bandwidth(self, link: Link | str, bandwidth: float) -> None:
        """Change a link's current capacity (degradation / recovery) and
        re-run the fair allocation so in-flight flows adjust rate.

        ``nominal_bandwidth`` is untouched: pass it back to restore."""
        lk = self.link(link) if isinstance(link, str) else link
        if not bandwidth > 0:
            raise NetworkError(f"bandwidth must be > 0, got {bandwidth}")
        if bandwidth == lk.bandwidth:
            return
        lk.bandwidth = float(bandwidth)
        self.tracer.emit(
            self.sim.now, "net.link.bandwidth", link=lk.name, bandwidth=bandwidth,
            degraded=lk.degraded,
        )
        self._reallocate((lk,))

    # ------------------------------------------------------------------
    # flows
    # ------------------------------------------------------------------
    def start_flow(
        self,
        path: Iterable[Link | str],
        size: float,
        label: str | None = None,
    ) -> Flow:
        """Begin transferring ``size`` bytes across the link path.

        Path latencies are summed and charged up front, before the flow
        enters bandwidth contention.  Returns the :class:`Flow` event.
        """
        links = [self.link(p) if isinstance(p, str) else p for p in path]
        if not links:
            raise NetworkError("flow path must contain at least one link")
        if size < 0:
            raise NetworkError(f"flow size must be >= 0, got {size}")
        self._flow_seq += 1
        flow = Flow(self, links, size, label or f"flow{self._flow_seq}")
        # guard so the disabled path skips building the emit kwargs and
        # the path-name list entirely (emit itself re-checks enabled)
        if self.tracer.enabled:
            self.tracer.emit(
                self.sim.now, "net.flow.start", label=flow.label, size=size,
                path=[lk.name for lk in links],
            )
        if self._probe.enabled:
            self._probe.count(
                "repro_net_flows_total",
                help="Flows started, by terminal link",
                link=links[-1].name,
            )
        total_latency = sum(lk.latency for lk in links)
        if total_latency > 0.0:
            self.sim.schedule(total_latency, self._admit, flow)
        else:
            self._admit(flow)
        return flow

    def _admit(self, flow: Flow) -> None:
        if flow.triggered:  # aborted during the latency phase
            return
        down = [lk.name for lk in flow.path if not lk.up]
        if down:
            self._finish_flow(flow, error=TransientNetworkError(
                f"flow {flow.label}: link {down[0]} is down"
            ))
            return
        if flow.size <= 0.0:
            self._finish_flow(flow)
            return
        flow._anchor_time = self.sim.now
        self._admit_seq += 1
        flow._order = self._admit_seq
        self._active[flow] = None
        for link in flow.path:
            link.flows[flow] = None
        self._reallocate(flow.path)

    def _finish_flow(self, flow: Flow, error: BaseException | None = None) -> None:
        if flow in self._active:
            flow._sync_progress(self.sim.now)
            del self._active[flow]
            for link in flow.path:
                link.flows.pop(flow, None)
        if flow._completion is not None:
            flow._completion.cancel()
            flow._completion = None
        flow.finished_at = self.sim.now
        flow.rate = 0.0
        if error is None:
            flow._anchor_remaining = 0.0
            duration = self.sim.now - flow.started_at
            if self.tracer.enabled:
                self.tracer.emit(
                    self.sim.now, "net.flow.done", label=flow.label,
                    size=flow.size, duration=duration,
                )
            if self._probe.enabled:
                terminal = flow.path[-1].name
                self._probe.observe(
                    "repro_net_flow_seconds", duration,
                    help="Flow start-to-delivery time",
                )
                self._probe.count(
                    "repro_net_flow_bytes_total", flow.size,
                    help="Bytes delivered, by terminal link",
                    link=terminal,
                )
            flow.succeed(flow)
        else:
            if self.tracer.enabled:
                self.tracer.emit(self.sim.now, "net.flow.abort", label=flow.label)
            if self._probe.enabled:
                self._probe.count(
                    "repro_net_flow_aborts_total",
                    help="Flows aborted in flight",
                )
            flow.fail(error)
        self._reallocate(flow.path)

    # ------------------------------------------------------------------
    # max-min fair allocation (progressive filling)
    # ------------------------------------------------------------------
    def _closure(self, dirty_links: Iterable[Link]) -> dict[Flow, None]:
        """Flows whose rate can change: the transitive closure of the
        dirty links' flows under link sharing (one connected component of
        the flow/link bipartite graph per dirty link)."""
        flows: dict[Flow, None] = {}
        stack: list[Link] = []
        seen_links: dict[Link, None] = {}
        for lk in dirty_links:
            if lk not in seen_links:
                seen_links[lk] = None
                stack.append(lk)
        while stack:
            lk = stack.pop()
            for f in lk.flows:
                if f in flows:
                    continue
                flows[f] = None
                for other in f.path:
                    if other not in seen_links:
                        seen_links[other] = None
                        stack.append(other)
        return flows

    def _fill(self, flows: dict[Flow, None]) -> dict[Flow, float]:
        """Progressive filling restricted to ``flows``.

        ``flows`` must be closed under link sharing (every flow crossing
        a link used by a member is itself a member), which both callers
        guarantee; max-min fairness is then separable, so the restricted
        solution equals the global one on these flows.
        """
        unfrozen = dict.fromkeys(flows)
        if len(unfrozen) == 1:
            # Lone flow: every share is residual/1 == the link bandwidth,
            # so it freezes at its path's bottleneck in one round.  Same
            # float the general loop would select (x / 1.0 is exact).
            (f,) = unfrozen
            rate = math.inf
            for lk in f.path:
                bw = lk.bandwidth
                if bw < rate:
                    rate = bw
            return {f: rate}
        residual: dict[Link, float] = {}
        count: dict[Link, int] = {}
        for f in unfrozen:
            for lk in f.path:
                if lk in count:
                    count[lk] += 1
                else:
                    count[lk] = 1
                    residual[lk] = lk.bandwidth
        rates: dict[Flow, float] = {}
        while unfrozen:
            # most constrained link among those carrying unfrozen flows;
            # ties break on creation order so results are deterministic
            # (the winner is the (share, index) minimum, independent of
            # scan order)
            best: Link | None = None
            best_share = math.inf
            best_index = -1
            for lk, c in count.items():
                share = residual[lk] / c
                if share < best_share or (
                    share == best_share and lk.index < best_index
                ):
                    best_share = share
                    best = lk
                    best_index = lk.index
            if best is None:  # pragma: no cover - every unfrozen flow carries
                break
            for f in list(best.flows):
                if f not in unfrozen:
                    continue
                rates[f] = best_share
                del unfrozen[f]
                for lk in f.path:
                    c = count[lk] - 1
                    if c:
                        count[lk] = c
                        r = residual[lk] - best_share
                        residual[lk] = r if r > 0.0 else 0.0
                    else:
                        # no unfrozen flow crosses lk any more: drop it
                        # from the scan instead of skipping it each round
                        del count[lk]
                        del residual[lk]
        return rates

    def _reallocate(self, dirty_links: Iterable[Link]) -> None:
        if self.allocator == "reference":
            affected: dict[Flow, None] = self._active
        else:
            # admission order, matching the reference allocator's
            # iteration over _active, so reschedules consume identical
            # event-heap sequence numbers under both strategies
            affected = sorted(
                self._closure(dirty_links), key=operator.attrgetter("_order")
            )
        if affected:
            rates = self._fill(affected)
            now = self.sim.now
            for flow in affected:
                new_rate = rates.get(flow, 0.0)
                if new_rate == flow.rate:
                    # untouched: anchor and completion event stay valid
                    continue
                flow._sync_progress(now)
                flow.rate = new_rate
                if flow._completion is not None:
                    flow._completion.cancel()
                    flow._completion = None
                if new_rate > 0.0:
                    eta = flow._anchor_remaining / new_rate
                    flow._completion = self.sim.schedule(eta, self._complete, flow)

        if self._probe.enabled:
            gauged: dict[Link, None] = {}
            for lk in dirty_links:
                gauged[lk] = None
            for f in affected:
                for lk in f.path:
                    gauged[lk] = None
            for lk in gauged:
                self._probe.gauge_set(
                    "repro_link_utilization", lk.utilization,
                    help="Allocated fraction of link capacity (0..1)",
                    link=lk.name,
                )
                self._probe.gauge_set(
                    "repro_link_active_flows", len(lk.flows),
                    help="Flows contending on the link",
                    link=lk.name,
                )

    def _complete(self, flow: Flow) -> None:
        flow._completion = None
        flow._sync_progress(self.sim.now)
        # Guard against float drift: anything below one byte is done.
        remaining = flow._anchor_remaining
        if remaining <= 1.0 or math.isclose(remaining, 0.0, abs_tol=1e-6):
            self._finish_flow(flow)
        else:  # pragma: no cover - defensive reschedule
            self._reallocate(flow.path)

    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> tuple[Flow, ...]:
        return tuple(self._active)
