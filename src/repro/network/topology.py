"""Cluster network topologies.

The paper's platform is a LAN-connected cluster with a shared NAS
(Section II-A notes most cluster configurations run diskless against a
shared NAS).  We model the standard non-blocking switch fabric:

* each physical node has a full-duplex NIC — one ``tx`` and one ``rx``
  link of ``node_bandwidth`` each;
* the NAS has a single ingress link (``nas.rx``) and egress link
  (``nas.tx``) of ``nas_bandwidth`` — the serialization point that makes
  disk-full checkpointing collapse under fan-in;
* the switch core is non-blocking (no shared core link), which is the
  favourable assumption *for the baseline*; DVDC's advantage in the
  paper survives it.

A blocking-core variant (``core_bandwidth``) is provided for ablations.
"""

from __future__ import annotations

from ..sim import NULL_TRACER, Simulator, Tracer
from .link import Flow, Link, Network, NetworkError

__all__ = ["ClusterTopology", "SwitchedTopology"]

#: 1 GbE payload bandwidth, bytes/second.
GBE_BANDWIDTH = 125e6
#: Typical mid-range NAS ingress bandwidth, bytes/second.
DEFAULT_NAS_BANDWIDTH = 100e6
#: LAN latency, seconds.
DEFAULT_LATENCY = 100e-6


class ClusterTopology:
    """Abstract interface: node-to-node and node-to-NAS paths."""

    network: Network

    def node_to_node(self, src: int, dst: int) -> list[Link]:
        raise NotImplementedError

    def node_to_nas(self, src: int) -> list[Link]:
        raise NotImplementedError

    def nas_to_node(self, dst: int) -> list[Link]:
        raise NotImplementedError

    def transfer(self, src: int, dst: int, size: float, label: str | None = None) -> Flow:
        """Start a node→node flow."""
        return self.network.start_flow(self.node_to_node(src, dst), size, label)

    def transfer_to_nas(self, src: int, size: float, label: str | None = None) -> Flow:
        return self.network.start_flow(self.node_to_nas(src), size, label)

    def transfer_from_nas(self, dst: int, size: float, label: str | None = None) -> Flow:
        return self.network.start_flow(self.nas_to_node(dst), size, label)


class SwitchedTopology(ClusterTopology):
    """Non-blocking switch with per-node NICs and a NAS port.

    Parameters
    ----------
    sim:
        The simulator.
    n_nodes:
        Number of physical nodes.
    node_bandwidth:
        Per-direction NIC bandwidth, bytes/second (default 1 GbE).
    nas_bandwidth:
        NAS port bandwidth per direction, bytes/second.
    latency:
        Per-hop latency; a node→node path crosses two links.
    core_bandwidth:
        If not None, an aggregate switch-core link every flow crosses —
        models an oversubscribed fabric for ablation studies.
    """

    def __init__(
        self,
        sim: Simulator,
        n_nodes: int,
        node_bandwidth: float = GBE_BANDWIDTH,
        nas_bandwidth: float = DEFAULT_NAS_BANDWIDTH,
        latency: float = DEFAULT_LATENCY,
        core_bandwidth: float | None = None,
        tracer: Tracer = NULL_TRACER,
        allocator: str = "incremental",
    ):
        if n_nodes < 1:
            raise NetworkError(f"need >= 1 node, got {n_nodes}")
        self.sim = sim
        self.n_nodes = n_nodes
        self.node_bandwidth = float(node_bandwidth)
        self.nas_bandwidth = float(nas_bandwidth)
        self.network = Network(sim, tracer=tracer, allocator=allocator)
        self.tx: list[Link] = []
        self.rx: list[Link] = []
        for i in range(n_nodes):
            self.tx.append(self.network.add_link(f"node{i}.tx", node_bandwidth, latency))
            self.rx.append(self.network.add_link(f"node{i}.rx", node_bandwidth, latency))
        self.nas_rx = self.network.add_link("nas.rx", nas_bandwidth, latency)
        self.nas_tx = self.network.add_link("nas.tx", nas_bandwidth, latency)
        self.core: Link | None = None
        if core_bandwidth is not None:
            self.core = self.network.add_link("switch.core", core_bandwidth, 0.0)

    def _check(self, idx: int) -> None:
        if not (0 <= idx < self.n_nodes):
            raise NetworkError(f"node index {idx} out of range 0..{self.n_nodes - 1}")

    def node_to_node(self, src: int, dst: int) -> list[Link]:
        self._check(src)
        self._check(dst)
        if src == dst:
            # loopback: charged only against the local NIC pair; cheap but
            # not free, matching intra-node VM-to-VM copies over vswitch.
            path = [self.tx[src], self.rx[dst]]
        else:
            path = [self.tx[src], self.rx[dst]]
        if self.core is not None and src != dst:
            path.insert(1, self.core)
        return path

    def node_to_nas(self, src: int) -> list[Link]:
        self._check(src)
        path = [self.tx[src], self.nas_rx]
        if self.core is not None:
            path.insert(1, self.core)
        return path

    def nas_to_node(self, dst: int) -> list[Link]:
        self._check(dst)
        path = [self.nas_tx, self.rx[dst]]
        if self.core is not None:
            path.insert(1, self.core)
        return path

    def abort_node_flows(self, node_id: int, reason: str = "node failed") -> int:
        """Abort every in-flight flow crossing the node's NIC.

        Called when a physical node crashes: transfers it was sending or
        receiving terminate with a :class:`NetworkError` at the waiting
        process.  Returns the number of flows torn down."""
        self._check(node_id)
        doomed = self._nic_flows(node_id)
        for flow in doomed:
            flow.abort(reason)
        return len(doomed)

    def _nic_flows(self, node_id: int) -> list[Flow]:
        """Flows crossing either NIC direction, in deterministic
        (admission) order — tear-down order affects event ordering, so it
        must not depend on set iteration."""
        doomed = dict.fromkeys(self.tx[node_id].flows)
        doomed.update(dict.fromkeys(self.rx[node_id].flows))
        return list(doomed)

    # ------------------------------------------------------------------
    # transient-fault surface (driven by repro.resilience.faults)
    # ------------------------------------------------------------------
    def set_node_links_up(self, node_id: int, up: bool, reason: str = "link flap") -> int:
        """Flap both NIC directions of a node down or up.

        Down tears in-flight flows with :class:`TransientNetworkError`
        (retryable), unlike :meth:`abort_node_flows` whose endpoint is
        dead.  Returns the number of flows torn down."""
        self._check(node_id)
        torn = self.network.set_link_up(self.tx[node_id], up, reason)
        torn += self.network.set_link_up(self.rx[node_id], up, reason)
        return torn

    def scale_node_bandwidth(self, node_id: int, factor: float) -> None:
        """Set both NIC directions to ``factor`` × nominal bandwidth.

        Models a straggler node (slow NIC, congested uplink).  The factor
        is absolute against design capacity, not cumulative: ``1.0``
        restores full speed regardless of prior degradations."""
        self._check(node_id)
        if not factor > 0:
            raise NetworkError(f"bandwidth factor must be > 0, got {factor}")
        for link in (self.tx[node_id], self.rx[node_id]):
            self.network.set_link_bandwidth(link, link.nominal_bandwidth * factor)

    def drop_node_flows(self, node_id: int, reason: str = "transfer dropped") -> int:
        """Drop the node's in-flight transfers *without* touching link
        state — a lossy blip rather than an outage.  Flows fail with
        :class:`TransientNetworkError`; an immediate retry can succeed.
        Returns the number of flows dropped."""
        self._check(node_id)
        doomed = self._nic_flows(node_id)
        for flow in doomed:
            flow.abort(reason, transient=True)
        return len(doomed)
