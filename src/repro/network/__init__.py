"""Network substrate: fluid-flow links, topologies, closed-form times."""

from .link import Flow, Link, Network, NetworkError
from .topology import (
    DEFAULT_LATENCY,
    DEFAULT_NAS_BANDWIDTH,
    GBE_BANDWIDTH,
    ClusterTopology,
    SwitchedTopology,
)
from .transfer import (
    distributed_exchange_time,
    effective_bandwidth_fan_in,
    fan_in_time,
    pairwise_time,
)

__all__ = [
    "Link",
    "Flow",
    "Network",
    "NetworkError",
    "ClusterTopology",
    "SwitchedTopology",
    "GBE_BANDWIDTH",
    "DEFAULT_NAS_BANDWIDTH",
    "DEFAULT_LATENCY",
    "fan_in_time",
    "distributed_exchange_time",
    "pairwise_time",
    "effective_bandwidth_fan_in",
]
