"""Closed-form transfer-time estimates.

The analytical model (:mod:`repro.model.overhead`) needs transfer times
*without* running the simulator.  These helpers give the fluid-model
completion times for the two traffic patterns that matter:

* **fan-in** — N equal flows converging on one bottleneck link
  (disk-full checkpointing into the NAS): every flow finishes together
  at ``N·S / B_bottleneck`` when the bottleneck is the shared link;
* **all-to-peers** — each node ships its data to distinct peers over its
  own NIC (DVDC parity exchange): flows ride disjoint links and finish
  at ``S / B_node`` — the "speedup linear in the number of machines"
  claimed in Section V-B.

All sizes in bytes, bandwidths in bytes/second, results in seconds.
"""

from __future__ import annotations

__all__ = [
    "fan_in_time",
    "distributed_exchange_time",
    "pairwise_time",
    "effective_bandwidth_fan_in",
]


def fan_in_time(
    n_flows: int,
    bytes_per_flow: float,
    bottleneck_bandwidth: float,
    sender_bandwidth: float | None = None,
) -> float:
    """Completion time of ``n_flows`` equal flows into one shared link.

    If ``sender_bandwidth`` is given, each flow is additionally capped by
    its private sender NIC; the bottleneck is whichever is tighter.
    """
    if n_flows < 1:
        raise ValueError(f"need >= 1 flow, got {n_flows}")
    if bytes_per_flow < 0:
        raise ValueError(f"bytes must be >= 0, got {bytes_per_flow}")
    if bottleneck_bandwidth <= 0:
        raise ValueError(f"bandwidth must be > 0, got {bottleneck_bandwidth}")
    per_flow_rate = bottleneck_bandwidth / n_flows
    if sender_bandwidth is not None:
        per_flow_rate = min(per_flow_rate, sender_bandwidth)
    return bytes_per_flow / per_flow_rate


def effective_bandwidth_fan_in(
    n_flows: int, bottleneck_bandwidth: float, sender_bandwidth: float | None = None
) -> float:
    """Per-flow rate under fan-in contention."""
    rate = bottleneck_bandwidth / max(n_flows, 1)
    if sender_bandwidth is not None:
        rate = min(rate, sender_bandwidth)
    return rate


def distributed_exchange_time(
    bytes_per_node: float,
    node_bandwidth: float,
    concurrent_streams_per_nic: int = 1,
) -> float:
    """Completion time of a balanced peer exchange.

    Every node sends ``bytes_per_node`` through its own NIC; receivers are
    spread so no link carries more than ``concurrent_streams_per_nic``
    incoming streams.  With a balanced DVDC layout the NIC itself is the
    constraint, so the exchange finishes in
    ``bytes_per_node · streams / node_bandwidth``.
    """
    if bytes_per_node < 0:
        raise ValueError(f"bytes must be >= 0, got {bytes_per_node}")
    if node_bandwidth <= 0:
        raise ValueError(f"bandwidth must be > 0, got {node_bandwidth}")
    if concurrent_streams_per_nic < 1:
        raise ValueError("streams per NIC must be >= 1")
    return bytes_per_node * concurrent_streams_per_nic / node_bandwidth


def pairwise_time(nbytes: float, src_bandwidth: float, dst_bandwidth: float) -> float:
    """Single point-to-point flow: limited by the slower NIC."""
    if nbytes < 0:
        raise ValueError(f"bytes must be >= 0, got {nbytes}")
    bw = min(src_bandwidth, dst_bandwidth)
    if bw <= 0:
        raise ValueError("bandwidths must be > 0")
    return nbytes / bw
