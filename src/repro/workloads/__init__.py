"""Workloads: checkpointed jobs, dirty-page processes, scenario factories."""

from .app import CheckpointedJob, JobResult
from .dirtypages import (
    HotColdDirty,
    PhasedDirty,
    UniformDirty,
    WorkloadDirtyModel,
    drive_vm,
)
from .generators import Scenario, cluster_model_for, paper_scenario, scaled_scenario

__all__ = [
    "CheckpointedJob",
    "JobResult",
    "UniformDirty",
    "HotColdDirty",
    "PhasedDirty",
    "WorkloadDirtyModel",
    "drive_vm",
    "Scenario",
    "paper_scenario",
    "scaled_scenario",
    "cluster_model_for",
]
