"""End-to-end checkpointed job execution.

:class:`CheckpointedJob` runs a gang-scheduled HPC job of ``work``
fault-free seconds on a virtual cluster under a checkpoint protocol
(diskful baseline or any diskless architecture) and a failure injector,
and reports the realized completion time — the *system-level* Monte
Carlo that corroborates the Section V model end to end.

Semantics (matching the model):

* progress accrues only during work phases; checkpoint cycles block
  (store-and-forward, as the model charges them — see
  :mod:`repro.model.overhead`);
* a failure rolls the job back to the progress recorded at the last
  *committed* checkpoint; the crashed node's VMs are rebuilt per the
  protocol; repair returns the node to service after
  ``repair_time``;
* an initial checkpoint is taken at job start (epoch 0), so the job is
  always recoverable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cluster import VirtualCluster
from ..failures.injector import FailureEvent, FailureInjector
from ..sim import Interrupt, NULL_TRACER, Tracer

__all__ = ["CheckpointedJob", "JobResult"]


@dataclass
class JobResult:
    """Outcome of one job execution."""

    completed: bool
    wall_time: float = 0.0
    work_seconds: float = 0.0
    n_checkpoints: int = 0
    n_failures: int = 0
    n_recoveries: int = 0
    lost_work: float = 0.0
    checkpoint_time: float = 0.0
    recovery_time: float = 0.0
    failure_reason: str | None = None

    @property
    def time_ratio(self) -> float:
        """wall_time / work — comparable to the model's E[T]/T."""
        if self.work_seconds <= 0:
            return float("nan")
        return self.wall_time / self.work_seconds


class CheckpointedJob:
    """Run a job under a checkpoint protocol with failure injection.

    Parameters
    ----------
    cluster, checkpointer:
        The cluster and a protocol exposing ``run_cycle()`` /
        ``recover(node_id)`` process methods (DiskfulCheckpointer or
        DisklessCheckpointer).
    work:
        Fault-free execution length in seconds.
    interval:
        Checkpoint interval in work-seconds, or an
        :class:`~repro.checkpoint.adaptive.AdaptivePolicy` for online
        cost-benefit scheduling (Section II-B1): after each work step
        the policy decides skip-or-take from the elapsed time and the
        estimated dirty set.
    injector:
        Optional :class:`FailureInjector`; the job wires itself as a
        subscriber, crashes nodes, schedules repairs, and recovers.
    repair_time:
        Node downtime after a crash before it rejoins (empty).
    overlap:
        When True, the job resumes useful work the moment the capture
        barrier lifts and the exchange/XOR (or NAS transfer) completes
        in the background — the *latency-mode* execution diskless
        checkpointing enables (overhead is paid, latency is hidden; a
        failure before the background commit rolls back one extra
        interval).  At most one checkpoint is outstanding, matching the
        2x-memory rule of Section II-B2.
    controlplane:
        Optional :class:`~repro.controlplane.ControlPlane`.  When given,
        the job keeps only its data-plane role (work progress, rollback
        accounting, checkpoint cadence) and delegates the control-plane
        role — killing/repairing crashed nodes, recovery, healing,
        post-recovery audits — to the coordinator: the injector is
        attached to the control plane and the job waits on
        :meth:`~repro.controlplane.ControlPlane.recovered_event` instead
        of calling ``recover()`` itself.
    """

    def __init__(
        self,
        cluster: VirtualCluster,
        checkpointer,
        work: float,
        interval: float,
        injector: FailureInjector | None = None,
        repair_time: float = 30.0,
        overlap: bool = False,
        tracer: Tracer = NULL_TRACER,
        controlplane=None,
    ):
        from ..checkpoint.adaptive import AdaptivePolicy

        if work <= 0:
            raise ValueError(f"work must be > 0, got {work}")
        self.adaptive: AdaptivePolicy | None = None
        if isinstance(interval, AdaptivePolicy):
            self.adaptive = interval
            interval = max(interval.min_interval, 1.0)
        elif interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.cluster = cluster
        self.checkpointer = checkpointer
        self.work = float(work)
        self.interval = float(interval)
        self.injector = injector
        self.repair_time = float(repair_time)
        self.overlap = bool(overlap)
        self.tracer = tracer
        self.result = JobResult(completed=False, work_seconds=work)
        self._main = None
        self._pending_failures: list[int] = []
        self._recovering = False
        self._needs_heal = False
        self._committed_progress = 0.0
        self._outstanding = None  # (cycle Process, progress at capture)
        self._in_cycle = False
        self._heal_proc = None
        self.controlplane = controlplane
        if injector is not None:
            if controlplane is not None:
                # coordinator kills/repairs; the job only observes (the
                # job's subscriber runs first so it sees the node alive)
                injector.subscribe(self._on_failure_managed)
                controlplane.attach_injector(injector)
            else:
                injector.subscribe(self._on_failure)

    # ------------------------------------------------------------------
    def _on_failure(self, ev: FailureEvent) -> None:
        if self._main is not None and not self._main.alive:
            return  # job already finished; later trace events are moot
        node = self.cluster.node(ev.node_id)
        if not node.alive:
            return  # already down; repair pending
        self.cluster.kill_node(ev.node_id)
        self.result.n_failures += 1
        self.cluster.sim.schedule(self.repair_time, self._repair, ev.node_id)
        self._pending_failures.append(ev.node_id)
        if self._main is not None and self._main.alive and not self._recovering:
            self._main.interrupt(ev)

    def _on_failure_managed(self, ev: FailureEvent) -> None:
        """Managed mode: record the crash and roll back; the control
        plane (also subscribed) performs the kill, repair, recovery, and
        healing."""
        if self._main is not None and not self._main.alive:
            return
        if not self.cluster.node(ev.node_id).alive:
            return
        self.result.n_failures += 1
        self._pending_failures.append(ev.node_id)
        if self._main is not None and self._main.alive and not self._recovering:
            self._main.interrupt(ev)

    def _repair(self, node_id: int) -> None:
        self.cluster.repair_node(node_id)
        # shrink the degraded window: re-home parity in the background
        # right away instead of waiting for the next checkpoint boundary
        # (the re-encode traffic overlaps useful work, like any RAID
        # rebuild).  Defer when a cycle/recovery is mutating state.
        can_heal_now = (
            hasattr(self.checkpointer, "heal")
            and not self._in_cycle
            and not self._recovering
            and (self._heal_proc is None or not self._heal_proc.alive)
        )
        if can_heal_now:
            self._heal_proc = self.cluster.sim.process(self._background_heal())
        else:
            self._needs_heal = True

    def _background_heal(self):
        try:
            yield from self.checkpointer.heal()
        except RuntimeError:
            self._needs_heal = True

    # ------------------------------------------------------------------
    def start(self):
        """Spawn the job as a process; returns the Process (yieldable)."""
        self._main = self.cluster.sim.process(self._run())
        return self._main

    def _run(self):
        sim = self.cluster.sim
        t_start = sim.now
        progress = 0.0
        self._committed_progress = 0.0

        # initial checkpoint so the job is recoverable from t=0
        while True:
            try:
                t0 = sim.now
                yield from self.checkpointer.run_cycle()
                self.result.n_checkpoints += 1
                self.result.checkpoint_time += sim.now - t0
                break
            except Interrupt:
                ok = yield from self._drain_recoveries()
                if not ok:
                    return self._finish(t_start, completed=False)

        last_ckpt_progress = progress
        while progress < self.work:
            # ---- work phase ----
            if self.adaptive is not None:
                chunk = self._adaptive_chunk(progress, last_ckpt_progress)
            else:
                chunk = self.interval
            chunk = min(chunk, self.work - progress)
            t0 = sim.now
            try:
                yield sim.timeout(chunk)
                progress += chunk
            except Interrupt:
                self.result.lost_work += (
                    (sim.now - t0) + (progress - self._committed_progress)
                )
                progress = self._committed_progress
                last_ckpt_progress = progress
                self._outstanding = None
                ok = yield from self._drain_recoveries()
                if not ok:
                    return self._finish(t_start, completed=False)
                continue
            if progress >= self.work:
                break
            if self.adaptive is not None and not self._adaptive_should_take(
                progress, last_ckpt_progress
            ):
                continue
            # ---- checkpoint phase ----
            t0 = sim.now
            try:
                if self._heal_proc is not None and self._heal_proc.alive:
                    yield self._heal_proc  # let a background heal land
                if self._needs_heal and hasattr(self.checkpointer, "heal"):
                    self._needs_heal = False
                    yield from self.checkpointer.heal()
                self._in_cycle = True
                try:
                    if self.overlap:
                        yield from self._checkpoint_overlapped(progress)
                    else:
                        r = yield from self.checkpointer.run_cycle()
                        if getattr(r, "committed", True):
                            self.result.n_checkpoints += 1
                            self._committed_progress = progress
                finally:
                    self._in_cycle = False
                self.result.checkpoint_time += sim.now - t0
                last_ckpt_progress = progress
            except Interrupt:
                self.result.lost_work += progress - self._committed_progress
                progress = self._committed_progress
                last_ckpt_progress = progress
                self._outstanding = None
                ok = yield from self._drain_recoveries()
                if not ok:
                    return self._finish(t_start, completed=False)
                continue
        return self._finish(t_start, completed=True)

    def _estimated_dirty_bytes(self, since_progress: float, progress: float) -> float:
        elapsed = progress - since_progress
        return sum(
            min(vm.dirty_rate * elapsed, vm.memory_bytes)
            for vm in self.cluster.all_vms
        )

    def _adaptive_chunk(self, progress: float, last_ckpt: float) -> float:
        """Work-step size in adaptive mode: a fraction of the policy's
        current horizon so the skip/take test re-evaluates often."""
        assert self.adaptive is not None
        elapsed = progress - last_ckpt
        dirty = self._estimated_dirty_bytes(last_ckpt, progress)
        # probe: if we should already take, step minimally to reach the
        # checkpoint phase; else step a quarter of the Young horizon
        if self.adaptive.should_checkpoint(max(elapsed, 1e-9), dirty):
            return max(self.adaptive.min_interval / 4.0, 1.0)
        horizon = self.adaptive.young_equivalent(
            max(self.adaptive.overhead_of(dirty), 1e-6)
        )
        return max(horizon / 4.0, self.adaptive.min_interval, 1.0)

    def _adaptive_should_take(self, progress: float, last_ckpt: float) -> bool:
        assert self.adaptive is not None
        elapsed = progress - last_ckpt
        dirty = self._estimated_dirty_bytes(last_ckpt, progress)
        return self.adaptive.should_checkpoint(elapsed, dirty)

    def _checkpoint_overlapped(self, progress: float):
        """Process fragment: start a background cycle, return once the
        capture barrier lifts.  Waits first for the previous outstanding
        cycle to commit (one in flight at a time)."""
        sim = self.cluster.sim
        if self._outstanding is not None:
            prev_proc, _ = self._outstanding
            self._outstanding = None
            if prev_proc.alive:
                yield prev_proc
        pause_done = sim.event()
        proc = sim.process(self.checkpointer.run_cycle(pause_done=pause_done))
        captured_at = progress

        def on_done(ev) -> None:
            if ev.ok and ev.value is not None and getattr(ev.value, "committed", False):
                if captured_at > self._committed_progress:
                    self._committed_progress = captured_at
                self.result.n_checkpoints += 1

        proc.subscribe(on_done)
        self._outstanding = (proc, captured_at)
        yield pause_done

    def _drain_recoveries(self):
        """Process: recover every pending failed node, newest last.

        Additional failures arriving mid-recovery queue up (recovery is
        not interrupted) and are drained in order.  Returns False when a
        recovery is impossible (e.g. double failure in one group under
        XOR parity) — the job is then lost.
        """
        sim = self.cluster.sim
        self._recovering = True
        try:
            while self._pending_failures:
                node_id = self._pending_failures.pop(0)
                t0 = sim.now
                if self.controlplane is not None:
                    # coordinator detects (keepalive deadline), recovers,
                    # heals, and audits; the job just waits for the result
                    ok, error = yield self.controlplane.recovered_event(node_id)
                    if not ok:
                        self.result.failure_reason = error
                        return False
                    self.result.n_recoveries += 1
                    self.result.recovery_time += sim.now - t0
                    continue
                if self.checkpointer.committed_epoch < 0:
                    # nothing committed yet: nothing to restore — cold
                    # restart (the classic resubmit-from-scratch path)
                    self._cold_restart()
                    self.result.n_recoveries += 1
                    continue
                try:
                    yield from self.checkpointer.recover(node_id)
                except (RuntimeError,) as exc:
                    self.result.failure_reason = str(exc)
                    return False
                self.result.n_recoveries += 1
                self.result.recovery_time += sim.now - t0
            # kick any deferred heal off immediately — every second of a
            # degraded layout is exposure to a fatal second failure
            if (
                self._needs_heal
                and hasattr(self.checkpointer, "heal")
                and (self._heal_proc is None or not self._heal_proc.alive)
            ):
                self._needs_heal = False
                self._heal_proc = sim.process(self._background_heal())
            return True
        finally:
            self._recovering = False

    def _cold_restart(self) -> None:
        """Re-place VMs killed before the first checkpoint committed.

        There is no state to restore — the job restarts from zero work —
        so the dead VMs simply come back empty on surviving nodes."""
        from ..cluster.vm import VMState
        from ..controlplane.scheduler import PlacementEngine, PlacementError

        homeless = [
            vm for vm in self.cluster.all_vms
            if vm.state == VMState.FAILED and vm.node_id is None
        ]
        try:
            targets = PlacementEngine(self.cluster).round_robin(len(homeless))
        except PlacementError as exc:
            raise RuntimeError("no surviving nodes for a cold restart") from exc
        for vm, target in zip(homeless, targets):
            self.cluster.place_failed_vm(vm.vm_id, target)
            vm.revive()

    def _finish(self, t_start: float, completed: bool) -> JobResult:
        self.result.completed = completed
        self.result.wall_time = self.cluster.sim.now - t_start
        self.tracer.emit(
            self.cluster.sim.now, "job.finished", completed=completed,
            wall=self.result.wall_time, failures=self.result.n_failures,
        )
        return self.result
