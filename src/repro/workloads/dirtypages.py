"""Dirty-page generation processes for functional VM images.

The principle of locality (Section II-B1) makes real working sets
small and skewed; these generators produce page-touch streams with
controllable skew so incremental checkpoints and pre-copy migration see
realistic dirty sets:

* :class:`UniformDirty` — every page equally likely (worst case for
  incremental capture);
* :class:`HotColdDirty` — a hot fraction of pages absorbs most writes
  (the classic 90/10 working-set model);
* :class:`PhasedDirty` — the hot region shifts between program phases
  (stressing write-protect/trap costs and pre-copy convergence).
"""

from __future__ import annotations

import numpy as np

from ..cluster.vm import VirtualMachine, VMState
from ..sim import Interrupt, Simulator

__all__ = [
    "UniformDirty",
    "HotColdDirty",
    "PhasedDirty",
    "WorkloadDirtyModel",
    "drive_vm",
]


class UniformDirty:
    """Uniform page selection."""

    def __init__(self, n_pages: int):
        if n_pages < 1:
            raise ValueError(f"need >= 1 page, got {n_pages}")
        self.n_pages = n_pages

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.integers(0, self.n_pages, size=count, dtype=np.int64)

    def expected_unique_pages(self, touches: float) -> float:
        """Expected distinct pages dirtied after ``touches`` uniform
        writes (single-tier coupon collector)."""
        return float(self.n_pages * (1.0 - np.exp(-touches / self.n_pages)))


class HotColdDirty:
    """``hot_fraction`` of pages receives ``hot_weight`` of the writes."""

    def __init__(self, n_pages: int, hot_fraction: float = 0.1, hot_weight: float = 0.9):
        if n_pages < 1:
            raise ValueError(f"need >= 1 page, got {n_pages}")
        if not (0.0 < hot_fraction < 1.0):
            raise ValueError(f"hot_fraction must be in (0,1), got {hot_fraction}")
        if not (0.0 <= hot_weight <= 1.0):
            raise ValueError(f"hot_weight must be in [0,1], got {hot_weight}")
        self.n_pages = n_pages
        self.hot_pages = max(1, int(n_pages * hot_fraction))
        self.hot_weight = hot_weight

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        hot = rng.random(count) < self.hot_weight
        idx = np.empty(count, dtype=np.int64)
        n_hot = int(hot.sum())
        idx[hot] = rng.integers(0, self.hot_pages, size=n_hot)
        idx[~hot] = rng.integers(self.hot_pages, self.n_pages, size=count - n_hot)
        return idx

    def expected_unique_pages(self, touches: int) -> float:
        """Expected distinct pages dirtied after ``touches`` writes
        (coupon-collector on the two tiers) — used to sanity-check the
        saturating dirty model in tests."""
        hot_t = touches * self.hot_weight
        cold_t = touches - hot_t
        n_cold = self.n_pages - self.hot_pages
        hot_u = self.hot_pages * (1.0 - np.exp(-hot_t / self.hot_pages))
        cold_u = n_cold * (1.0 - np.exp(-cold_t / n_cold)) if n_cold else 0.0
        return float(hot_u + cold_u)


class PhasedDirty:
    """Hot region rotates around the address space every ``phase_len``
    sampling steps."""

    def __init__(self, n_pages: int, phase_len: int = 100, window: float = 0.2):
        if n_pages < 1:
            raise ValueError(f"need >= 1 page, got {n_pages}")
        if phase_len < 1:
            raise ValueError(f"phase_len must be >= 1, got {phase_len}")
        if not (0.0 < window <= 1.0):
            raise ValueError(f"window must be in (0,1], got {window}")
        self.n_pages = n_pages
        self.phase_len = phase_len
        self.window_pages = max(1, int(n_pages * window))
        self._step = 0

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        phase = self._step // self.phase_len
        self._step += 1
        base = (phase * self.window_pages) % self.n_pages
        offs = rng.integers(0, self.window_pages, size=count, dtype=np.int64)
        return (base + offs) % self.n_pages

    def expected_unique_pages(self, touches: float) -> float:
        """Expected distinct pages after ``touches`` writes, within one
        phase (coupon collector over the current window).  Cross-phase
        accumulation depends on sampling cadence, so this is the
        single-phase lower bound."""
        w = self.window_pages
        return float(min(self.n_pages, w * (1.0 - np.exp(-touches / w))))


class WorkloadDirtyModel:
    """Saturating dirty-set curve of a real page-touch workload.

    Pre-copy's synthetic model charges ``dirty_rate · t`` bytes per
    round — a line that never bends.  Real workloads re-dirty their hot
    pages, so the transferable dirty set saturates at the working set:
    this adapter maps any dirty-page *pattern* (via its
    ``expected_unique_pages`` coupon-collector curve) plus a touch rate
    to expected dirty **bytes** over an interval, which is what
    :func:`repro.migration.precopy.live_migrate` and
    :meth:`~repro.migration.precopy.PrecopyModel.estimate` consume.
    """

    def __init__(self, pattern, touches_per_second: float, page_bytes: float):
        if touches_per_second < 0:
            raise ValueError(
                f"touches_per_second must be >= 0, got {touches_per_second}"
            )
        if page_bytes <= 0:
            raise ValueError(f"page_bytes must be > 0, got {page_bytes}")
        if not hasattr(pattern, "expected_unique_pages"):
            raise TypeError(
                f"pattern {pattern!r} has no expected_unique_pages() curve"
            )
        self.pattern = pattern
        self.touches_per_second = float(touches_per_second)
        self.page_bytes = float(page_bytes)

    @property
    def peak_rate(self) -> float:
        """Initial slope in bytes/second (every touch hits a clean page)
        — the honest stand-in for ``vm.dirty_rate`` in ρ convergence
        checks."""
        return self.touches_per_second * self.page_bytes

    def dirty_bytes(self, elapsed: float) -> float:
        """Expected bytes dirtied over ``elapsed`` seconds of execution."""
        if elapsed <= 0:
            return 0.0
        touches = self.touches_per_second * elapsed
        return self.pattern.expected_unique_pages(touches) * self.page_bytes


def drive_vm(
    sim: Simulator,
    vm: VirtualMachine,
    pattern,
    rng: np.random.Generator,
    touches_per_second: float,
    step: float = 1.0,
):
    """Process: continuously dirty a functional VM's pages.

    Touches accrue only while the VM is RUNNING (a paused/migrating
    guest does not execute).  Runs until interrupted or the VM fails.
    """
    if vm.image is None:
        raise ValueError(f"vm {vm.vm_id} has no functional image to dirty")
    if touches_per_second < 0 or step <= 0:
        raise ValueError("touches_per_second >= 0 and step > 0 required")
    try:
        while True:
            yield sim.timeout(step)
            if vm.state == VMState.FAILED:
                return
            if vm.state != VMState.RUNNING:
                continue
            count = rng.poisson(touches_per_second * step)
            if count:
                vm.image.touch_pages(pattern.sample(rng, count), rng)
    except Interrupt:
        return
