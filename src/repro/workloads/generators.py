"""Scenario factories: ready-made clusters and workloads.

These build the configurations the paper's figures use, so examples,
tests, and benches construct identical scenarios from one place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster.cluster import ClusterSpec, VirtualCluster
from ..model.overhead import ClusterModel
from ..sim import NULL_TRACER, RngRegistry, Simulator, Tracer

__all__ = ["Scenario", "paper_scenario", "scaled_scenario", "cluster_model_for"]

GIB = float(1 << 30)


@dataclass
class Scenario:
    """A ready-to-run simulation context."""

    sim: Simulator
    cluster: VirtualCluster
    rngs: RngRegistry
    vm_memory: float
    vm_dirty_rate: float

    @property
    def vms(self):
        return self.cluster.all_vms


def paper_scenario(
    seed: int = 0,
    functional: bool = True,
    image_pages: int = 64,
    page_size: int = 256,
    tracer: Tracer = NULL_TRACER,
) -> Scenario:
    """The Fig. 4 / Fig. 5 configuration: 4 nodes, 12 VMs, GbE, one NAS.

    ``functional`` attaches scaled-down real memory images so parity and
    recovery are bit-exact verifiable; timing still uses 1 GiB logical
    images.
    """
    return scaled_scenario(
        n_nodes=4,
        vms_per_node=3,
        seed=seed,
        functional=functional,
        image_pages=image_pages,
        page_size=page_size,
        tracer=tracer,
    )


def scaled_scenario(
    n_nodes: int,
    vms_per_node: int,
    vm_memory: float = 1.0 * GIB,
    vm_dirty_rate: float = 2e5,
    node_bandwidth: float = 125e6,
    nas_bandwidth: float = 100e6,
    seed: int = 0,
    functional: bool = False,
    image_pages: int = 64,
    page_size: int = 256,
    tracer: Tracer = NULL_TRACER,
) -> Scenario:
    """A cluster of ``n_nodes`` × ``vms_per_node`` identical VMs."""
    sim = Simulator()
    rngs = RngRegistry(seed)
    cluster = VirtualCluster(
        sim,
        ClusterSpec(
            n_nodes=n_nodes,
            node_bandwidth=node_bandwidth,
            nas_bandwidth=nas_bandwidth,
        ),
        tracer=tracer,
    )
    vms = cluster.create_vms_balanced(
        n_nodes * vms_per_node,
        vm_memory,
        dirty_rate=vm_dirty_rate,
        image_pages=image_pages if functional else None,
        page_size=page_size,
    )
    if functional:
        rng = rngs.stream("init-content")
        for vm in vms:
            vm.image.write(
                0, rng.integers(0, 256, vm.image.nbytes // 2, dtype=np.uint8)
            )
            vm.image.clear_dirty()
    return Scenario(
        sim=sim,
        cluster=cluster,
        rngs=rngs,
        vm_memory=vm_memory,
        vm_dirty_rate=vm_dirty_rate,
    )


def cluster_model_for(scenario: Scenario) -> ClusterModel:
    """The analytical :class:`ClusterModel` matching a simulated scenario
    — used when comparing model predictions with simulation results."""
    cl = scenario.cluster
    return ClusterModel(
        n_nodes=cl.n_nodes,
        vms_per_node=len(cl.all_vms) // cl.n_nodes,
        vm_memory_bytes=scenario.vm_memory,
        vm_dirty_rate=scenario.vm_dirty_rate,
        node_bandwidth=cl.spec.node_bandwidth,
        nas_bandwidth=cl.spec.nas_bandwidth,
        nas_disk_bandwidth=cl.spec.nas_disk.bandwidth,
    )
